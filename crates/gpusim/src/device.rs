//! The simulated device: heap + launch engine + clock + op log.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use racc_chaos::{ChaosEngine, FaultAction, FaultEvent, FaultPlan, FaultSite};
use racc_threadpool::{Schedule, ThreadPool};

use crate::arena;
use crate::dim::Dim3;
use crate::error::SimError;
use crate::event::Event;
use crate::heap::{Allocation, DeviceBuffer, DeviceSlice, DeviceSliceMut, Element};
use crate::launch::{LaunchConfig, ThreadCtx};
use crate::perf::{self, KernelCost, OpKind, OpRecord};
use crate::phased::{PhasedKernel, SharedMem, SinglePhase};
use crate::racecheck::{self, RaceTracker};
use crate::sanitizer::{self, Sanitizer, SanitizerReport};
use crate::spec::DeviceSpec;
use crate::stream::Stream;

static NEXT_DEVICE_ID: AtomicU64 = AtomicU64::new(1);

/// Maximum number of op-log records retained (ring-buffer style).
const OP_LOG_CAP: usize = 4096;

/// A simulated accelerator.
///
/// Functionally, kernels execute for real (on the host thread pool,
/// parallelized over blocks); temporally, a virtual clock advances by the
/// analytic performance model's estimate for each launch and transfer. All
/// APIs are synchronous, matching the paper's model semantics.
pub struct Device {
    id: u64,
    spec: DeviceSpec,
    pool: Arc<ThreadPool>,
    clock_ns: AtomicU64,
    used_bytes: Arc<AtomicUsize>,
    racecheck: std::sync::atomic::AtomicBool,
    tracker: Arc<RaceTracker>,
    sanitizer: Arc<Sanitizer>,
    /// Fast-path gate for fault injection: one relaxed load per injection
    /// point when chaos is off — the zero-overhead guarantee.
    chaos_on: std::sync::atomic::AtomicBool,
    chaos: Mutex<Option<Arc<ChaosEngine>>>,
    op_log: Mutex<VecDeque<OpRecord>>,
    /// Completion time (absolute device ns) of the last operation on each
    /// non-default stream; the substrate of the async-overlap model.
    stream_clocks: Mutex<std::collections::HashMap<u64, u64>>,
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("id", &self.id)
            .field("spec", &self.spec.name)
            .field("clock_ns", &self.clock_ns.load(Ordering::Relaxed))
            .finish()
    }
}

impl Device {
    /// Create a device with the global host thread pool as its executor.
    ///
    /// # Panics
    /// Panics if the specification fails validation.
    pub fn new(spec: DeviceSpec) -> Self {
        Self::with_pool(spec, Arc::new(pool_handle()))
    }

    /// Fallible [`Device::new`]: a bad specification comes back as
    /// [`SimError::InvalidSpec`] instead of a panic, so context
    /// construction can surface it as a `RaccError`.
    pub fn try_new(spec: DeviceSpec) -> Result<Self, SimError> {
        Self::try_with_pool(spec, Arc::new(pool_handle()))
    }

    /// Fallible [`Device::with_pool`].
    pub fn try_with_pool(spec: DeviceSpec, pool: Arc<ThreadPool>) -> Result<Self, SimError> {
        spec.validate().map_err(SimError::InvalidSpec)?;
        Ok(Self::build(spec, pool))
    }

    /// Create a device executing on a caller-provided pool.
    ///
    /// # Panics
    /// Panics if the specification fails validation; use
    /// [`Device::try_with_pool`] to handle it.
    pub fn with_pool(spec: DeviceSpec, pool: Arc<ThreadPool>) -> Self {
        Self::try_with_pool(spec, pool).expect("invalid device specification")
    }

    fn build(spec: DeviceSpec, pool: Arc<ThreadPool>) -> Self {
        Device {
            id: NEXT_DEVICE_ID.fetch_add(1, Ordering::Relaxed),
            spec,
            pool,
            clock_ns: AtomicU64::new(0),
            used_bytes: Arc::new(AtomicUsize::new(0)),
            racecheck: std::sync::atomic::AtomicBool::new(false),
            tracker: Arc::new(RaceTracker::new()),
            sanitizer: Arc::new(Sanitizer::new(sanitizer::env_enabled())),
            chaos_on: std::sync::atomic::AtomicBool::new(false),
            chaos: Mutex::new(None),
            op_log: Mutex::new(VecDeque::new()),
            stream_clocks: Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Unique id of this device instance.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The architecture descriptor.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Device memory currently allocated, in bytes.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes.load(Ordering::Relaxed)
    }

    /// Work-stealing counters of the host pool this device launches on
    /// (block ranges execute as pool tasks, so grid launches show up as
    /// executed/stolen tasks here).
    pub fn steal_stats(&self) -> racc_threadpool::StealStats {
        self.pool.steal_stats()
    }

    /// Enable or disable the dynamic write-race checker (slow; tests only).
    pub fn set_racecheck(&self, enabled: bool) {
        self.racecheck.store(enabled, Ordering::Relaxed);
    }

    /// Whether racecheck is enabled.
    pub fn racecheck_enabled(&self) -> bool {
        self.racecheck.load(Ordering::Relaxed)
    }

    /// Enable or disable **simsan**, the device sanitizer (slow; tests and
    /// debugging only). Also settable at device creation via
    /// `RACC_SANITIZER=1`. On top of the write-race checker this tracks
    /// reads (phase-aware read-write races), verifies barrier arrival in
    /// cooperative kernels, instruments allocations with canaries and
    /// live/freed state, and reports leaks — see [`Device::sanitizer_report`].
    ///
    /// Only buffers allocated (and slices created) while the sanitizer is
    /// on carry the full heap instrumentation.
    pub fn set_sanitizer(&self, enabled: bool) {
        self.sanitizer.set_enabled(enabled);
    }

    /// Whether the sanitizer is enabled.
    pub fn sanitizer_enabled(&self) -> bool {
        self.sanitizer.enabled()
    }

    /// Snapshot the sanitizer's findings: check counters plus the table of
    /// still-live sanitized allocations (the leak report, when taken at
    /// teardown). `None` while the sanitizer is disabled.
    pub fn sanitizer_report(&self) -> Option<SanitizerReport> {
        self.sanitizer_enabled()
            .then(|| self.sanitizer.report(self.id, &self.tracker))
    }

    // ------------------------------------------------------------------
    // Fault injection (racc-chaos)
    // ------------------------------------------------------------------

    /// Arm deterministic fault injection with a fresh engine for `plan`:
    /// allocs, transfers, launches, and stream work consult the schedule
    /// and fail / stall as it dictates. Also settable at context creation
    /// via `RACC_CHAOS=<seed|spec>` (the portability layer reads the env;
    /// raw devices stay chaos-free unless armed explicitly).
    pub fn set_chaos(&self, plan: FaultPlan) {
        *self.chaos.lock() = Some(Arc::new(ChaosEngine::new(plan)));
        self.chaos_on.store(true, Ordering::Release);
    }

    /// Disarm fault injection (the fault log is discarded with the engine).
    pub fn clear_chaos(&self) {
        self.chaos_on.store(false, Ordering::Release);
        *self.chaos.lock() = None;
    }

    /// Whether fault injection is armed.
    pub fn chaos_enabled(&self) -> bool {
        self.chaos_on.load(Ordering::Relaxed)
    }

    /// Every fault injected on this device so far, in injection order —
    /// the determinism witness (same plan, same log) and the debugging
    /// record of a chaos run. Empty when chaos is (or was re-)disarmed.
    pub fn fault_log(&self) -> Vec<FaultEvent> {
        self.chaos
            .lock()
            .as_ref()
            .map(|eng| eng.log())
            .unwrap_or_default()
    }

    /// Consult the chaos schedule for one operation at `site`. `Ok(extra)`
    /// lets the op proceed, charged `extra` additional modeled ns (a
    /// latency spike; usually 0); `Err` is the injected failure, raised
    /// **before** the operation's side effects so a retry re-runs it from
    /// a clean slate. The device's own ops call this internally; it is
    /// public for layers that *model* transfers without device buffers
    /// (the portability backend's array uploads/downloads) and must still
    /// run through the schedule.
    #[inline]
    pub fn inject_fault(&self, site: FaultSite) -> Result<u64, SimError> {
        if !self.chaos_on.load(Ordering::Relaxed) {
            return Ok(0);
        }
        self.inject_fault_slow(site)
    }

    #[cold]
    fn inject_fault_slow(&self, site: FaultSite) -> Result<u64, SimError> {
        let engine = match self.chaos.lock().as_ref() {
            Some(eng) => Arc::clone(eng),
            None => return Ok(0),
        };
        match engine.next(site) {
            None => Ok(0),
            Some(FaultEvent {
                action: FaultAction::Delay(ns),
                ..
            }) => Ok(ns),
            Some(FaultEvent { occurrence, .. }) => Err(SimError::Faulted {
                site: site.label(),
                occurrence,
            }),
        }
    }

    // ------------------------------------------------------------------
    // Clock and op log
    // ------------------------------------------------------------------

    /// Current virtual clock, nanoseconds since device creation/reset.
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns.load(Ordering::Relaxed)
    }

    /// Reset the virtual clock (benchmark harness hygiene between series).
    pub fn reset_clock(&self) {
        self.clock_ns.store(0, Ordering::Relaxed);
    }

    /// Advance the clock by `ns` and log the op; used by backend layers to
    /// charge costs the raw device does not know about (e.g. portability-
    /// layer argument packing).
    pub fn charge(&self, kind: OpKind, bytes: u64, threads: u64, ns: f64) -> u64 {
        let ns = ns.max(0.0).round() as u64;
        let after = self.clock_ns.fetch_add(ns, Ordering::Relaxed) + ns;
        let mut log = self.op_log.lock();
        if log.len() == OP_LOG_CAP {
            // O(1) ring step (a `Vec::remove(0)` here would memmove the whole
            // log on every op once the cap is reached — per-launch overhead).
            log.pop_front();
        }
        log.push_back(OpRecord {
            kind,
            bytes,
            threads,
            modeled_ns: ns,
            clock_after_ns: after,
        });
        ns
    }

    /// Snapshot of the most recent operations (up to an internal cap).
    pub fn op_log(&self) -> Vec<OpRecord> {
        self.op_log.lock().iter().cloned().collect()
    }

    /// Record a timestamp on the device clock.
    pub fn record_event(&self) -> Event {
        Event {
            t_ns: self.clock_ns(),
            device_id: self.id,
        }
    }

    /// Block until all submitted work completes: folds every stream's
    /// completion time into the device clock (async work executed eagerly,
    /// so functionally this is already done — the fold is the *temporal*
    /// join).
    pub fn synchronize(&self) {
        let mut streams = self.stream_clocks.lock();
        let latest = streams.values().copied().max().unwrap_or(0);
        streams.clear();
        let mut current = self.clock_ns();
        while latest > current {
            match self.clock_ns_cas(current, latest) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    /// Wait for one stream: fold its completion time into the device clock.
    pub fn sync_stream(&self, stream: &Stream) {
        assert_eq!(stream.device_id(), self.id, "stream from another device");
        let mut streams = self.stream_clocks.lock();
        if let Some(end) = streams.remove(&stream.id()) {
            drop(streams);
            let mut current = self.clock_ns();
            while end > current {
                match self.clock_ns_cas(current, end) {
                    Ok(_) => break,
                    Err(actual) => current = actual,
                }
            }
        }
    }

    fn clock_ns_cas(&self, current: u64, new: u64) -> Result<u64, u64> {
        self.clock_ns
            .compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
    }

    /// The modeled completion time of a stream's pending work (absolute
    /// device ns), or `None` when the stream is idle.
    pub fn stream_clock_ns(&self, stream: &Stream) -> Option<u64> {
        self.stream_clocks.lock().get(&stream.id()).copied()
    }

    /// The device's default stream.
    pub fn default_stream(&self) -> Stream {
        Stream::default_for(self.id)
    }

    /// Create a new stream.
    pub fn create_stream(&self) -> Stream {
        Stream::new_for(self.id)
    }

    // ------------------------------------------------------------------
    // Memory management
    // ------------------------------------------------------------------

    /// Allocate a zero-initialized buffer of `len` elements.
    pub fn alloc<T: Element>(&self, len: usize) -> Result<DeviceBuffer<T>, SimError> {
        let in_use = self.used_bytes();
        // An overflowing byte count can never fit in any device: surface it
        // as OOM instead of wrapping into a tiny (and wildly unsound)
        // allocation with a huge `len`.
        let bytes = len
            .checked_mul(std::mem::size_of::<T>())
            .ok_or(SimError::OutOfMemory {
                requested: usize::MAX,
                in_use,
                capacity: self.spec.memory_bytes,
            })?;
        // Injected alloc faults present as out-of-memory — the failure
        // class a real driver reports for a failed `cudaMalloc`. (A delay
        // at this site is logged but free: allocation advances no clock.)
        if self.inject_fault(FaultSite::Alloc).is_err()
            || in_use
                .checked_add(bytes)
                .is_none_or(|total| total > self.spec.memory_bytes)
        {
            return Err(SimError::OutOfMemory {
                requested: bytes,
                in_use,
                capacity: self.spec.memory_bytes,
            });
        }
        let alloc = if self.sanitizer_enabled() {
            let meta = self.sanitizer.new_meta::<T>(len, bytes);
            let alloc = Arc::new(Allocation::new_sanitized(
                bytes,
                Arc::clone(&self.used_bytes),
                Arc::clone(&meta),
            ));
            // Install the back-pointer before registering so the canary
            // sweep can always reach the live memory.
            let _ = meta.alloc.set(Arc::downgrade(&alloc));
            self.sanitizer.register(meta);
            alloc
        } else {
            Arc::new(Allocation::new(bytes, Arc::clone(&self.used_bytes)))
        };
        Ok(DeviceBuffer {
            alloc,
            len,
            device_id: self.id,
            _marker: PhantomData,
        })
    }

    /// Allocate and upload host data (charges the H2D transfer).
    pub fn alloc_from<T: Element>(&self, host: &[T]) -> Result<DeviceBuffer<T>, SimError> {
        let buf = self.alloc::<T>(host.len())?;
        self.upload(&buf, host)?;
        Ok(buf)
    }

    /// Copy host data into a device buffer (H2D).
    pub fn upload<T: Element>(&self, buf: &DeviceBuffer<T>, host: &[T]) -> Result<(), SimError> {
        self.check_owned(buf)?;
        if host.len() != buf.len {
            return Err(SimError::SizeMismatch {
                expected: buf.len,
                actual: host.len(),
            });
        }
        // Injected before the copy, so a failed transfer leaves device
        // memory untouched and a retry re-runs it from a clean slate.
        let spike = self.inject_fault(FaultSite::H2d)?;
        // SAFETY: destination allocation holds exactly `len` elements of T.
        unsafe {
            std::ptr::copy_nonoverlapping(host.as_ptr(), buf.alloc.ptr() as *mut T, host.len());
        }
        let bytes = buf.size_bytes();
        self.charge(
            OpKind::H2D,
            bytes as u64,
            0,
            perf::transfer_time_ns(&self.spec, bytes) + spike as f64,
        );
        Ok(())
    }

    /// Copy a device buffer back to the host (D2H).
    pub fn download<T: Element>(
        &self,
        buf: &DeviceBuffer<T>,
        host: &mut [T],
    ) -> Result<(), SimError> {
        self.check_owned(buf)?;
        if host.len() != buf.len {
            return Err(SimError::SizeMismatch {
                expected: buf.len,
                actual: host.len(),
            });
        }
        let spike = self.inject_fault(FaultSite::D2h)?;
        // SAFETY: source allocation holds exactly `len` elements of T.
        unsafe {
            std::ptr::copy_nonoverlapping(buf.alloc.ptr() as *const T, host.as_mut_ptr(), buf.len);
        }
        let bytes = buf.size_bytes();
        self.charge(
            OpKind::D2H,
            bytes as u64,
            0,
            perf::transfer_time_ns(&self.spec, bytes) + spike as f64,
        );
        Ok(())
    }

    /// Download into a fresh `Vec`.
    pub fn read_vec<T: Element>(&self, buf: &DeviceBuffer<T>) -> Result<Vec<T>, SimError> {
        self.check_owned(buf)?;
        let spike = self.inject_fault(FaultSite::D2h)?;
        // Copy straight into the Vec's spare capacity: materializing a
        // zeroed `T` first would be UB for types like `NonZeroU32` where
        // the all-zero bit pattern is invalid.
        let mut out: Vec<T> = Vec::with_capacity(buf.len);
        // SAFETY: `buf.len` elements fit in the reserved capacity; the
        // source allocation holds exactly `len` elements of T; every
        // element is initialized before `set_len`.
        unsafe {
            std::ptr::copy_nonoverlapping(buf.alloc.ptr() as *const T, out.as_mut_ptr(), buf.len);
            out.set_len(buf.len);
        }
        let bytes = buf.size_bytes();
        self.charge(
            OpKind::D2H,
            bytes as u64,
            0,
            perf::transfer_time_ns(&self.spec, bytes) + spike as f64,
        );
        Ok(out)
    }

    /// Read a single element (a tiny D2H transfer — the expensive result
    /// readback at the end of GPU reductions).
    pub fn read_scalar<T: Element>(
        &self,
        buf: &DeviceBuffer<T>,
        index: usize,
    ) -> Result<T, SimError> {
        self.check_owned(buf)?;
        if index >= buf.len {
            return Err(SimError::OutOfBounds {
                offset: index,
                len: 1,
                buffer_len: buf.len,
            });
        }
        let spike = self.inject_fault(FaultSite::D2h)?;
        // SAFETY: bounds checked above.
        let value = unsafe { *(buf.alloc.ptr() as *const T).add(index) };
        self.charge(
            OpKind::D2H,
            std::mem::size_of::<T>() as u64,
            0,
            perf::transfer_time_ns(&self.spec, std::mem::size_of::<T>()) + spike as f64,
        );
        Ok(value)
    }

    /// Device-to-device copy between buffers of equal length.
    pub fn copy<T: Element>(
        &self,
        src: &DeviceBuffer<T>,
        dst: &DeviceBuffer<T>,
    ) -> Result<(), SimError> {
        self.check_owned(src)?;
        self.check_owned(dst)?;
        if src.len != dst.len {
            return Err(SimError::SizeMismatch {
                expected: dst.len,
                actual: src.len,
            });
        }
        if Arc::ptr_eq(&src.alloc, &dst.alloc) {
            // Exact self-copy: `copy_nonoverlapping` on overlapping ranges
            // is UB, and the result is the identity anyway — no-op, free.
            return Ok(());
        }
        // SAFETY: distinct allocations of equal length (checked above;
        // separate allocations never partially overlap).
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.alloc.ptr() as *const T,
                dst.alloc.ptr() as *mut T,
                src.len,
            );
        }
        let bytes = src.size_bytes();
        self.charge(
            OpKind::D2D,
            bytes as u64,
            0,
            perf::d2d_time_ns(&self.spec, bytes),
        );
        Ok(())
    }

    /// Copy a buffer to another device (peer-to-peer). The transfer is
    /// priced at the slower of the two devices' host links (a staged
    /// device-host-device path — conservative for systems without direct
    /// fabric) and charged to **both** device clocks. The paper lists
    /// multi-device support as future work; the simulator provides the
    /// substrate for it.
    pub fn copy_to_peer<T: Element>(
        &self,
        src: &DeviceBuffer<T>,
        peer: &Device,
        dst: &DeviceBuffer<T>,
    ) -> Result<(), SimError> {
        self.check_owned(src)?;
        peer.check_owned(dst)?;
        if src.len != dst.len {
            return Err(SimError::SizeMismatch {
                expected: dst.len,
                actual: src.len,
            });
        }
        if Arc::ptr_eq(&src.alloc, &dst.alloc) {
            // Same allocation on both ends (only possible when `peer` is
            // this device): a staged self-transfer is a programming error.
            return Err(SimError::OverlappingCopy);
        }
        // SAFETY: distinct allocations of equal length (checked above;
        // separate allocations never partially overlap).
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.alloc.ptr() as *const T,
                dst.alloc.ptr() as *mut T,
                src.len,
            );
        }
        let bytes = src.size_bytes();
        let ns = perf::transfer_time_ns(&self.spec, bytes)
            .max(perf::transfer_time_ns(&peer.spec, bytes));
        self.charge(OpKind::D2H, bytes as u64, 0, ns);
        peer.charge(OpKind::H2D, bytes as u64, 0, ns);
        Ok(())
    }

    /// A read-only view for kernel bodies (participates in the sanitizer's
    /// read tracking when enabled at view-creation time).
    pub fn slice<T: Element>(&self, buf: &DeviceBuffer<T>) -> Result<DeviceSlice<T>, SimError> {
        self.check_owned(buf)?;
        if self.sanitizer_enabled() {
            Ok(DeviceSlice::new_tracked(
                buf,
                Some(Arc::clone(&self.tracker)),
                buf.alloc.meta().cloned(),
            ))
        } else {
            Ok(DeviceSlice::new(buf))
        }
    }

    /// A writable view for kernel bodies (participates in racecheck and the
    /// sanitizer when enabled at view-creation time).
    pub fn slice_mut<T: Element>(
        &self,
        buf: &DeviceBuffer<T>,
    ) -> Result<DeviceSliceMut<T>, SimError> {
        self.check_owned(buf)?;
        let sanitize = self.sanitizer_enabled();
        let tracker = if self.racecheck_enabled() || sanitize {
            Some(Arc::clone(&self.tracker))
        } else {
            None
        };
        let meta = if sanitize {
            buf.alloc.meta().cloned()
        } else {
            None
        };
        Ok(DeviceSliceMut::new_tracked(buf, tracker, meta))
    }

    fn check_owned<T: Element>(&self, buf: &DeviceBuffer<T>) -> Result<(), SimError> {
        if buf.device_id != self.id {
            return Err(SimError::WrongDevice {
                buffer_device: buf.device_id,
                this_device: self.id,
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Kernel launches
    // ------------------------------------------------------------------

    /// Launch a non-cooperative kernel: `body` runs once per simulated
    /// thread. Returns the modeled duration in nanoseconds.
    pub fn launch<F>(&self, cfg: LaunchConfig, cost: KernelCost, body: F) -> Result<u64, SimError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        self.launch_phased(cfg, cost, &SinglePhase(body))
    }

    /// Functionally execute every block/thread of a launch (shared by the
    /// synchronous, asynchronous, and cooperative paths).
    ///
    /// Hot-path structure (see DESIGN.md §gpusim "execution hot path"):
    /// blocks are distributed in tuned multi-block chunks ([`block_chunk`]);
    /// each block runs out of its host thread's reusable [`arena`] (zero
    /// steady-state allocations); non-cooperative kernels (single phase,
    /// zero-sized state, no shared memory, racecheck off) skip the arena and
    /// phase/state machinery entirely.
    fn execute_grid<K: PhasedKernel>(&self, cfg: LaunchConfig, kernel: &K) {
        let racecheck = self.racecheck_enabled();
        let sanitize = self.sanitizer_enabled();
        if racecheck || sanitize {
            self.tracker.begin_epoch();
            self.tracker.set_track_reads(sanitize);
        }
        let grid = cfg.grid;
        let block = cfg.block;
        let blocks = grid.count();
        let phases = kernel.num_phases();
        let schedule = Schedule::Dynamic {
            chunk: block_chunk(blocks, block.count(), self.pool.num_threads()),
        };

        // Fast path: nothing survives a barrier (single phase, zero-sized
        // state) and no shared memory, racecheck, or sanitizer is involved,
        // so each simulated thread costs only its context and the kernel
        // body.
        if phases == 1
            && std::mem::size_of::<K::State>() == 0
            && cfg.shared_mem_bytes == 0
            && !(racecheck || sanitize)
        {
            let empty = SharedMem::new(0);
            self.pool.parallel_for(blocks, schedule, |b| {
                let block_idx = grid.unflatten(b);
                for_each_thread(block, |thread_idx| {
                    let ctx = ThreadCtx {
                        block_idx,
                        thread_idx,
                        block_dim: block,
                        grid_dim: grid,
                    };
                    // Zero-sized, so construction is free and no state array
                    // is needed.
                    let mut state = K::State::default();
                    kernel.phase(0, &ctx, &mut state, &empty);
                });
            });
            return;
        }

        // General (cooperative) path: per-worker arenas hold the shared-mem
        // buffer and the state slots; the racecheck/sanitizer test is
        // hoisted into a const generic so the per-thread loop stays
        // branch-free.
        let san = sanitize.then_some(&*self.sanitizer);
        self.pool.parallel_for(blocks, schedule, |b| {
            arena::with_arena(|ar| {
                if racecheck || sanitize {
                    run_block_in_arena::<K, true>(kernel, ar, grid, block, &cfg, phases, b, san)
                } else {
                    run_block_in_arena::<K, false>(kernel, ar, grid, block, &cfg, phases, b, None)
                }
            });
        });
        if sanitize {
            self.sanitizer.sweep_canaries();
            self.sanitizer.count_launch();
        }
    }

    /// Functional-only reference executor preserving the pre-arena semantics:
    /// a fresh `SharedMem` and a fresh state `Vec` per block, `unflatten`
    /// per thread. Kept as the differential-test oracle for the arena hot
    /// path (see `tests/proptest_sim.rs`); does not validate the launch
    /// config or charge the timeline.
    #[doc(hidden)]
    pub fn execute_grid_reference<K: PhasedKernel>(&self, cfg: LaunchConfig, kernel: &K) {
        let racecheck = self.racecheck_enabled();
        let sanitize = self.sanitizer_enabled();
        let track = racecheck || sanitize;
        if track {
            self.tracker.begin_epoch();
            self.tracker.set_track_reads(sanitize);
        }
        let grid = cfg.grid;
        let block = cfg.block;
        let block_threads = block.count();
        let phases = kernel.num_phases();
        self.pool
            .parallel_for(grid.count(), Schedule::Dynamic { chunk: 0 }, |b| {
                let (bx, by, bz) = grid.unflatten(b);
                if sanitize {
                    sanitizer::set_active(true);
                }
                let shared = SharedMem::new(cfg.shared_mem_bytes);
                let mut states: Vec<K::State> = Vec::with_capacity(block_threads);
                states.resize_with(block_threads, K::State::default);
                for phase in 0..phases {
                    for (t, state) in states.iter_mut().enumerate() {
                        let (tx, ty, tz) = block.unflatten(t);
                        let ctx = ThreadCtx {
                            block_idx: (bx, by, bz),
                            thread_idx: (tx, ty, tz),
                            block_dim: block,
                            grid_dim: grid,
                        };
                        if track {
                            racecheck::set_sim_location(
                                ctx.global_linear() as u64,
                                b as u64,
                                phase as u32,
                            );
                        }
                        kernel.phase(phase, &ctx, state, &shared);
                    }
                    if sanitize {
                        self.sanitizer.check_block_phase((bx, by, bz), block, phase);
                    }
                }
                if track {
                    racecheck::clear_current_sim_thread();
                }
                if sanitize {
                    sanitizer::set_active(false);
                }
            });
    }

    /// Launch a cooperative kernel with barrier phases and per-block shared
    /// memory. Returns the modeled duration in nanoseconds.
    pub fn launch_phased<K>(
        &self,
        cfg: LaunchConfig,
        cost: KernelCost,
        kernel: &K,
    ) -> Result<u64, SimError>
    where
        K: PhasedKernel,
    {
        cfg.validate(&self.spec)?;
        // After validation (an injected fault is not a geometry error),
        // before execution (a failed launch must not run the kernel).
        let spike = self.inject_fault(FaultSite::Launch)?;
        let grid = cfg.grid;
        let block = cfg.block;
        self.execute_grid(cfg, kernel);

        let ns = perf::kernel_time_ns(&self.spec, grid, block, &cost) + spike as f64;
        let total_threads = cfg.total_threads() as u64;
        let bytes = (cost.bytes_per_thread() * total_threads as f64) as u64;
        Ok(self.charge(OpKind::Kernel, bytes, total_threads, ns))
    }

    // ------------------------------------------------------------------
    // Asynchronous (stream-ordered) work
    // ------------------------------------------------------------------

    /// Launch a kernel on a stream **asynchronously**: execution happens
    /// eagerly (results are visible immediately, as everywhere in the
    /// simulator), but the modeled time lands on the *stream's* clock, not
    /// the device clock — kernels on different streams overlap, kernels on
    /// one stream serialize. Call [`Device::sync_stream`] or
    /// [`Device::synchronize`] to join the stream time back into the
    /// device clock. The default stream is always synchronous; passing it
    /// here is equivalent to [`Device::launch`].
    ///
    /// The model ignores cross-stream bandwidth contention (each stream
    /// sees full device throughput); see `EXPERIMENTS.md`.
    pub fn launch_async<F>(
        &self,
        stream: &Stream,
        cfg: LaunchConfig,
        cost: KernelCost,
        body: F,
    ) -> Result<u64, SimError>
    where
        F: Fn(&ThreadCtx) + Sync,
    {
        if stream.is_default() {
            return self.launch(cfg, cost, body);
        }
        assert_eq!(stream.device_id(), self.id, "stream from another device");
        cfg.validate(&self.spec)?;
        // A `Fail` at the stream site rejects the async launch before it
        // executes; a `Delay` is a stream stall, extending the stream's
        // completion time.
        let stall = self.inject_fault(FaultSite::Stream)?;
        // Functional execution through the normal path, but capture the
        // modeled duration without advancing the device clock.
        let grid = cfg.grid;
        let block = cfg.block;
        self.execute_grid(cfg, &crate::phased::SinglePhase(body));
        let ns = perf::kernel_time_ns(&self.spec, grid, block, &cost).round() as u64 + stall;
        let mut streams = self.stream_clocks.lock();
        let issue = self.clock_ns();
        let start = streams.get(&stream.id()).copied().unwrap_or(0).max(issue);
        let end = start + ns;
        streams.insert(stream.id(), end);
        Ok(ns)
    }
}

impl Drop for Device {
    fn drop(&mut self) {
        // Leak report: a sanitized device dropping with buffers still live
        // prints the allocation table (backtraces included) to stderr.
        // Never panics — a Drop diagnostic must not abort the process.
        if self.sanitizer_enabled() {
            let report = self.sanitizer.report(self.id, &self.tracker);
            if !report.live_allocations.is_empty() {
                eprintln!("{report}");
            }
        }
    }
}

/// Iterate a block's threads in linear order (`x` fastest, matching
/// `Dim3::unflatten`) with nested counters instead of a div/mod per thread.
#[inline]
fn for_each_thread(block: Dim3, mut f: impl FnMut((u32, u32, u32))) {
    for tz in 0..block.z {
        for ty in 0..block.y {
            for tx in 0..block.x {
                f((tx, ty, tz));
            }
        }
    }
}

/// Execute one block out of a worker's arena. `RC` hoists the
/// racecheck/sanitizer branch out of the per-thread loop: the `false`
/// instantiation compiles to a loop with no tracking code at all. `san` is
/// `Some` when the sanitizer is on (always with `RC = true`), enabling
/// barrier-arrival bookkeeping per phase boundary.
#[allow(clippy::too_many_arguments)]
fn run_block_in_arena<K: PhasedKernel, const RC: bool>(
    kernel: &K,
    arena: &mut arena::LaunchArena,
    grid: Dim3,
    block: Dim3,
    cfg: &LaunchConfig,
    phases: usize,
    b: usize,
    san: Option<&Sanitizer>,
) {
    let block_idx = grid.unflatten(b);
    if san.is_some() {
        sanitizer::set_active(true);
    }
    arena.run_block::<K::State, _>(cfg.shared_mem_bytes, block.count(), |states, shared| {
        for phase in 0..phases {
            let mut t = 0;
            for_each_thread(block, |thread_idx| {
                let ctx = ThreadCtx {
                    block_idx,
                    thread_idx,
                    block_dim: block,
                    grid_dim: grid,
                };
                if RC {
                    racecheck::set_sim_location(ctx.global_linear() as u64, b as u64, phase as u32);
                }
                kernel.phase(phase, &ctx, &mut states[t], shared);
                t += 1;
            });
            if let Some(san) = san {
                san.check_block_phase(block_idx, block, phase);
            }
        }
    });
    if RC {
        racecheck::clear_current_sim_thread();
    }
    if san.is_some() {
        sanitizer::set_active(false);
    }
}

/// Blocks per dynamic-schedule grab for the block loop.
///
/// Tuned against `ablate_sched` on a 4-participant pool (see EXPERIMENTS.md):
/// single-block grabs were ~4x slower than 16+-block grabs for cheap
/// 64-thread blocks (atomic RMW per grab dominates), while grabs past ~64
/// blocks bought nothing and risk tail imbalance. So: target ~2048 simulated
/// thread-iterations per grab, clamp to [4, 64] blocks, and never exceed an
/// equal share of the grid.
fn block_chunk(blocks: usize, block_threads: usize, participants: usize) -> usize {
    if participants <= 1 {
        // Serial pool: `parallel_for` runs inline and ignores the schedule.
        return blocks.max(1);
    }
    let target = (2048 / block_threads.max(1)).clamp(4, 64);
    target.min((blocks / participants).max(1))
}

/// Build a dedicated handle to the global pool. `ThreadPool` is not `Clone`;
/// devices share the process-global pool through a small adapter pool of
/// size 1 when the global pool cannot be wrapped in an `Arc` directly.
fn pool_handle() -> ThreadPool {
    // Each device gets its own pool sized like the machine; creating a pool
    // is cheap (threads park when idle) and keeps devices independent.
    ThreadPool::new(default_pool_threads())
}

fn default_pool_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    fn small_device() -> Device {
        Device::new(profiles::test_device())
    }

    #[test]
    fn alloc_upload_download_round_trip() {
        let dev = small_device();
        let host: Vec<f64> = (0..1000).map(|i| i as f64 * 0.5).collect();
        let buf = dev.alloc_from(&host).unwrap();
        assert_eq!(buf.len(), 1000);
        let back = dev.read_vec(&buf).unwrap();
        assert_eq!(back, host);
        assert_eq!(dev.used_bytes(), 8000);
        drop(buf);
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn transfers_advance_clock() {
        let dev = small_device();
        assert_eq!(dev.clock_ns(), 0);
        let buf = dev.alloc_from(&vec![0u8; 1 << 20]).unwrap();
        let t1 = dev.clock_ns();
        assert!(t1 > 0, "H2D must cost time");
        let _ = dev.read_vec(&buf).unwrap();
        assert!(dev.clock_ns() > t1, "D2H must cost time");
        let log = dev.op_log();
        assert_eq!(log[0].kind, OpKind::H2D);
        assert_eq!(log[1].kind, OpKind::D2H);
        dev.reset_clock();
        assert_eq!(dev.clock_ns(), 0);
    }

    #[test]
    fn oom_is_reported_not_panicked() {
        let dev = small_device(); // 16 MiB
        let err = dev.alloc::<f64>(10 << 20).unwrap_err();
        match err {
            SimError::OutOfMemory {
                requested,
                capacity,
                ..
            } => {
                assert_eq!(requested, 80 << 20);
                assert_eq!(capacity, 16 << 20);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // Memory frees make room again.
        let a = dev.alloc::<u8>(12 << 20).unwrap();
        assert!(dev.alloc::<u8>(8 << 20).is_err());
        drop(a);
        assert!(dev.alloc::<u8>(8 << 20).is_ok());
    }

    #[test]
    fn wrong_device_buffers_rejected() {
        let a = small_device();
        let b = small_device();
        let buf = a.alloc::<f64>(10).unwrap();
        assert!(matches!(
            b.read_vec(&buf).unwrap_err(),
            SimError::WrongDevice { .. }
        ));
        assert!(matches!(
            b.slice(&buf).unwrap_err(),
            SimError::WrongDevice { .. }
        ));
    }

    #[test]
    fn size_mismatch_rejected() {
        let dev = small_device();
        let buf = dev.alloc::<f64>(10).unwrap();
        assert!(matches!(
            dev.upload(&buf, &[1.0; 9]).unwrap_err(),
            SimError::SizeMismatch {
                expected: 10,
                actual: 9
            }
        ));
        let mut out = vec![0.0; 11];
        assert!(dev.download(&buf, &mut out).is_err());
    }

    #[test]
    fn launch_executes_every_thread_once() {
        let dev = small_device();
        let n = 1000usize;
        let buf = dev.alloc::<u32>(n).unwrap();
        let view = dev.slice_mut(&buf).unwrap();
        let cfg = LaunchConfig::linear(n, 64);
        dev.launch(cfg, KernelCost::default(), |t| {
            let i = t.global_id_x();
            if i < n {
                view.set(i, view.get(i) + 1);
            }
        })
        .unwrap();
        let host = dev.read_vec(&buf).unwrap();
        assert!(host.iter().all(|&x| x == 1));
    }

    #[test]
    fn launch_advances_clock_by_at_least_overhead() {
        let dev = small_device();
        let before = dev.clock_ns();
        let ns = dev
            .launch(LaunchConfig::linear(64, 64), KernelCost::default(), |_| {})
            .unwrap();
        assert!(ns as f64 >= dev.spec().launch_overhead_ns);
        assert_eq!(dev.clock_ns(), before + ns);
    }

    #[test]
    fn invalid_launch_rejected_before_execution() {
        let dev = small_device();
        let ran = std::sync::atomic::AtomicBool::new(false);
        let err = dev
            .launch(
                LaunchConfig::new(1u32, 128u32), // limit is 64
                KernelCost::default(),
                |_| ran.store(true, Ordering::Relaxed),
            )
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidLaunch { .. }));
        assert!(!ran.load(Ordering::Relaxed));
    }

    #[test]
    fn two_d_launch_covers_plane() {
        let dev = small_device();
        let (m, n) = (30usize, 20usize);
        let buf = dev.alloc::<u32>(m * n).unwrap();
        let view = dev.slice_mut(&buf).unwrap();
        let cfg = LaunchConfig::tiled_2d(m, n, 8, 8);
        dev.launch(cfg, KernelCost::default(), |t| {
            let (i, j) = (t.global_id_x(), t.global_id_y());
            if i < m && j < n {
                view.set(j * m + i, (j * m + i) as u32);
            }
        })
        .unwrap();
        let host = dev.read_vec(&buf).unwrap();
        for (idx, v) in host.iter().enumerate() {
            assert_eq!(*v, idx as u32);
        }
    }

    #[test]
    fn phased_kernel_tree_reduction() {
        // The paper's Fig. 3 structure: products to shared memory, tree
        // reduce, one partial per block.
        struct BlockDot {
            n: usize,
            x: DeviceSlice<f64>,
            y: DeviceSlice<f64>,
            out: DeviceSliceMut<f64>,
            steps: usize,
            block_size: usize,
        }
        impl PhasedKernel for BlockDot {
            type State = ();
            fn num_phases(&self) -> usize {
                2 + self.steps
            }
            fn phase(&self, phase: usize, ctx: &ThreadCtx, _s: &mut (), shared: &SharedMem) {
                let ti = ctx.thread_linear();
                if phase == 0 {
                    let i = ctx.global_id_x();
                    let v = if i < self.n {
                        self.x.get(i) * self.y.get(i)
                    } else {
                        0.0
                    };
                    shared.set::<f64>(ti, v);
                } else if phase <= self.steps {
                    let half = self.block_size >> phase;
                    if ti < half {
                        let a = shared.get::<f64>(ti);
                        let b = shared.get::<f64>(ti + half);
                        shared.set::<f64>(ti, a + b);
                    }
                } else if ti == 0 {
                    self.out.set(ctx.block_linear(), shared.get::<f64>(0));
                }
            }
        }
        let dev = small_device();
        let n = 1000usize;
        let hx: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let hy: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let expected: f64 = hx.iter().zip(&hy).map(|(a, b)| a * b).sum();
        let x = dev.alloc_from(&hx).unwrap();
        let y = dev.alloc_from(&hy).unwrap();
        let block_size = 64usize;
        let blocks = n.div_ceil(block_size);
        let out = dev.alloc::<f64>(blocks).unwrap();
        let kernel = BlockDot {
            n,
            x: dev.slice(&x).unwrap(),
            y: dev.slice(&y).unwrap(),
            out: dev.slice_mut(&out).unwrap(),
            steps: block_size.trailing_zeros() as usize,
            block_size,
        };
        let cfg =
            LaunchConfig::new(blocks as u32, block_size as u32).with_shared_mem(block_size * 8);
        dev.launch_phased(cfg, KernelCost::memory_bound(16.0, 8.0), &kernel)
            .unwrap();
        let partials = dev.read_vec(&out).unwrap();
        let total: f64 = partials.iter().sum();
        assert!((total - expected).abs() < 1e-9, "{total} vs {expected}");
    }

    #[test]
    fn racecheck_catches_overlapping_writes() {
        let dev = small_device();
        dev.set_racecheck(true);
        let buf = dev.alloc::<f64>(8).unwrap();
        let view = dev.slice_mut(&buf).unwrap();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.launch(LaunchConfig::linear(64, 64), KernelCost::default(), |_t| {
                view.set(0, 1.0); // every simulated thread writes element 0
            })
        }));
        assert!(result.is_err(), "racecheck must fire");
    }

    #[test]
    fn racecheck_passes_disjoint_writes() {
        let dev = small_device();
        dev.set_racecheck(true);
        let n = 128usize;
        let buf = dev.alloc::<f64>(n).unwrap();
        let view = dev.slice_mut(&buf).unwrap();
        dev.launch(LaunchConfig::linear(n, 64), KernelCost::default(), |t| {
            let i = t.global_id_x();
            if i < n {
                view.set(i, 1.0);
            }
        })
        .unwrap();
    }

    #[test]
    fn d2d_copy_and_scalar_read() {
        let dev = small_device();
        let a = dev.alloc_from(&vec![3.5f64; 64]).unwrap();
        let b = dev.alloc::<f64>(64).unwrap();
        dev.copy(&a, &b).unwrap();
        assert_eq!(dev.read_scalar(&b, 63).unwrap(), 3.5);
        assert!(dev.read_scalar(&b, 64).is_err());
        let c = dev.alloc::<f64>(32).unwrap();
        assert!(dev.copy(&a, &c).is_err());
    }

    #[test]
    fn events_measure_kernels() {
        let dev = small_device();
        let e0 = dev.record_event();
        dev.launch(
            LaunchConfig::linear(4096, 64),
            KernelCost::default(),
            |_| {},
        )
        .unwrap();
        let e1 = dev.record_event();
        assert!(e0.elapsed_ns(&e1) > 0);
        dev.synchronize();
    }

    #[test]
    fn op_log_is_a_bounded_ring() {
        let dev = small_device();
        // More charges than the cap: the log must keep only the newest.
        for i in 0..(OP_LOG_CAP + 100) {
            dev.charge(OpKind::Sync, i as u64, 0, 1.0);
        }
        let log = dev.op_log();
        assert_eq!(log.len(), OP_LOG_CAP);
        assert_eq!(log.last().unwrap().bytes, (OP_LOG_CAP + 99) as u64);
        assert_eq!(log[0].bytes, 100, "oldest entries evicted");
    }

    #[test]
    fn streams_exist_and_are_distinct() {
        let dev = small_device();
        assert!(dev.default_stream().is_default());
        let s = dev.create_stream();
        assert!(!s.is_default());
        assert_eq!(s.device_id(), dev.id());
    }
}

#[cfg(test)]
mod peer_tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn peer_copy_moves_data_and_charges_both_clocks() {
        let a = Device::new(profiles::test_device());
        let b = Device::new(profiles::test_device());
        let src = a.alloc_from(&vec![7.5f64; 1024]).unwrap();
        let dst = b.alloc::<f64>(1024).unwrap();
        let (ca0, cb0) = (a.clock_ns(), b.clock_ns());
        a.copy_to_peer(&src, &b, &dst).unwrap();
        assert!(a.clock_ns() > ca0, "source clock advances");
        assert!(b.clock_ns() > cb0, "destination clock advances");
        assert!(b.read_vec(&dst).unwrap().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn peer_copy_validates_ownership_and_sizes() {
        let a = Device::new(profiles::test_device());
        let b = Device::new(profiles::test_device());
        let src = a.alloc::<f64>(8).unwrap();
        let wrong_len = b.alloc::<f64>(9).unwrap();
        assert!(matches!(
            a.copy_to_peer(&src, &b, &wrong_len).unwrap_err(),
            SimError::SizeMismatch { .. }
        ));
        let on_a = a.alloc::<f64>(8).unwrap();
        assert!(matches!(
            a.copy_to_peer(&src, &b, &on_a).unwrap_err(),
            SimError::WrongDevice { .. }
        ));
        let on_b = b.alloc::<f64>(8).unwrap();
        assert!(matches!(
            b.copy_to_peer(&src, &a, &on_b).unwrap_err(),
            SimError::WrongDevice { .. }
        ));
    }

    #[test]
    fn peer_copy_cost_is_the_slower_link() {
        let fast = Device::new(profiles::nvidia_a100()); // 25 GB/s link
        let slow = Device::new(profiles::amd_mi100()); // 16 GB/s link
        let bytes = 1 << 24;
        let src = fast.alloc::<u8>(bytes).unwrap();
        let dst = slow.alloc::<u8>(bytes).unwrap();
        let c0 = fast.clock_ns();
        fast.copy_to_peer(&src, &slow, &dst).unwrap();
        let elapsed = fast.clock_ns() - c0;
        let slow_link = crate::perf::transfer_time_ns(slow.spec(), bytes);
        assert!(
            (elapsed as f64 - slow_link).abs() < 2.0,
            "{elapsed} vs {slow_link}"
        );
    }
}

#[cfg(test)]
mod stream_tests {
    use super::*;
    use crate::profiles;

    fn dev_and_work() -> (Device, LaunchConfig, KernelCost) {
        let dev = Device::new(profiles::test_device());
        // Big enough that kernel time dominates launch overhead.
        let cfg = LaunchConfig::linear(1 << 16, 64);
        let cost = KernelCost::memory_bound(64.0, 64.0);
        (dev, cfg, cost)
    }

    #[test]
    fn different_streams_overlap() {
        let (dev, cfg, cost) = dev_and_work();
        let s1 = dev.create_stream();
        let s2 = dev.create_stream();
        let ns1 = dev.launch_async(&s1, cfg, cost, |_| {}).unwrap();
        let ns2 = dev.launch_async(&s2, cfg, cost, |_| {}).unwrap();
        assert_eq!(dev.clock_ns(), 0, "async launches leave the device clock");
        assert!(dev.stream_clock_ns(&s1).is_some());
        dev.synchronize();
        let elapsed = dev.clock_ns();
        // Overlapped: total = max, not sum.
        assert_eq!(
            elapsed,
            ns1.max(ns2),
            "overlap expected: {elapsed} vs {ns1}+{ns2}"
        );
        assert!(dev.stream_clock_ns(&s1).is_none(), "sync clears streams");
    }

    #[test]
    fn same_stream_serializes() {
        let (dev, cfg, cost) = dev_and_work();
        let s = dev.create_stream();
        let ns1 = dev.launch_async(&s, cfg, cost, |_| {}).unwrap();
        let ns2 = dev.launch_async(&s, cfg, cost, |_| {}).unwrap();
        dev.sync_stream(&s);
        assert_eq!(dev.clock_ns(), ns1 + ns2);
    }

    #[test]
    fn default_stream_stays_synchronous() {
        let (dev, cfg, cost) = dev_and_work();
        let default = dev.default_stream();
        let ns = dev.launch_async(&default, cfg, cost, |_| {}).unwrap();
        assert_eq!(dev.clock_ns(), ns, "default stream charges immediately");
    }

    #[test]
    fn async_work_issued_after_sync_starts_later() {
        let (dev, cfg, cost) = dev_and_work();
        // Some synchronous work first.
        let sync_ns = dev.launch(cfg, cost, |_| {}).unwrap();
        let s = dev.create_stream();
        let async_ns = dev.launch_async(&s, cfg, cost, |_| {}).unwrap();
        dev.sync_stream(&s);
        // The async kernel could not start before its issue time.
        assert_eq!(dev.clock_ns(), sync_ns + async_ns);
    }

    #[test]
    fn async_results_are_visible_immediately() {
        let dev = Device::new(profiles::test_device());
        let buf = dev.alloc::<u32>(256).unwrap();
        let v = dev.slice_mut(&buf).unwrap();
        let s = dev.create_stream();
        dev.launch_async(
            &s,
            LaunchConfig::linear(256, 64),
            KernelCost::default(),
            |t| {
                let i = t.global_id_x();
                if i < 256 {
                    v.set(i, i as u32);
                }
            },
        )
        .unwrap();
        // Functional eagerness: data is there before any sync.
        let host = dev.read_vec(&buf).unwrap();
        for (i, x) in host.iter().enumerate() {
            assert_eq!(*x, i as u32);
        }
        dev.synchronize();
    }

    #[test]
    #[should_panic(expected = "another device")]
    fn cross_device_stream_rejected() {
        let a = Device::new(profiles::test_device());
        let b = Device::new(profiles::test_device());
        let s = b.create_stream();
        let _ = a.launch_async(
            &s,
            LaunchConfig::linear(64, 64),
            KernelCost::default(),
            |_| {},
        );
    }
}

#[cfg(test)]
mod sanitizer_tests {
    use super::*;
    use crate::profiles;

    fn small_device() -> Device {
        Device::new(profiles::test_device())
    }

    // ---- soundness regression tests (PR 3) ------------------------------

    #[test]
    fn overflowing_alloc_is_oom_not_wraparound() {
        let dev = small_device();
        // len * size_of::<f64>() overflows usize; before the checked_mul fix
        // this wrapped to a tiny byte count and "succeeded".
        let err = dev.alloc::<f64>(usize::MAX / 4).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }), "{err:?}");
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn self_copy_is_a_free_noop() {
        let dev = small_device();
        let a = dev.alloc_from(&vec![2.5f64; 64]).unwrap();
        let clock = dev.clock_ns();
        dev.copy(&a, &a).unwrap();
        assert_eq!(dev.clock_ns(), clock, "self-copy must not charge time");
        assert_eq!(dev.read_vec(&a).unwrap(), vec![2.5f64; 64]);
    }

    #[test]
    fn peer_self_copy_is_rejected() {
        let dev = small_device();
        let a = dev.alloc_from(&[1u32; 16]).unwrap();
        assert_eq!(
            dev.copy_to_peer(&a, &dev, &a).unwrap_err(),
            SimError::OverlappingCopy
        );
    }

    #[test]
    fn read_vec_round_trips_niche_types() {
        use std::num::NonZeroU32;
        let dev = small_device();
        // `vec![zeroed; n]` would be instant UB for a niche type like
        // NonZeroU32; read_vec must build the Vec without materializing
        // zeroed elements.
        let host: Vec<NonZeroU32> = (1..=257u32).map(|i| NonZeroU32::new(i).unwrap()).collect();
        let buf = dev.alloc_from(&host).unwrap();
        assert_eq!(dev.read_vec(&buf).unwrap(), host);
    }

    #[test]
    fn zero_len_alloc_charges_nothing() {
        let dev = small_device();
        let buf = dev.alloc::<f64>(0).unwrap();
        assert_eq!(dev.used_bytes(), 0);
        assert!(dev.read_vec(&buf).unwrap().is_empty());
        drop(buf);
        assert_eq!(dev.used_bytes(), 0);
    }

    // ---- sanitizer (simsan) tests ---------------------------------------

    /// Unwrap a panic payload into its message.
    fn panic_msg(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn sanitizer_oob_access_names_the_allocation() {
        let dev = small_device();
        dev.set_sanitizer(true);
        let n = 8usize;
        let buf = dev.alloc::<f64>(n).unwrap();
        let view = dev.slice_mut(&buf).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.launch(LaunchConfig::linear(64, 64), KernelCost::default(), |t| {
                // Classic missing bounds guard: threads past n write anyway.
                view.set(t.global_id_x(), 1.0);
            })
        }))
        .unwrap_err();
        let msg = panic_msg(err);
        assert!(msg.contains("simsan"), "{msg}");
        assert!(msg.contains("out of bounds"), "{msg}");
        assert!(msg.contains("allocation #"), "{msg}");
    }

    #[test]
    fn sanitizer_detects_read_write_race() {
        let dev = small_device();
        dev.set_sanitizer(true);
        let buf = dev.alloc::<f64>(8).unwrap();
        let view = dev.slice_mut(&buf).unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.launch(LaunchConfig::linear(64, 64), KernelCost::default(), |t| {
                // Thread 0 writes the element every other thread reads, with
                // no barrier between — a read-write race.
                if t.global_id_x() == 0 {
                    view.set(0, 1.0);
                } else {
                    let _ = view.get(0);
                }
            })
        }))
        .unwrap_err();
        let msg = panic_msg(err);
        assert!(msg.contains("read-write race"), "{msg}");
    }

    #[test]
    fn sanitizer_allows_barrier_separated_read_write() {
        struct Broadcast {
            data: DeviceSliceMut<f64>,
        }
        impl PhasedKernel for Broadcast {
            type State = f64;
            fn num_phases(&self) -> usize {
                2
            }
            fn phase(&self, phase: usize, ctx: &ThreadCtx, s: &mut f64, _sh: &SharedMem) {
                let ti = ctx.thread_linear();
                if phase == 0 {
                    // Every thread reads element 0...
                    *s = self.data.get(0);
                    ctx.barrier();
                } else if ti == 1 {
                    // ...and after the implicit barrier one thread may
                    // legally overwrite it.
                    self.data.set(0, *s + 1.0);
                }
            }
        }
        let dev = small_device();
        dev.set_sanitizer(true);
        let buf = dev.alloc_from(&[41.0f64; 8]).unwrap();
        let kernel = Broadcast {
            data: dev.slice_mut(&buf).unwrap(),
        };
        dev.launch_phased(
            LaunchConfig::new(1u32, 64u32),
            KernelCost::default(),
            &kernel,
        )
        .unwrap();
        assert_eq!(dev.read_scalar(&buf, 0).unwrap(), 42.0);
    }

    #[test]
    fn sanitizer_detects_barrier_divergence() {
        struct Divergent;
        impl PhasedKernel for Divergent {
            type State = ();
            fn num_phases(&self) -> usize {
                2
            }
            fn phase(&self, phase: usize, ctx: &ThreadCtx, _s: &mut (), _sh: &SharedMem) {
                // `__syncthreads` inside a divergent branch: only the first
                // half of the block arrives.
                if phase == 0 && ctx.thread_linear() < 32 {
                    ctx.barrier();
                }
            }
        }
        let dev = small_device();
        dev.set_sanitizer(true);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            dev.launch_phased(
                LaunchConfig::new(2u32, 64u32),
                KernelCost::default(),
                &Divergent,
            )
        }))
        .unwrap_err();
        let msg = panic_msg(err);
        assert!(msg.contains("barrier divergence"), "{msg}");
        assert!(msg.contains("32 of 64"), "{msg}");
    }

    #[test]
    fn sanitizer_full_barrier_is_clean() {
        struct Uniform;
        impl PhasedKernel for Uniform {
            type State = ();
            fn num_phases(&self) -> usize {
                2
            }
            fn phase(&self, _phase: usize, ctx: &ThreadCtx, _s: &mut (), _sh: &SharedMem) {
                ctx.barrier();
            }
        }
        let dev = small_device();
        dev.set_sanitizer(true);
        dev.launch_phased(
            LaunchConfig::new(2u32, 64u32),
            KernelCost::default(),
            &Uniform,
        )
        .unwrap();
        let report = dev.sanitizer_report().unwrap();
        assert!(report.barriers_checked > 0);
    }

    #[test]
    fn sanitizer_reports_leaked_allocations() {
        let dev = small_device();
        dev.set_sanitizer(true);
        let buf = dev.alloc_from(&vec![0u8; 4096]).unwrap();
        std::mem::forget(buf); // deliberate leak
        let report = dev.sanitizer_report().unwrap();
        assert_eq!(report.live_allocations.len(), 1);
        assert_eq!(report.bytes_outstanding, 4096);
        assert!(report.to_string().contains("LEAK"), "{report}");
        // Freed buffers drop out of the report.
        let ok = dev.alloc::<f64>(8).unwrap();
        drop(ok);
        assert_eq!(dev.sanitizer_report().unwrap().live_allocations.len(), 1);
        // Silence the leak report in Device::drop for this deliberate leak.
        dev.set_sanitizer(false);
    }

    #[test]
    fn sanitizer_report_is_none_when_disabled() {
        let dev = small_device();
        dev.set_sanitizer(false); // override RACC_SANITIZER if set
        assert!(dev.sanitizer_report().is_none());
        dev.set_sanitizer(true);
        let report = dev.sanitizer_report().unwrap();
        assert_eq!(report.bytes_outstanding, 0);
        assert!(report.to_string().contains("no leaks"), "{report}");
    }

    #[test]
    fn try_new_rejects_bad_spec() {
        let mut spec = profiles::test_device();
        spec.simt_width = 0;
        match Device::try_new(spec) {
            Err(SimError::InvalidSpec(reason)) => {
                assert!(reason.contains("simt_width"), "{reason}")
            }
            other => panic!("expected InvalidSpec, got {other:?}"),
        }
        assert!(Device::try_new(profiles::test_device()).is_ok());
    }

    #[test]
    fn scripted_chaos_fails_the_third_alloc_as_oom() {
        let dev = small_device();
        dev.set_chaos(FaultPlan::parse("alloc:nth-3").unwrap());
        assert!(dev.alloc::<f64>(8).is_ok());
        assert!(dev.alloc::<f64>(8).is_ok());
        let err = dev.alloc::<f64>(8).unwrap_err();
        assert!(
            matches!(err, SimError::OutOfMemory { requested: 64, .. }),
            "injected alloc fault must present as OOM, got {err:?}"
        );
        assert!(err.is_transient());
        // The schedule consumed its nth-3: the retry succeeds.
        assert!(dev.alloc::<f64>(8).is_ok());
        let log = dev.fault_log();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].site, FaultSite::Alloc);
        assert_eq!(log[0].occurrence, 3);
    }

    #[test]
    fn scripted_chaos_rejects_launches_before_side_effects() {
        let dev = small_device();
        dev.set_chaos(FaultPlan::parse("launch:nth-1").unwrap());
        let out = dev.alloc::<f64>(64).unwrap();
        let ov = dev.slice_mut(&out).unwrap();
        let run = || {
            dev.launch(LaunchConfig::new(1u32, 64u32), KernelCost::default(), |t| {
                ov.set(t.global_linear(), 1.0);
            })
        };
        let err = run().unwrap_err();
        assert!(matches!(
            err,
            SimError::Faulted {
                site: "launch",
                occurrence: 1
            }
        ));
        // The failed launch must not have executed the kernel body…
        assert_eq!(dev.read_scalar(&out, 0).unwrap(), 0.0);
        // …and the retry runs it for real.
        run().unwrap();
        assert_eq!(dev.read_scalar(&out, 0).unwrap(), 1.0);
    }

    #[test]
    fn seeded_chaos_is_deterministic_across_devices() {
        let run = || {
            let dev = small_device();
            dev.set_chaos(FaultPlan::seeded(7));
            for _ in 0..2000 {
                let _ = dev.alloc::<u8>(16).map(|b| dev.read_scalar(&b, 0));
            }
            dev.fault_log()
        };
        let (a, b) = (run(), run());
        assert!(!a.is_empty(), "2000 draws per site must inject something");
        assert_eq!(a, b, "same seed, same fault schedule");
        // Disarming clears the engine (and its log).
        let dev = small_device();
        dev.set_chaos(FaultPlan::seeded(7));
        dev.clear_chaos();
        assert!(!dev.chaos_enabled());
        assert!(dev.fault_log().is_empty());
        assert!(dev.alloc::<u8>(1 << 20).is_ok());
    }

    #[test]
    fn chaos_delay_charges_the_clock_but_succeeds() {
        let dev = small_device();
        let buf = dev.alloc_from(&vec![0u8; 1024]).unwrap();
        let clean = dev.clock_ns();
        let dev2 = small_device();
        dev2.set_chaos(FaultPlan::parse("h2d:always:delay-20000").unwrap());
        let buf2 = dev2.alloc::<u8>(1024).unwrap();
        dev2.upload(&buf2, &vec![0u8; 1024]).unwrap();
        assert_eq!(
            dev2.clock_ns(),
            clean + 20_000,
            "a latency spike is the clean transfer plus the injected stall"
        );
        assert_eq!(dev2.read_vec(&buf2).unwrap(), dev.read_vec(&buf).unwrap());
        assert_eq!(
            dev2.fault_log()[0].action,
            FaultAction::Delay(20_000),
            "spikes appear in the fault log"
        );
    }
}
