//! Launch configuration, validation, and the per-thread context handed to
//! kernel bodies.

use crate::dim::Dim3;
use crate::error::SimError;
use crate::spec::DeviceSpec;

/// Grid/block shape of a kernel launch plus its dynamic shared-memory size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchConfig {
    /// Number of blocks along each grid dimension.
    pub grid: Dim3,
    /// Number of threads along each block dimension.
    pub block: Dim3,
    /// Dynamic shared memory bytes per block.
    pub shared_mem_bytes: usize,
}

impl LaunchConfig {
    /// A 1D launch with explicit grid and block extents.
    pub fn new(grid: impl Into<Dim3>, block: impl Into<Dim3>) -> Self {
        LaunchConfig {
            grid: grid.into(),
            block: block.into(),
            shared_mem_bytes: 0,
        }
    }

    /// The canonical 1D covering launch: `ceil(n / block)` blocks of
    /// `block` threads — how the paper's `parallel_for` picks its shape.
    pub fn linear(n: usize, block: u32) -> Self {
        let block = block.max(1);
        let blocks = n.div_ceil(block as usize).max(1);
        LaunchConfig::new(Dim3::x(blocks as u32), Dim3::x(block))
    }

    /// The canonical 2D covering launch with `bx × by` thread tiles, as the
    /// paper's multidimensional `parallel_for` does with 16×16 tiles.
    pub fn tiled_2d(m: usize, n: usize, bx: u32, by: u32) -> Self {
        let bx = bx.max(1);
        let by = by.max(1);
        let gx = m.div_ceil(bx as usize).max(1);
        let gy = n.div_ceil(by as usize).max(1);
        LaunchConfig::new(Dim3::xy(gx as u32, gy as u32), Dim3::xy(bx, by))
    }

    /// The canonical 3D covering launch.
    pub fn tiled_3d(m: usize, n: usize, l: usize, bx: u32, by: u32, bz: u32) -> Self {
        let (bx, by, bz) = (bx.max(1), by.max(1), bz.max(1));
        let gx = m.div_ceil(bx as usize).max(1);
        let gy = n.div_ceil(by as usize).max(1);
        let gz = l.div_ceil(bz as usize).max(1);
        LaunchConfig::new(
            Dim3::xyz(gx as u32, gy as u32, gz as u32),
            Dim3::xyz(bx, by, bz),
        )
    }

    /// Attach a dynamic shared-memory request.
    pub fn with_shared_mem(mut self, bytes: usize) -> Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Total number of simulated threads.
    pub fn total_threads(&self) -> usize {
        self.grid.count() * self.block.count()
    }

    /// Validate against a device's limits.
    pub fn validate(&self, spec: &DeviceSpec) -> Result<(), SimError> {
        let fail = |reason: String| SimError::InvalidLaunch {
            reason,
            grid: self.grid,
            block: self.block,
        };
        if self.grid.is_degenerate() {
            return Err(fail("grid has a zero dimension".into()));
        }
        if self.block.is_degenerate() {
            return Err(fail("block has a zero dimension".into()));
        }
        if self.block.count() > spec.max_threads_per_block as usize {
            return Err(fail(format!(
                "block of {} threads exceeds limit {}",
                self.block.count(),
                spec.max_threads_per_block
            )));
        }
        if self.block.x > spec.max_block_dim_x {
            return Err(fail(format!(
                "block.x {} exceeds limit {}",
                self.block.x, spec.max_block_dim_x
            )));
        }
        if self.block.y > spec.max_block_dim_y {
            return Err(fail(format!(
                "block.y {} exceeds limit {}",
                self.block.y, spec.max_block_dim_y
            )));
        }
        if self.block.z > spec.max_block_dim_z {
            return Err(fail(format!(
                "block.z {} exceeds limit {}",
                self.block.z, spec.max_block_dim_z
            )));
        }
        if self.shared_mem_bytes > spec.shared_mem_per_block {
            return Err(fail(format!(
                "shared memory request {} B exceeds limit {} B",
                self.shared_mem_bytes, spec.shared_mem_per_block
            )));
        }
        Ok(())
    }
}

/// Identity of one simulated thread inside a launch: its block and thread
/// coordinates plus the launch shape. All coordinates are **0-based**
/// (CUDA-style; the Julia front end in the paper is 1-based).
#[derive(Debug, Clone, Copy)]
pub struct ThreadCtx {
    /// This thread's block coordinates within the grid.
    pub block_idx: (u32, u32, u32),
    /// This thread's coordinates within its block.
    pub thread_idx: (u32, u32, u32),
    /// Block extents.
    pub block_dim: Dim3,
    /// Grid extents.
    pub grid_dim: Dim3,
}

impl ThreadCtx {
    /// Global x index: `block_idx.x * block_dim.x + thread_idx.x`.
    #[inline]
    pub fn global_id_x(&self) -> usize {
        self.block_idx.0 as usize * self.block_dim.x as usize + self.thread_idx.0 as usize
    }

    /// Global y index.
    #[inline]
    pub fn global_id_y(&self) -> usize {
        self.block_idx.1 as usize * self.block_dim.y as usize + self.thread_idx.1 as usize
    }

    /// Global z index.
    #[inline]
    pub fn global_id_z(&self) -> usize {
        self.block_idx.2 as usize * self.block_dim.z as usize + self.thread_idx.2 as usize
    }

    /// Linear thread index within the block (x fastest).
    #[inline]
    pub fn thread_linear(&self) -> usize {
        (self.thread_idx.2 as usize * self.block_dim.y as usize + self.thread_idx.1 as usize)
            * self.block_dim.x as usize
            + self.thread_idx.0 as usize
    }

    /// Linear block index within the grid (x fastest).
    #[inline]
    pub fn block_linear(&self) -> usize {
        (self.block_idx.2 as usize * self.grid_dim.y as usize + self.block_idx.1 as usize)
            * self.grid_dim.x as usize
            + self.block_idx.0 as usize
    }

    /// Globally unique linear thread id across the launch.
    #[inline]
    pub fn global_linear(&self) -> usize {
        self.block_linear() * self.block_dim.count() + self.thread_linear()
    }

    /// Total threads in the launch.
    #[inline]
    pub fn total_threads(&self) -> usize {
        self.grid_dim.count() * self.block_dim.count()
    }

    /// Declare arrival at the block-wide barrier that ends the current
    /// phase (`__syncthreads()`).
    ///
    /// In the simulator's phased execution model the barrier itself is
    /// implicit — every thread of a block finishes phase `p` before any
    /// starts `p + 1` — so functionally this is a no-op. Under the
    /// sanitizer ([`crate::Device::set_sanitizer`]) it feeds
    /// barrier-divergence detection: if only a subset of a block's threads
    /// calls `barrier()` within a phase (e.g. a `__syncthreads` inside a
    /// divergent branch), the launch panics naming the block, phase, and
    /// first missing thread.
    #[inline]
    pub fn barrier(&self) {
        crate::sanitizer::barrier_arrive(self.thread_linear());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    #[test]
    fn linear_config_covers_n() {
        let cfg = LaunchConfig::linear(1000, 256);
        assert_eq!(cfg.grid, Dim3::x(4));
        assert_eq!(cfg.block, Dim3::x(256));
        assert!(cfg.total_threads() >= 1000);
        // exact multiple
        let cfg = LaunchConfig::linear(1024, 256);
        assert_eq!(cfg.grid, Dim3::x(4));
        // tiny n still launches one block
        let cfg = LaunchConfig::linear(1, 256);
        assert_eq!(cfg.grid, Dim3::x(1));
        // zero-size n launches one (empty-guard) block
        let cfg = LaunchConfig::linear(0, 256);
        assert_eq!(cfg.grid, Dim3::x(1));
    }

    #[test]
    fn tiled_2d_covers_plane() {
        let cfg = LaunchConfig::tiled_2d(100, 60, 16, 16);
        assert_eq!(cfg.grid, Dim3::xy(7, 4));
        assert_eq!(cfg.block, Dim3::xy(16, 16));
        assert!(cfg.grid.x as usize * 16 >= 100);
        assert!(cfg.grid.y as usize * 16 >= 60);
    }

    #[test]
    fn tiled_3d_covers_volume() {
        let cfg = LaunchConfig::tiled_3d(10, 10, 10, 4, 4, 4);
        assert_eq!(cfg.grid, Dim3::xyz(3, 3, 3));
    }

    #[test]
    fn validation_enforces_limits() {
        let spec = profiles::test_device(); // max 64 threads/block, 4 KiB shmem
        assert!(LaunchConfig::new(1u32, 64u32).validate(&spec).is_ok());
        assert!(LaunchConfig::new(1u32, 65u32).validate(&spec).is_err());
        assert!(LaunchConfig::new(1u32, (8u32, 9u32))
            .validate(&spec)
            .is_err());
        assert!(LaunchConfig::new(0u32, 1u32).validate(&spec).is_err());
        assert!(LaunchConfig::new(1u32, (1u32, 1u32, 0u32))
            .validate(&spec)
            .is_err());
        assert!(LaunchConfig::new(1u32, 32u32)
            .with_shared_mem(4096)
            .validate(&spec)
            .is_ok());
        assert!(LaunchConfig::new(1u32, 32u32)
            .with_shared_mem(4097)
            .validate(&spec)
            .is_err());
        // block.z limit is 8 on the test device
        assert!(LaunchConfig::new(1u32, (1u32, 1u32, 9u32))
            .validate(&spec)
            .is_err());
    }

    #[test]
    fn thread_ctx_linearization() {
        let ctx = ThreadCtx {
            block_idx: (1, 2, 0),
            thread_idx: (3, 1, 0),
            block_dim: Dim3::xy(4, 2),
            grid_dim: Dim3::xy(3, 4),
        };
        assert_eq!(ctx.global_id_x(), 7);
        assert_eq!(ctx.global_id_y(), 5);
        assert_eq!(ctx.global_id_z(), 0);
        assert_eq!(ctx.thread_linear(), 7);
        assert_eq!(ctx.block_linear(), 7);
        assert_eq!(ctx.global_linear(), 7 * 8 + 7);
        assert_eq!(ctx.total_threads(), 3 * 4 * 8);
    }
}
