//! Device-clock events, mirroring `cudaEvent`-style timing.

/// A timestamp captured from a device's virtual clock with
/// [`crate::Device::record_event`]. Device-specific benchmark codes measure
/// kernels the way real vendor code does: record, run, record, subtract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    pub(crate) t_ns: u64,
    pub(crate) device_id: u64,
}

impl Event {
    /// The clock value in nanoseconds at record time.
    pub fn nanos(&self) -> u64 {
        self.t_ns
    }

    /// Elapsed modeled time between two events in nanoseconds.
    ///
    /// # Panics
    /// Panics if the events belong to different devices or `later` precedes
    /// `self`.
    pub fn elapsed_ns(&self, later: &Event) -> u64 {
        assert_eq!(
            self.device_id, later.device_id,
            "events from different devices"
        );
        later
            .t_ns
            .checked_sub(self.t_ns)
            .expect("later event precedes earlier event")
    }

    /// Elapsed modeled time in milliseconds (the customary CUDA unit).
    pub fn elapsed_ms(&self, later: &Event) -> f64 {
        self.elapsed_ns(later) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_arithmetic() {
        let a = Event {
            t_ns: 1_000,
            device_id: 1,
        };
        let b = Event {
            t_ns: 3_500_000,
            device_id: 1,
        };
        assert_eq!(a.elapsed_ns(&b), 3_499_000);
        assert!((a.elapsed_ms(&b) - 3.499).abs() < 1e-12);
        assert_eq!(a.nanos(), 1_000);
    }

    #[test]
    #[should_panic(expected = "different devices")]
    fn cross_device_events_panic() {
        let a = Event {
            t_ns: 0,
            device_id: 1,
        };
        let b = Event {
            t_ns: 1,
            device_id: 2,
        };
        let _ = a.elapsed_ns(&b);
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn reversed_events_panic() {
        let a = Event {
            t_ns: 10,
            device_id: 1,
        };
        let b = Event {
            t_ns: 5,
            device_id: 1,
        };
        let _ = a.elapsed_ns(&b);
    }
}
