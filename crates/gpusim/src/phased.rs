//! Cooperative (barrier-using) kernels.
//!
//! Real GPU kernels synchronize threads within a block with
//! `__syncthreads()`. A functional simulator that runs block threads as a
//! sequential loop cannot suspend a closure mid-body, so cooperative kernels
//! are expressed in **phases**: the kernel body is split at every barrier
//! point, and the executor runs phase `p` for *all* threads of a block
//! before any thread starts phase `p + 1` — which is exactly the
//! happens-before relation `__syncthreads()` establishes.
//!
//! Per-thread values that live across a barrier (registers in real hardware)
//! go in the kernel's [`PhasedKernel::State`]; block-shared values go in the
//! launch's [`SharedMem`].
//!
//! The paper's two-kernel CUDA DOT (its Fig. 3) is the canonical client:
//! phase 0 computes per-thread products into shared memory, the following
//! phases perform the shared-memory tree reduction, and the final phase
//! writes each block's partial to global memory.

use std::cell::UnsafeCell;

use crate::launch::ThreadCtx;

/// A kernel expressed as a sequence of barrier-separated phases.
pub trait PhasedKernel: Sync {
    /// Per-thread private state surviving across phases (the thread's
    /// registers).
    type State: Default + Send;

    /// Number of phases (barrier intervals) in the kernel.
    fn num_phases(&self) -> usize;

    /// Execute one phase for one thread.
    fn phase(&self, phase: usize, ctx: &ThreadCtx, state: &mut Self::State, shared: &SharedMem);
}

/// A block's dynamic shared memory. Typed, bounds-checked accessors operate
/// on the raw byte buffer; the executor guarantees each block's `SharedMem`
/// is touched by one host thread at a time, so the interior mutability is
/// single-threaded in practice.
///
/// # Initialization contract
///
/// **Every block observes zeroed shared memory at the start of its phase 0.**
/// Real CUDA/HIP dynamic shared memory is *uninitialized* at block start;
/// the simulator deliberately provides the stronger guarantee and keeps it
/// even though the executor reuses one arena buffer across blocks
/// ([`SharedMem::reset`] re-zeroes between blocks). Kernels in
/// `backend-common` rely on phase 0 fully initializing what they read, which
/// is portable to real hardware; zeroing additionally makes any
/// read-before-write bug deterministic instead of value-dependent.
pub struct SharedMem {
    bytes: UnsafeCell<Vec<u8>>,
}

// SAFETY: one block executes on exactly one host thread; the executor never
// shares a SharedMem across host threads concurrently.
unsafe impl Sync for SharedMem {}

impl SharedMem {
    /// Allocate `bytes` zeroed shared-memory bytes.
    pub fn new(bytes: usize) -> Self {
        SharedMem {
            bytes: UnsafeCell::new(vec![0u8; bytes]),
        }
    }

    /// Shared-memory capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        // SAFETY: single-threaded access per the executor contract.
        unsafe { (*self.bytes.get()).len() }
    }

    /// Number of `T` elements that fit.
    pub fn len_of<T: Copy>(&self) -> usize {
        self.size_bytes() / std::mem::size_of::<T>()
    }

    /// Read element `i`, viewing the buffer as `[T]`.
    #[inline]
    pub fn get<T: Copy>(&self, i: usize) -> T {
        let n = self.len_of::<T>();
        assert!(i < n, "shared-memory read {i} out of bounds ({n} elements)");
        // SAFETY: bounds checked; buffer is aligned for reads via
        // read_unaligned; single-threaded per block.
        unsafe {
            let base = (*self.bytes.get()).as_ptr() as *const T;
            base.add(i).read_unaligned()
        }
    }

    /// Write element `i`, viewing the buffer as `[T]`.
    #[inline]
    pub fn set<T: Copy>(&self, i: usize, value: T) {
        let n = self.len_of::<T>();
        assert!(
            i < n,
            "shared-memory write {i} out of bounds ({n} elements)"
        );
        // SAFETY: bounds checked; single-threaded per block.
        unsafe {
            let base = (*self.bytes.get()).as_mut_ptr() as *mut T;
            base.add(i).write_unaligned(value);
        }
    }

    /// Zero the buffer (between reuse).
    pub fn clear(&self) {
        // SAFETY: single-threaded access per the executor contract.
        unsafe { (*self.bytes.get()).fill(0) };
    }

    /// Resize to `bytes` zeroed bytes, reusing the existing capacity: the
    /// executor calls this between blocks so a reused arena buffer still
    /// honors the zeroed-at-block-start contract without reallocating.
    /// Writes nothing when `bytes == 0`.
    pub fn reset(&self, bytes: usize) {
        // SAFETY: single-threaded access per the executor contract; the
        // executor only calls this between blocks, never during one.
        unsafe {
            let v = &mut *self.bytes.get();
            v.clear();
            v.resize(bytes, 0);
        }
    }
}

/// Adapter: a non-cooperative closure as a single-phase kernel, so the two
/// launch paths share the executor. Public so callers that must *re-run* a
/// launch (e.g. retry-on-injected-fault in the portability layer) can go
/// through [`Device::launch_phased`], which borrows its kernel —
/// [`Device::launch`] consumes the closure.
///
/// [`Device::launch_phased`]: crate::Device::launch_phased
/// [`Device::launch`]: crate::Device::launch
pub struct SinglePhase<F>(pub F);

impl<F: Fn(&ThreadCtx) + Sync> PhasedKernel for SinglePhase<F> {
    type State = ();

    fn num_phases(&self) -> usize {
        1
    }

    fn phase(&self, _phase: usize, ctx: &ThreadCtx, _state: &mut (), _shared: &SharedMem) {
        (self.0)(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_mem_round_trip() {
        let sm = SharedMem::new(64);
        assert_eq!(sm.size_bytes(), 64);
        assert_eq!(sm.len_of::<f64>(), 8);
        assert_eq!(sm.len_of::<u32>(), 16);
        sm.set::<f64>(3, 2.5);
        assert_eq!(sm.get::<f64>(3), 2.5);
        sm.set::<u32>(0, 42);
        assert_eq!(sm.get::<u32>(0), 42);
    }

    #[test]
    fn shared_mem_zero_initialized_and_clearable() {
        let sm = SharedMem::new(32);
        for i in 0..4 {
            assert_eq!(sm.get::<f64>(i), 0.0);
        }
        sm.set::<f64>(1, 9.0);
        sm.clear();
        assert_eq!(sm.get::<f64>(1), 0.0);
    }

    #[test]
    fn reset_rezeroes_and_reuses_capacity() {
        // Regression test for the executor's arena reuse: a block that dirties
        // shared memory must not leak values into the next block's view.
        let sm = SharedMem::new(0);
        sm.reset(64);
        assert_eq!(sm.size_bytes(), 64);
        for i in 0..8 {
            assert_eq!(sm.get::<f64>(i), 0.0, "fresh reset must be zeroed");
            sm.set::<f64>(i, (i + 1) as f64);
        }
        // Same size: contents must come back zeroed, not stale.
        sm.reset(64);
        for i in 0..8 {
            assert_eq!(sm.get::<f64>(i), 0.0, "reset must re-zero");
        }
        // Shrink then grow within capacity: still zeroed.
        sm.set::<f64>(7, 9.0);
        sm.reset(16);
        assert_eq!(sm.size_bytes(), 16);
        sm.reset(64);
        assert_eq!(sm.get::<f64>(7), 0.0, "regrown bytes must be zeroed");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_mem_read_oob_panics() {
        let sm = SharedMem::new(16);
        let _ = sm.get::<f64>(2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn shared_mem_write_oob_panics() {
        let sm = SharedMem::new(16);
        sm.set::<f64>(2, 1.0);
    }
}
