//! Simulator error type.

use crate::dim::Dim3;

/// Errors surfaced by the simulated device, mirroring the failure classes of
/// a real driver API (allocation failure, invalid launch configuration,
/// cross-device handles, bad copies).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The device memory heap cannot satisfy the allocation.
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: usize,
        /// Bytes currently in use on the device.
        in_use: usize,
        /// Total device memory capacity.
        capacity: usize,
    },
    /// A launch configuration violates a device limit.
    InvalidLaunch {
        /// Explanation of the violated limit.
        reason: String,
        /// Grid extent of the offending launch.
        grid: Dim3,
        /// Block extent of the offending launch.
        block: Dim3,
    },
    /// A buffer created on another device was passed to this one.
    WrongDevice {
        /// Id of the device the buffer belongs to.
        buffer_device: u64,
        /// Id of the device that received the call.
        this_device: u64,
    },
    /// A host/device copy with mismatched lengths.
    SizeMismatch {
        /// Elements expected by the destination.
        expected: usize,
        /// Elements provided by the source.
        actual: usize,
    },
    /// An out-of-range offset/length into a device buffer.
    OutOfBounds {
        /// First element of the requested range.
        offset: usize,
        /// Length of the requested range.
        len: usize,
        /// Length of the buffer.
        buffer_len: usize,
    },
    /// Source and destination of a copy share an allocation.
    OverlappingCopy,
    /// A [`DeviceSpec`] failed validation (fallible construction path,
    /// [`Device::try_new`]).
    ///
    /// [`DeviceSpec`]: crate::DeviceSpec
    /// [`Device::try_new`]: crate::Device::try_new
    InvalidSpec(String),
    /// An injected fault from the chaos engine (`racc-chaos`): the
    /// operation was selected by the active [`FaultPlan`] and failed.
    /// Transient by definition — retrying re-runs the op against the next
    /// schedule entry.
    ///
    /// [`FaultPlan`]: racc_chaos::FaultPlan
    Faulted {
        /// Injection-site label (`alloc`, `h2d`, `d2h`, `launch`, `stream`).
        site: &'static str,
        /// 1-based operation count at that site when the fault hit.
        occurrence: u64,
    },
}

impl SimError {
    /// Whether a retry can plausibly succeed: true for injected faults and
    /// out-of-memory (chaos presents alloc faults as OOM, and real OOM can
    /// clear as peers free memory), false for the structural errors (bad
    /// geometry, wrong device, shape mismatches) that no retry fixes.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            SimError::Faulted { .. } | SimError::OutOfMemory { .. }
        )
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::OutOfMemory {
                requested,
                in_use,
                capacity,
            } => write!(
                f,
                "device out of memory: requested {requested} B with {in_use}/{capacity} B in use"
            ),
            SimError::InvalidLaunch {
                reason,
                grid,
                block,
            } => write!(f, "invalid launch grid={grid} block={block}: {reason}"),
            SimError::WrongDevice {
                buffer_device,
                this_device,
            } => write!(
                f,
                "buffer belongs to device {buffer_device}, not device {this_device}"
            ),
            SimError::SizeMismatch { expected, actual } => {
                write!(
                    f,
                    "size mismatch: expected {expected} elements, got {actual}"
                )
            }
            SimError::OutOfBounds {
                offset,
                len,
                buffer_len,
            } => write!(
                f,
                "range {offset}..{} out of bounds for buffer of length {buffer_len}",
                offset + len
            ),
            SimError::OverlappingCopy => write!(
                f,
                "source and destination of the copy overlap (same allocation)"
            ),
            SimError::InvalidSpec(reason) => {
                write!(f, "invalid device specification: {reason}")
            }
            SimError::Faulted { site, occurrence } => {
                write!(f, "injected fault: {site} operation #{occurrence} failed")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Fold a simulator failure into the front end's unified error type:
/// allocation failures map onto [`RaccError::Allocation`], everything else
/// onto [`RaccError::Device`], so `?` works across the API boundary.
///
/// [`RaccError::Allocation`]: racc_core::RaccError::Allocation
/// [`RaccError::Device`]: racc_core::RaccError::Device
impl From<SimError> for racc_core::RaccError {
    fn from(e: SimError) -> Self {
        match &e {
            SimError::OutOfMemory { .. } => racc_core::RaccError::Allocation(e.to_string()),
            SimError::InvalidSpec(_) => racc_core::RaccError::InvalidConfig(e.to_string()),
            _ => racc_core::RaccError::Device(e.to_string()),
        }
    }
}
