//! Per-worker launch arenas.
//!
//! `execute_grid` needs two scratch objects per block: the block's
//! [`SharedMem`] buffer and a `Vec`-shaped array of per-thread
//! [`PhasedKernel::State`](crate::PhasedKernel::State) values. Allocating
//! them per block put ~2 heap allocations on every block of every launch
//! (~8192 for a 4096-block grid). The arena keeps one reusable `SharedMem`
//! and one type-erased state buffer ([`RawScratch`]) per *pool participant*
//! (thread-local on the host threads that run blocks), so steady-state
//! launches perform zero per-block allocations:
//!
//! * the shared buffer is [`SharedMem::reset`] between blocks — zero-filled
//!   only when `shared_mem_bytes > 0` — preserving the zeroed-at-block-start
//!   contract documented on [`SharedMem`];
//! * states are placement-initialized into the scratch via
//!   [`scratch::with_slots`], which default-constructs them before the block
//!   and drops them after (so `State` types owning resources stay correct).
//!
//! The arena uses the same take/restore thread-local protocol as
//! `racc_threadpool::scratch`: reentrant use (a kernel body launching on a
//! nested pool from the same host thread) falls back to a fresh temporary
//! arena rather than aliasing the cached one.

use std::cell::Cell;

use racc_threadpool::scratch::{self, RawScratch};

use crate::phased::SharedMem;

/// One host thread's reusable launch scratch.
pub(crate) struct LaunchArena {
    /// Reused shared-memory buffer, `reset` per block.
    pub shared: SharedMem,
    /// Type-erased backing storage for the per-thread state slots.
    pub states: RawScratch,
}

impl LaunchArena {
    fn new() -> Self {
        LaunchArena {
            shared: SharedMem::new(0),
            states: RawScratch::new(),
        }
    }

    /// Run `f` with `block_threads` default-initialized state slots and the
    /// shared buffer sized (and zeroed) to `shared_mem_bytes`.
    pub fn run_block<S: Default, R>(
        &mut self,
        shared_mem_bytes: usize,
        block_threads: usize,
        f: impl FnOnce(&mut [S], &SharedMem) -> R,
    ) -> R {
        self.shared.reset(shared_mem_bytes);
        let shared = &self.shared;
        scratch::with_slots(&mut self.states, block_threads, S::default, |states| {
            f(states, shared)
        })
    }
}

thread_local! {
    static TLS_ARENA: Cell<Option<LaunchArena>> = const { Cell::new(None) };
}

/// Borrow this host thread's cached [`LaunchArena`] for the duration of `f`
/// (take/restore: reentrant callers get a fresh temporary arena; a panic
/// inside `f` discards the taken arena and the next call re-creates it).
pub(crate) fn with_arena<R>(f: impl FnOnce(&mut LaunchArena) -> R) -> R {
    let mut arena = TLS_ARENA
        .with(|c| c.take())
        .unwrap_or_else(LaunchArena::new);
    let result = f(&mut arena);
    TLS_ARENA.with(|c| c.set(Some(arena)));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_rezeroes_shared_between_blocks() {
        with_arena(|arena| {
            arena.run_block::<(), _>(32, 4, |states, shared| {
                assert_eq!(states.len(), 4);
                assert_eq!(shared.get::<f64>(0), 0.0);
                shared.set::<f64>(0, 5.0);
            });
            arena.run_block::<(), _>(32, 4, |_, shared| {
                assert_eq!(shared.get::<f64>(0), 0.0, "stale shared-mem value");
            });
        });
    }

    #[test]
    fn arena_states_fresh_per_block() {
        with_arena(|arena| {
            arena.run_block::<u64, _>(0, 3, |states, _| {
                assert_eq!(states, &[0, 0, 0]);
                states[1] = 42;
            });
            arena.run_block::<u64, _>(0, 3, |states, _| {
                assert_eq!(states, &[0, 0, 0], "states must be re-defaulted");
            });
        });
    }

    #[test]
    fn arena_is_cached_per_thread() {
        let cap = with_arena(|arena| {
            arena.run_block::<u64, _>(0, 100, |_, _| ());
            arena.states.capacity()
        });
        assert!(cap >= 800);
        with_arena(|arena| {
            assert_eq!(arena.states.capacity(), cap, "arena must be reused");
        });
    }
}
