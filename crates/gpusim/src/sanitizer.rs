//! **simsan** — a `compute-sanitizer`/`cudaMemcheck`-style dynamic checker
//! for the simulated device.
//!
//! Enabled per device via [`crate::Device::set_sanitizer`] (or the
//! `RACC_SANITIZER=1` environment variable at device creation), the sanitizer
//! layers four checks on top of the plain write-race checker:
//!
//! * **read-write races** — reads through device slices are tracked alongside
//!   writes, phase-aware: values exchanged across a phase boundary (the
//!   block-wide barrier of a cooperative kernel) are legal, unsynchronized
//!   ones panic with both simulated-thread ids;
//! * **barrier divergence** — kernels declare barrier arrival via
//!   [`crate::ThreadCtx::barrier`]; if only a subset of a block's threads
//!   reaches a phase boundary, the launch panics with block/thread
//!   coordinates;
//! * **heap instrumentation** — every allocation carries live/freed state and
//!   64-byte `0xC5` canary regions on both sides of the payload. Bounds
//!   failures and use-after-free through stale slices name the allocation;
//!   canaries are swept after every sanitized launch (and on deallocation)
//!   to catch wild writes through unchecked accessors;
//! * **leak reporting** — a [`SanitizerReport`] lists still-live allocations
//!   (with their creation backtraces) and bytes outstanding; a device that
//!   drops with buffers live prints the table to stderr.
//!
//! The sanitizer is heavyweight (global hash tables, per-access bookkeeping)
//! and meant for tests and debugging — never benchmarking. When disabled it
//! costs the launch path nothing (the non-cooperative fast path is gated on
//! it exactly like racecheck; see `tests/alloc_count.rs`).

use std::backtrace::Backtrace;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use parking_lot::Mutex;

use crate::dim::Dim3;
use crate::heap::Allocation;
use crate::racecheck::RaceTracker;

/// Canary bytes on each side of a sanitized allocation's payload. 64 keeps
/// the payload's 64-byte alignment intact.
pub(crate) const CANARY_BYTES: usize = 64;

/// Fill pattern for canary regions.
pub(crate) const CANARY_PATTERN: u8 = 0xC5;

/// Whether `RACC_SANITIZER` asks for the sanitizer at device creation
/// (shared truthy semantics with `RACC_FUSION` and `RACC_CHAOS`).
pub(crate) fn env_enabled() -> bool {
    racc_chaos::env_flag("RACC_SANITIZER")
}

/// Per-allocation sanitizer metadata, shared between the allocation, the
/// slices viewing it, and the device registry.
pub(crate) struct AllocMeta {
    /// Sequential id, unique per device.
    pub(crate) id: u64,
    /// Payload bytes.
    pub(crate) bytes: usize,
    /// Element count.
    pub(crate) len: usize,
    /// Element type name.
    pub(crate) elem: &'static str,
    /// Set when the owning `DeviceBuffer` drops; accesses through stale
    /// slices after that are use-after-free under the driver model.
    pub(crate) freed: AtomicBool,
    /// Where the allocation was made (rendered lazily in reports).
    pub(crate) backtrace: Backtrace,
    /// Back-pointer to the allocation, installed right after construction;
    /// the canary sweep upgrades it so it never races a concurrent drop.
    pub(crate) alloc: OnceLock<Weak<Allocation>>,
}

impl AllocMeta {
    /// Short label used in diagnostics: `allocation #3 (1024 x f64, 8192 B)`.
    pub(crate) fn label(&self) -> String {
        format!(
            "allocation #{} ({} x {}, {} B)",
            self.id, self.len, self.elem, self.bytes
        )
    }
}

thread_local! {
    /// Whether the current host thread is executing a sanitized launch
    /// (makes `ThreadCtx::barrier` free when the sanitizer is off).
    static SAN_ACTIVE: Cell<bool> = const { Cell::new(false) };
    /// Linear thread ids that declared barrier arrival in the current
    /// block/phase of a sanitized launch.
    static ARRIVALS: RefCell<Vec<usize>> = const { RefCell::new(Vec::new()) };
}

/// Mark the current host thread as running (or done running) a sanitized
/// block, resetting any stale arrivals from an unwound launch.
pub(crate) fn set_active(on: bool) {
    SAN_ACTIVE.with(|c| c.set(on));
    ARRIVALS.with(|a| a.borrow_mut().clear());
}

/// Record a barrier arrival (called by [`crate::ThreadCtx::barrier`]).
#[inline]
pub(crate) fn barrier_arrive(thread_linear: usize) {
    if SAN_ACTIVE.with(|c| c.get()) {
        ARRIVALS.with(|a| a.borrow_mut().push(thread_linear));
    }
}

/// Per-device sanitizer state: the on/off switch, the allocation registry,
/// and the check counters that feed [`SanitizerReport`].
pub(crate) struct Sanitizer {
    enabled: AtomicBool,
    next_id: AtomicU64,
    registry: Mutex<HashMap<u64, Arc<AllocMeta>>>,
    launches_checked: AtomicU64,
    barriers_checked: AtomicU64,
    canaries_verified: AtomicU64,
}

impl Sanitizer {
    pub(crate) fn new(enabled: bool) -> Self {
        Sanitizer {
            enabled: AtomicBool::new(enabled),
            next_id: AtomicU64::new(1),
            registry: Mutex::new(HashMap::new()),
            launches_checked: AtomicU64::new(0),
            barriers_checked: AtomicU64::new(0),
            canaries_verified: AtomicU64::new(0),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Mint metadata for a new sanitized allocation.
    pub(crate) fn new_meta<T>(&self, len: usize, bytes: usize) -> Arc<AllocMeta> {
        let backtrace = if cfg!(miri) {
            Backtrace::disabled()
        } else {
            Backtrace::force_capture()
        };
        Arc::new(AllocMeta {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            bytes,
            len,
            elem: std::any::type_name::<T>(),
            freed: AtomicBool::new(false),
            backtrace,
            alloc: OnceLock::new(),
        })
    }

    /// Track a live allocation.
    pub(crate) fn register(&self, meta: Arc<AllocMeta>) {
        self.registry.lock().insert(meta.id, meta);
    }

    /// Count one checked launch.
    pub(crate) fn count_launch(&self) {
        self.launches_checked.fetch_add(1, Ordering::Relaxed);
    }

    /// Live (registered, not-yet-freed) metadata, pruning entries whose
    /// buffer handle has dropped.
    fn live_metas(&self) -> Vec<Arc<AllocMeta>> {
        let mut registry = self.registry.lock();
        registry.retain(|_, m| !m.freed.load(Ordering::Acquire));
        registry.values().cloned().collect()
    }

    /// Verify the canary regions of every live allocation; panics with the
    /// allocation's identity on corruption. Called after each sanitized
    /// launch. Upgrading the `Weak` first makes the sweep safe against
    /// slices dropping the allocation concurrently.
    pub(crate) fn sweep_canaries(&self) {
        for meta in self.live_metas() {
            let Some(alloc) = meta.alloc.get().and_then(Weak::upgrade) else {
                continue;
            };
            if let Some(desc) = alloc.verify_canaries() {
                panic!("simsan: heap corruption: {desc}");
            }
            self.canaries_verified.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// After a block finishes a phase, verify that barrier arrivals (if any)
    /// came from **every** thread of the block; clears the arrival set.
    pub(crate) fn check_block_phase(&self, block_idx: (u32, u32, u32), block: Dim3, phase: usize) {
        ARRIVALS.with(|a| {
            let mut arrivals = a.borrow_mut();
            if arrivals.is_empty() {
                return;
            }
            arrivals.sort_unstable();
            arrivals.dedup();
            let total = block.count();
            let arrived = arrivals.len();
            self.barriers_checked.fetch_add(1, Ordering::Relaxed);
            if arrived != total {
                let missing = (0..total)
                    .find(|t| arrivals.binary_search(t).is_err())
                    .unwrap_or(0);
                arrivals.clear();
                let (tx, ty, tz) = block.unflatten(missing);
                let (bx, by, bz) = block_idx;
                panic!(
                    "simsan: barrier divergence in block ({bx},{by},{bz}) at phase {phase}: \
                     {arrived} of {total} threads reached the barrier \
                     (first missing: thread ({tx},{ty},{tz}))"
                );
            }
            arrivals.clear();
        });
    }

    /// Snapshot the sanitizer's state into a structured report.
    pub(crate) fn report(&self, device_id: u64, tracker: &RaceTracker) -> SanitizerReport {
        let live: Vec<LeakRecord> = self
            .live_metas()
            .iter()
            .map(|m| LeakRecord {
                id: m.id,
                bytes: m.bytes,
                len: m.len,
                elem: m.elem,
                backtrace: format!("{}", m.backtrace),
            })
            .collect();
        let bytes_outstanding = live.iter().map(|r| r.bytes).sum();
        SanitizerReport {
            device_id,
            allocations_tracked: self.next_id.load(Ordering::Relaxed) - 1,
            bytes_outstanding,
            live_allocations: live,
            launches_checked: self.launches_checked.load(Ordering::Relaxed),
            barriers_checked: self.barriers_checked.load(Ordering::Relaxed),
            canaries_verified: self.canaries_verified.load(Ordering::Relaxed),
            reads_tracked: tracker.reads_tracked(),
            writes_tracked: tracker.writes_tracked(),
        }
    }
}

/// One still-live allocation in a [`SanitizerReport`] — a leak candidate
/// when the report is taken at device teardown.
#[derive(Debug, Clone)]
pub struct LeakRecord {
    /// Per-device allocation id.
    pub id: u64,
    /// Payload bytes.
    pub bytes: usize,
    /// Element count.
    pub len: usize,
    /// Element type name.
    pub elem: &'static str,
    /// Backtrace of the allocation site (empty unless backtraces are
    /// available on the platform).
    pub backtrace: String,
}

/// Structured result of a sanitized session, from
/// [`crate::Device::sanitizer_report`]: check counters plus the table of
/// allocations still outstanding.
#[derive(Debug, Clone)]
pub struct SanitizerReport {
    /// The device the report describes.
    pub device_id: u64,
    /// Total sanitized allocations made over the device's lifetime.
    pub allocations_tracked: u64,
    /// Allocations still live (leaks, when taken at teardown).
    pub live_allocations: Vec<LeakRecord>,
    /// Sum of live allocation payload bytes.
    pub bytes_outstanding: usize,
    /// Launches executed under the sanitizer.
    pub launches_checked: u64,
    /// Block/phase barrier boundaries verified for full arrival.
    pub barriers_checked: u64,
    /// Canary verifications performed (allocations x sweeps).
    pub canaries_verified: u64,
    /// Reads recorded by the race tracker.
    pub reads_tracked: u64,
    /// Writes recorded by the race tracker.
    pub writes_tracked: u64,
}

impl std::fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "simsan report (device {})", self.device_id)?;
        writeln!(
            f,
            "  launches checked: {}  barriers checked: {}  canaries verified: {}",
            self.launches_checked, self.barriers_checked, self.canaries_verified
        )?;
        writeln!(
            f,
            "  reads tracked: {}  writes tracked: {}  allocations tracked: {}",
            self.reads_tracked, self.writes_tracked, self.allocations_tracked
        )?;
        if self.live_allocations.is_empty() {
            write!(f, "  no leaks: all sanitized allocations freed")?;
        } else {
            writeln!(
                f,
                "  LEAK: {} allocation(s) still live, {} B outstanding:",
                self.live_allocations.len(),
                self.bytes_outstanding
            )?;
            for rec in &self.live_allocations {
                writeln!(
                    f,
                    "    allocation #{} ({} x {}, {} B)",
                    rec.id, rec.len, rec.elem, rec.bytes
                )?;
                for line in rec.backtrace.lines() {
                    writeln!(f, "      {line}")?;
                }
            }
            write!(f, "  (drop every DeviceBuffer before the device)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parsing_accepts_truthy_values() {
        // Not set in the test environment by default; exercised indirectly.
        let _ = env_enabled();
    }

    #[test]
    fn arrivals_are_ignored_when_inactive() {
        set_active(false);
        barrier_arrive(3);
        let san = Sanitizer::new(true);
        // No arrivals recorded, so any block/phase passes vacuously.
        san.check_block_phase((0, 0, 0), Dim3::x(4), 0);
        assert_eq!(san.report(0, &RaceTracker::new()).barriers_checked, 0);
    }

    #[test]
    fn full_arrival_passes_and_counts() {
        set_active(true);
        for t in 0..4 {
            barrier_arrive(t);
        }
        let san = Sanitizer::new(true);
        san.check_block_phase((0, 0, 0), Dim3::x(4), 0);
        assert_eq!(san.report(0, &RaceTracker::new()).barriers_checked, 1);
        set_active(false);
    }

    #[test]
    #[should_panic(expected = "barrier divergence")]
    fn partial_arrival_panics() {
        set_active(true);
        barrier_arrive(0);
        barrier_arrive(2);
        let san = Sanitizer::new(true);
        san.check_block_phase((1, 0, 0), Dim3::x(4), 2);
    }

    #[test]
    fn report_lists_live_allocations() {
        let san = Sanitizer::new(true);
        let meta = san.new_meta::<f64>(16, 128);
        san.register(Arc::clone(&meta));
        let report = san.report(7, &RaceTracker::new());
        assert_eq!(report.device_id, 7);
        assert_eq!(report.live_allocations.len(), 1);
        assert_eq!(report.bytes_outstanding, 128);
        assert!(format!("{report}").contains("LEAK"));
        meta.freed.store(true, Ordering::Release);
        let report = san.report(7, &RaceTracker::new());
        assert!(report.live_allocations.is_empty());
        assert!(format!("{report}").contains("no leaks"));
    }
}
