//! Three-component extents used for grids and blocks.

/// A 3D extent (x, y, z), mirroring CUDA's `dim3`. Components default to 1,
/// so 1D and 2D shapes are just `Dim3::x(n)` / `Dim3::xy(nx, ny)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Fastest-varying extent.
    pub x: u32,
    /// Middle extent.
    pub y: u32,
    /// Slowest-varying extent.
    pub z: u32,
}

impl Dim3 {
    /// A 1D extent.
    pub const fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2D extent.
    pub const fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// A full 3D extent.
    pub const fn xyz(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// Total number of elements (`x * y * z`).
    pub const fn count(self) -> usize {
        self.x as usize * self.y as usize * self.z as usize
    }

    /// True if any component is zero (an invalid launch extent).
    pub const fn is_degenerate(self) -> bool {
        self.x == 0 || self.y == 0 || self.z == 0
    }

    /// Decompose a linear index (x fastest) into (x, y, z) coordinates.
    pub fn unflatten(self, linear: usize) -> (u32, u32, u32) {
        debug_assert!(linear < self.count());
        let x = (linear % self.x as usize) as u32;
        let y = ((linear / self.x as usize) % self.y as usize) as u32;
        let z = (linear / (self.x as usize * self.y as usize)) as u32;
        (x, y, z)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Self {
        Dim3::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Self {
        Dim3::xy(x, y)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::xyz(x, y, z)
    }
}

impl std::fmt::Display for Dim3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_count() {
        assert_eq!(Dim3::x(5).count(), 5);
        assert_eq!(Dim3::xy(4, 3).count(), 12);
        assert_eq!(Dim3::xyz(2, 3, 4).count(), 24);
        assert_eq!(Dim3::from(7u32), Dim3::x(7));
        assert_eq!(Dim3::from((2u32, 3u32)), Dim3::xy(2, 3));
        assert_eq!(Dim3::from((2u32, 3u32, 4u32)), Dim3::xyz(2, 3, 4));
    }

    #[test]
    fn degenerate_detection() {
        assert!(Dim3::xyz(0, 1, 1).is_degenerate());
        assert!(Dim3::xyz(1, 0, 1).is_degenerate());
        assert!(Dim3::xyz(1, 1, 0).is_degenerate());
        assert!(!Dim3::xyz(1, 1, 1).is_degenerate());
    }

    #[test]
    fn unflatten_round_trips() {
        let d = Dim3::xyz(3, 4, 5);
        for linear in 0..d.count() {
            let (x, y, z) = d.unflatten(linear);
            assert!(x < 3 && y < 4 && z < 5);
            let back = (z as usize * 4 + y as usize) * 3 + x as usize;
            assert_eq!(back, linear);
        }
    }
}
