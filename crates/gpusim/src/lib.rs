//! # racc-gpusim
//!
//! A software **SIMT GPU simulator**: the hardware substitute that lets this
//! workspace reproduce the JACC paper's GPU experiments without GPUs.
//!
//! The simulator provides, faithfully shaped after the CUDA/HIP/Level-Zero
//! execution models the paper's back ends target:
//!
//! * a [`Device`] with its own **memory heap**, distinct from host memory —
//!   data must be explicitly uploaded/downloaded, and those transfers are
//!   priced by the performance model exactly like PCIe/fabric transfers;
//! * **grid/block kernel launches** ([`Device::launch`]) with 1D–3D grids,
//!   per-launch validation against the device limits, and functional
//!   execution of every simulated thread (parallelized over blocks on the
//!   host thread pool);
//! * **cooperative kernels** ([`Device::launch_phased`]) for code that needs
//!   `__syncthreads`: a kernel is expressed as a sequence of *phases* with an
//!   implicit block-wide barrier between them, per-block **shared memory**,
//!   and per-thread private state that survives across phases (the register
//!   file of the simulated thread);
//! * **streams and events** with device-clock timestamps;
//! * an **analytic performance model** ([`perf::PerfModel`]): each launch and
//!   transfer advances a virtual device clock by
//!   `launch overhead + max(compute, memory)` using the device profile's
//!   bandwidth/throughput figures, occupancy-scaled at small grids. Figures
//!   in the paper reproduction are regenerated from this clock;
//! * an optional **write-race checker** for device buffers
//!   ([`Device::set_racecheck`]).
//!
//! Calibrated [`DeviceSpec`] profiles for the paper's three GPUs (NVIDIA
//! A100, AMD MI100, Intel Data Center Max 1550) live in [`profiles`].
//!
//! ```
//! use racc_gpusim::{profiles, Device, Dim3, KernelCost, LaunchConfig};
//!
//! let dev = Device::new(profiles::nvidia_a100());
//! let x = dev.alloc_from(&vec![1.0f64; 1024]).unwrap();
//! let cfg = LaunchConfig::linear(1024, 256);
//! let xs = dev.slice_mut(&x).unwrap();
//! dev.launch(cfg, KernelCost::memory_bound(8.0, 8.0), |t| {
//!     let i = t.global_id_x();
//!     if i < 1024 {
//!         xs.set(i, xs.get(i) * 2.0);
//!     }
//! })
//! .unwrap();
//! assert_eq!(dev.read_vec(&x).unwrap()[7], 2.0);
//! assert!(dev.clock_ns() > 0);
//! ```

mod arena;
mod device;
mod dim;
mod error;
mod event;
mod heap;
mod launch;
pub mod perf;
mod phased;
pub mod profiles;
mod racecheck;
mod report;
mod sanitizer;
mod spec;
mod stream;

pub use device::Device;
pub use dim::Dim3;
pub use error::SimError;
pub use event::Event;
pub use heap::{DeviceBuffer, DeviceSlice, DeviceSliceMut, Element};
pub use launch::{LaunchConfig, ThreadCtx};
pub use perf::{KernelCost, OpKind, OpRecord};
pub use phased::{PhasedKernel, SharedMem, SinglePhase};
// Fault-injection vocabulary (racc-chaos), re-exported so simulator users
// can arm a device without naming the chaos crate.
pub use racc_chaos::{FaultAction, FaultEvent, FaultPlan, FaultSite, RetryPolicy};
pub use report::{OpStats, ProfileReport};
pub use sanitizer::{LeakRecord, SanitizerReport};
pub use spec::DeviceSpec;
pub use stream::Stream;
