//! Calibrated device profiles for the architectures in the paper's study.
//!
//! Structural numbers (compute units, SIMT width, limits, capacities, peak
//! bandwidth/FLOPs) are the published hardware figures. The *achieved
//! efficiency* and *overhead* fields are calibration constants chosen so the
//! simulator approximates the GPU-vs-CPU speedup landscape the paper reports
//! (JACC §V): they are documented, deliberately centralised here, and
//! recorded against the measured outcomes in `EXPERIMENTS.md`.
//!
//! Calibration anchors from the paper:
//!
//! * AXPY (1D, large): MI100 ≈ 70× over the EPYC 7742 CPU backend.
//! * LBM: MI100 ≈ 14×, A100 ≈ 20×, Max 1550 ≈ 6.5× over CPU — the paper's
//!   LBM kernel indexes `f[(k-1)·S² + x·S + y]` with `x` as the fast thread
//!   index, i.e. *strided* (uncoalesced) device accesses, which is why its
//!   GPU advantage is far below the pure-bandwidth ratio. The
//!   `uncoalesced_efficiency` fields are fit to these points.
//! * DOT (small arrays): CPU ≈ 2× faster than GPUs — reproduced by launch
//!   overhead plus the two-kernel reduction's `reduce_sync_penalty`.
//! * Intel Max 1550 shows the weakest speedups (software maturity at the
//!   time of the study); its efficiency factors are calibrated lowest.

use crate::spec::DeviceSpec;

/// NVIDIA Ampere A100 (Perlmutter's accelerator).
pub fn nvidia_a100() -> DeviceSpec {
    DeviceSpec {
        name: "NVIDIA A100",
        key: "a100",
        compute_units: 108,
        simt_width: 32,
        max_threads_per_block: 1024,
        max_block_dim_x: 1024,
        max_block_dim_y: 1024,
        max_block_dim_z: 64,
        max_blocks_per_cu: 32,
        shared_mem_per_block: 163 * 1024,
        memory_bytes: 40 * (1 << 30),
        mem_bw_bytes_per_sec: 1555e9,
        mem_efficiency: 0.78,
        fp64_flops_per_sec: 9.7e12,
        launch_overhead_ns: 6_000.0,
        link_bw_bytes_per_sec: 25e9,
        link_latency_ns: 1_300.0,
        reduce_sync_penalty: 1.3,
        uncoalesced_efficiency: 0.20,
    }
}

/// AMD MI100 (the paper's AMD accelerator, hosted at ORNL's ExCL).
pub fn amd_mi100() -> DeviceSpec {
    DeviceSpec {
        name: "AMD MI100",
        key: "mi100",
        compute_units: 120,
        simt_width: 64,
        max_threads_per_block: 1024,
        max_block_dim_x: 1024,
        max_block_dim_y: 1024,
        max_block_dim_z: 1024,
        max_blocks_per_cu: 16,
        shared_mem_per_block: 64 * 1024,
        memory_bytes: 32 * (1 << 30),
        mem_bw_bytes_per_sec: 1228e9,
        mem_efficiency: 0.68,
        fp64_flops_per_sec: 11.5e12,
        launch_overhead_ns: 11_000.0,
        link_bw_bytes_per_sec: 16e9,
        link_latency_ns: 2_000.0,
        reduce_sync_penalty: 1.8,
        uncoalesced_efficiency: 0.20,
    }
}

/// Intel Data Center GPU Max 1550 (Aurora's accelerator; one tile).
pub fn intel_max1550() -> DeviceSpec {
    DeviceSpec {
        name: "Intel Max 1550",
        key: "max1550",
        compute_units: 128,
        simt_width: 32,
        max_threads_per_block: 1024,
        max_block_dim_x: 1024,
        max_block_dim_y: 1024,
        max_block_dim_z: 1024,
        max_blocks_per_cu: 16,
        shared_mem_per_block: 128 * 1024,
        memory_bytes: 64 * (1 << 30),
        mem_bw_bytes_per_sec: 3277e9,
        mem_efficiency: 0.037,
        fp64_flops_per_sec: 26e12,
        launch_overhead_ns: 22_000.0,
        link_bw_bytes_per_sec: 32e9,
        link_latency_ns: 3_000.0,
        reduce_sync_penalty: 2.6,
        uncoalesced_efficiency: 0.65,
    }
}

/// A deliberately tiny device for tests: small memory, small limits, fast
/// clock math. Not used by any benchmark.
pub fn test_device() -> DeviceSpec {
    DeviceSpec {
        name: "Test Device",
        key: "test",
        compute_units: 4,
        simt_width: 8,
        max_threads_per_block: 64,
        max_block_dim_x: 64,
        max_block_dim_y: 64,
        max_block_dim_z: 8,
        max_blocks_per_cu: 4,
        shared_mem_per_block: 4 * 1024,
        memory_bytes: 16 * (1 << 20),
        mem_bw_bytes_per_sec: 100e9,
        mem_efficiency: 1.0,
        fp64_flops_per_sec: 1e12,
        launch_overhead_ns: 1_000.0,
        link_bw_bytes_per_sec: 10e9,
        link_latency_ns: 500.0,
        reduce_sync_penalty: 1.0,
        uncoalesced_efficiency: 0.25,
    }
}

/// All GPU profiles used in the paper reproduction.
pub fn all() -> Vec<DeviceSpec> {
    vec![nvidia_a100(), amd_mi100(), intel_max1550(), test_device()]
}

/// Look up a profile by its short key (`"a100"`, `"mi100"`, `"max1550"`,
/// `"test"`).
pub fn by_key(key: &str) -> Option<DeviceSpec> {
    all().into_iter().find(|s| s.key == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_key() {
        assert_eq!(by_key("a100").unwrap().name, "NVIDIA A100");
        assert_eq!(by_key("mi100").unwrap().simt_width, 64);
        assert_eq!(by_key("max1550").unwrap().compute_units, 128);
        assert!(by_key("h100").is_none());
    }

    #[test]
    fn keys_are_unique() {
        let keys: Vec<_> = all().iter().map(|s| s.key).collect();
        let mut dedup = keys.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(keys.len(), dedup.len());
    }

    #[test]
    fn bandwidth_ordering_matches_hardware() {
        // Peak bandwidth: Max 1550 > A100 > MI100.
        assert!(intel_max1550().mem_bw_bytes_per_sec > nvidia_a100().mem_bw_bytes_per_sec);
        assert!(nvidia_a100().mem_bw_bytes_per_sec > amd_mi100().mem_bw_bytes_per_sec);
        // Achieved (calibrated) bandwidth: A100 leads, reflecting the paper's
        // observed results.
        let achieved = |s: &crate::DeviceSpec| s.achieved_bw_bytes_per_ns(1.0);
        assert!(achieved(&nvidia_a100()) > achieved(&amd_mi100()));
        assert!(achieved(&amd_mi100()) > achieved(&intel_max1550()));
    }
}
