//! Op-log summarization: a `nvprof`-style profile report for a device.

use crate::perf::{OpKind, OpRecord};

/// Aggregate statistics for one operation category.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OpStats {
    /// Number of operations.
    pub count: u64,
    /// Total modeled nanoseconds.
    pub total_ns: u64,
    /// Total bytes moved/touched.
    pub total_bytes: u64,
    /// Largest single operation, nanoseconds.
    pub max_ns: u64,
}

impl OpStats {
    fn add(&mut self, rec: &OpRecord) {
        self.count += 1;
        self.total_ns += rec.modeled_ns;
        self.total_bytes += rec.bytes;
        self.max_ns = self.max_ns.max(rec.modeled_ns);
    }

    /// Mean duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// A profile summary built from a device's op log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileReport {
    /// Kernel launches.
    pub kernels: OpStats,
    /// Host-to-device transfers.
    pub h2d: OpStats,
    /// Device-to-host transfers.
    pub d2h: OpStats,
    /// Device-to-device copies.
    pub d2d: OpStats,
    /// Explicit synchronizations.
    pub sync: OpStats,
}

impl ProfileReport {
    /// Summarize a sequence of op records.
    pub fn from_ops(ops: &[OpRecord]) -> Self {
        let mut report = ProfileReport::default();
        for rec in ops {
            match rec.kind {
                OpKind::Kernel => report.kernels.add(rec),
                OpKind::H2D => report.h2d.add(rec),
                OpKind::D2H => report.d2h.add(rec),
                OpKind::D2D => report.d2d.add(rec),
                OpKind::Sync => report.sync.add(rec),
            }
        }
        report
    }

    /// Total modeled time across all categories.
    pub fn total_ns(&self) -> u64 {
        self.kernels.total_ns
            + self.h2d.total_ns
            + self.d2h.total_ns
            + self.d2d.total_ns
            + self.sync.total_ns
    }

    /// Fraction of modeled time spent in kernels (vs transfers/sync);
    /// `None` when nothing ran.
    pub fn compute_fraction(&self) -> Option<f64> {
        let total = self.total_ns();
        if total == 0 {
            None
        } else {
            Some(self.kernels.total_ns as f64 / total as f64)
        }
    }

    /// Render a small human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let line = |name: &str, s: &OpStats| {
            if s.count == 0 {
                return String::new();
            }
            format!(
                "  {:<8} {:>6} ops  {:>12} ns total  {:>10.1} ns mean  {:>12} B\n",
                name,
                s.count,
                s.total_ns,
                s.mean_ns(),
                s.total_bytes
            )
        };
        out.push_str("device profile:\n");
        out.push_str(&line("kernel", &self.kernels));
        out.push_str(&line("h2d", &self.h2d));
        out.push_str(&line("d2h", &self.d2h));
        out.push_str(&line("d2d", &self.d2d));
        out.push_str(&line("sync", &self.sync));
        if let Some(f) = self.compute_fraction() {
            out.push_str(&format!("  compute fraction: {:.1}%\n", 100.0 * f));
        }
        out
    }
}

impl crate::Device {
    /// Summarize this device's op log (up to the retained window).
    pub fn profile_report(&self) -> ProfileReport {
        ProfileReport::from_ops(&self.op_log())
    }
}

#[cfg(test)]
mod tests {

    use crate::{profiles, Device, KernelCost, LaunchConfig};

    #[test]
    fn report_aggregates_by_kind() {
        let dev = Device::new(profiles::test_device());
        let buf = dev.alloc_from(&vec![1.0f64; 4096]).unwrap();
        let v = dev.slice_mut(&buf).unwrap();
        for _ in 0..3 {
            dev.launch(LaunchConfig::linear(4096, 64), KernelCost::default(), |t| {
                let i = t.global_id_x();
                if i < 4096 {
                    v.set(i, v.get(i) + 1.0);
                }
            })
            .unwrap();
        }
        let _ = dev.read_vec(&buf).unwrap();
        let report = dev.profile_report();
        assert_eq!(report.kernels.count, 3);
        assert_eq!(report.h2d.count, 1);
        assert_eq!(report.d2h.count, 1);
        assert_eq!(report.h2d.total_bytes, 4096 * 8);
        assert_eq!(report.d2h.total_bytes, 4096 * 8);
        assert!(report.kernels.total_ns > 0);
        assert!(report.kernels.max_ns >= report.kernels.mean_ns() as u64);
        assert_eq!(report.total_ns(), dev.clock_ns());
        let f = report.compute_fraction().unwrap();
        assert!(f > 0.0 && f < 1.0);
        let text = report.render();
        assert!(text.contains("kernel"));
        assert!(text.contains("compute fraction"));
    }

    #[test]
    fn empty_report() {
        let dev = Device::new(profiles::test_device());
        let report = dev.profile_report();
        assert_eq!(report.total_ns(), 0);
        assert!(report.compute_fraction().is_none());
        assert_eq!(report.kernels.mean_ns(), 0.0);
    }
}
