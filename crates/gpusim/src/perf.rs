//! The analytic performance model that advances the virtual device clock.
//!
//! Every kernel launch is priced as
//!
//! ```text
//! t = launch_overhead + max(t_mem, t_compute)
//! t_mem     = total_bytes   / (achieved_bw(coalescing) · occupancy(warps))
//! t_compute = total_flops   / (peak_flops · occupancy(warps))
//! ```
//!
//! where `occupancy` ramps linearly from 0 to 1 as the launch provides enough
//! SIMT groups to saturate the device (a fixed number per compute unit).
//! This produces the latency-bound floor at small sizes and the
//! bandwidth-bound linear regime at large sizes that shape the paper's
//! log-log figures, including the CPU-beats-GPU region for small DOTs.
//!
//! Transfers are priced as `link_latency + bytes / link_bw`.

use crate::dim::Dim3;
use crate::spec::DeviceSpec;

/// SIMT groups per compute unit needed to reach full memory throughput.
/// (Latency hiding requires many resident warps; 16 is a reasonable round
/// figure across the three modeled architectures.)
const WARPS_PER_CU_FOR_PEAK: f64 = 16.0;

/// Per-iteration resource usage of a kernel, supplied at launch so the model
/// can price it. "Per thread" means per simulated SIMT thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Double-precision FLOPs each thread performs.
    pub flops_per_thread: f64,
    /// Bytes each thread reads from device memory.
    pub bytes_read_per_thread: f64,
    /// Bytes each thread writes to device memory.
    pub bytes_written_per_thread: f64,
    /// Memory coalescing factor in `[0, 1]`: 1 when consecutive threads
    /// touch consecutive addresses, 0 for fully strided access.
    pub coalescing: f64,
}

impl KernelCost {
    /// A memory-bound streaming kernel: perfectly coalesced, negligible
    /// arithmetic.
    pub fn memory_bound(bytes_read: f64, bytes_written: f64) -> Self {
        KernelCost {
            flops_per_thread: 0.0,
            bytes_read_per_thread: bytes_read,
            bytes_written_per_thread: bytes_written,
            coalescing: 1.0,
        }
    }

    /// A fully described cost.
    pub fn new(flops: f64, bytes_read: f64, bytes_written: f64, coalescing: f64) -> Self {
        KernelCost {
            flops_per_thread: flops,
            bytes_read_per_thread: bytes_read,
            bytes_written_per_thread: bytes_written,
            coalescing,
        }
    }

    /// Override the coalescing factor.
    pub fn with_coalescing(mut self, coalescing: f64) -> Self {
        self.coalescing = coalescing;
        self
    }

    /// Total bytes a thread moves.
    pub fn bytes_per_thread(&self) -> f64 {
        self.bytes_read_per_thread + self.bytes_written_per_thread
    }
}

impl Default for KernelCost {
    /// A conservative default for kernels launched without a cost
    /// descriptor: 16 bytes moved and 2 FLOPs per thread, coalesced.
    fn default() -> Self {
        KernelCost::new(2.0, 8.0, 8.0, 1.0)
    }
}

/// Categories of clock-advancing operations, kept in the device's op log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A kernel launch.
    Kernel,
    /// Host-to-device transfer.
    H2D,
    /// Device-to-host transfer.
    D2H,
    /// Device-to-device copy.
    D2D,
    /// An explicit synchronization charged by a higher layer.
    Sync,
}

/// One entry of the device op log.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpRecord {
    /// What kind of operation this was.
    pub kind: OpKind,
    /// Bytes moved (transfers) or touched (kernels).
    pub bytes: u64,
    /// Simulated threads involved (kernels; 0 for transfers).
    pub threads: u64,
    /// Modeled duration in nanoseconds.
    pub modeled_ns: u64,
    /// Device clock value after the operation.
    pub clock_after_ns: u64,
}

/// Minimum occupancy factor: even a single resident warp sustains a few
/// percent of peak bandwidth (it is latency-bound, not proportionally
/// starved), so tiny launches are not scaled below this floor.
const OCCUPANCY_FLOOR: f64 = 0.02;

/// Occupancy factor in `(0, 1]` for a launch of `total_threads` with blocks
/// of `block_threads` on `spec`.
pub fn occupancy(spec: &DeviceSpec, total_threads: u64, block_threads: u64) -> f64 {
    let warp = spec.simt_width as u64;
    let warps_per_block = block_threads.div_ceil(warp).max(1);
    let blocks = total_threads.div_ceil(block_threads.max(1));
    let total_warps = (warps_per_block * blocks) as f64;
    let needed = spec.compute_units as f64 * WARPS_PER_CU_FOR_PEAK;
    (total_warps / needed).clamp(OCCUPANCY_FLOOR, 1.0)
}

/// Modeled duration of one kernel launch, in nanoseconds.
pub fn kernel_time_ns(spec: &DeviceSpec, grid: Dim3, block: Dim3, cost: &KernelCost) -> f64 {
    let threads = (grid.count() * block.count()) as f64;
    let occ = occupancy(spec, threads as u64, block.count() as u64);
    let bw = spec.achieved_bw_bytes_per_ns(cost.coalescing) * occ;
    let flops_rate = spec.flops_per_ns() * occ;
    let t_mem = if cost.bytes_per_thread() > 0.0 {
        threads * cost.bytes_per_thread() / bw
    } else {
        0.0
    };
    let t_compute = if cost.flops_per_thread > 0.0 {
        threads * cost.flops_per_thread / flops_rate
    } else {
        0.0
    };
    spec.launch_overhead_ns + t_mem.max(t_compute)
}

/// Modeled duration of a host-link transfer of `bytes`, in nanoseconds.
pub fn transfer_time_ns(spec: &DeviceSpec, bytes: usize) -> f64 {
    spec.link_latency_ns + bytes as f64 / spec.link_bw_bytes_per_ns()
}

/// Modeled duration of an on-device copy of `bytes`, in nanoseconds
/// (bandwidth-bound both ways: read + write).
pub fn d2d_time_ns(spec: &DeviceSpec, bytes: usize) -> f64 {
    spec.launch_overhead_ns + 2.0 * bytes as f64 / spec.achieved_bw_bytes_per_ns(1.0)
}

/// The perf-model functions bundled for convenience where a trait-object
/// style handle is easier to pass around.
#[derive(Debug, Clone)]
pub struct PerfModel {
    spec: DeviceSpec,
}

impl PerfModel {
    /// Build a model for a device specification.
    pub fn new(spec: DeviceSpec) -> Self {
        PerfModel { spec }
    }

    /// See [`kernel_time_ns`].
    pub fn kernel_time_ns(&self, grid: Dim3, block: Dim3, cost: &KernelCost) -> f64 {
        kernel_time_ns(&self.spec, grid, block, cost)
    }

    /// See [`transfer_time_ns`].
    pub fn transfer_time_ns(&self, bytes: usize) -> f64 {
        transfer_time_ns(&self.spec, bytes)
    }

    /// See [`d2d_time_ns`].
    pub fn d2d_time_ns(&self, bytes: usize) -> f64 {
        d2d_time_ns(&self.spec, bytes)
    }

    /// The underlying specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;

    fn axpy_cost() -> KernelCost {
        // read x and y, write x: 24 B/thread, 2 flops.
        KernelCost::new(2.0, 16.0, 8.0, 1.0)
    }

    #[test]
    fn small_launches_are_latency_bound() {
        let spec = profiles::nvidia_a100();
        let t_small = kernel_time_ns(&spec, Dim3::x(1), Dim3::x(64), &axpy_cost());
        // The floor is the launch overhead.
        assert!(t_small >= spec.launch_overhead_ns);
        assert!(t_small < spec.launch_overhead_ns * 2.0);
    }

    #[test]
    fn large_launches_are_bandwidth_bound() {
        let spec = profiles::nvidia_a100();
        let n: u64 = 1 << 27;
        let blocks = (n / 256) as u32;
        let t = kernel_time_ns(&spec, Dim3::x(blocks), Dim3::x(256), &axpy_cost());
        let ideal = n as f64 * 24.0 / spec.achieved_bw_bytes_per_ns(1.0);
        // Within 5% of the pure-bandwidth estimate once saturated.
        assert!((t - spec.launch_overhead_ns - ideal).abs() / ideal < 0.05);
    }

    #[test]
    fn time_scales_linearly_at_saturation() {
        let spec = profiles::amd_mi100();
        let t1 = kernel_time_ns(&spec, Dim3::x(1 << 16), Dim3::x(256), &axpy_cost());
        let t2 = kernel_time_ns(&spec, Dim3::x(1 << 17), Dim3::x(256), &axpy_cost());
        let ratio = (t2 - spec.launch_overhead_ns) / (t1 - spec.launch_overhead_ns);
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn uncoalesced_access_is_slower() {
        let spec = profiles::amd_mi100();
        let coalesced = kernel_time_ns(&spec, Dim3::x(4096), Dim3::x(256), &axpy_cost());
        let strided = kernel_time_ns(
            &spec,
            Dim3::x(4096),
            Dim3::x(256),
            &axpy_cost().with_coalescing(0.0),
        );
        assert!(strided > coalesced * 2.0);
    }

    #[test]
    fn compute_bound_kernels_track_flops() {
        let spec = profiles::test_device();
        let cost = KernelCost::new(10_000.0, 8.0, 8.0, 1.0);
        let t = kernel_time_ns(&spec, Dim3::x(1024), Dim3::x(64), &cost);
        let threads = 1024.0 * 64.0;
        let expected = spec.launch_overhead_ns + threads * 10_000.0 / spec.flops_per_ns();
        assert!((t - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn transfer_costs_latency_plus_bandwidth() {
        let spec = profiles::test_device();
        let t0 = transfer_time_ns(&spec, 0);
        assert_eq!(t0, spec.link_latency_ns);
        let t = transfer_time_ns(&spec, 10_000_000);
        assert!((t - (500.0 + 1_000_000.0)).abs() < 1e-6);
    }

    #[test]
    fn occupancy_ramps_and_saturates() {
        let spec = profiles::nvidia_a100();
        let small = occupancy(&spec, 32, 32);
        let mid = occupancy(&spec, 32 * 864, 32);
        let large = occupancy(&spec, 10_000_000, 256);
        assert!(small < mid);
        assert!(mid <= 1.0);
        assert_eq!(large, 1.0);
        assert!(
            (mid - 0.5).abs() < 0.01,
            "864 warps on 108 CUs = half occupancy"
        );
    }

    #[test]
    fn d2d_moves_bytes_twice() {
        let spec = profiles::test_device();
        let t = d2d_time_ns(&spec, 1 << 20);
        let expected =
            spec.launch_overhead_ns + 2.0 * (1 << 20) as f64 / spec.achieved_bw_bytes_per_ns(1.0);
        assert!((t - expected).abs() < 1e-6);
    }
}
