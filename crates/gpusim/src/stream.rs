//! Streams: ordered submission queues.
//!
//! RACC (like JACC) is a synchronous model, so the simulator executes work
//! eagerly; a `Stream` is an ordering token that exists to keep vendor-API
//! shims faithful (CUDA.jl / AMDGPU.jl code is written against streams and
//! queues). The default stream is stream 0.

use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_STREAM_ID: AtomicU64 = AtomicU64::new(1);

/// An ordered submission queue on a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Stream {
    id: u64,
    device_id: u64,
}

impl Stream {
    /// The default stream of a device.
    pub(crate) fn default_for(device_id: u64) -> Self {
        Stream { id: 0, device_id }
    }

    /// Create a new non-default stream for a device.
    pub(crate) fn new_for(device_id: u64) -> Self {
        Stream {
            id: NEXT_STREAM_ID.fetch_add(1, Ordering::Relaxed),
            device_id,
        }
    }

    /// Stream id (0 = default stream).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// True for the device's default stream.
    pub fn is_default(&self) -> bool {
        self.id == 0
    }

    /// Id of the owning device.
    pub fn device_id(&self) -> u64 {
        self.device_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stream_is_zero() {
        let s = Stream::default_for(3);
        assert!(s.is_default());
        assert_eq!(s.id(), 0);
        assert_eq!(s.device_id(), 3);
    }

    #[test]
    fn new_streams_are_distinct() {
        let a = Stream::new_for(1);
        let b = Stream::new_for(1);
        assert_ne!(a.id(), b.id());
        assert!(!a.is_default());
    }
}
