//! A dynamic checker for the SIMT disjoint-writes contract.
//!
//! When enabled on a device, every bounds-checked write through a
//! [`crate::DeviceSliceMut`] records `(allocation, element)` together with
//! the identity of the simulated thread performing it. Two *different*
//! simulated threads writing the same element within one launch is a data
//! race under the model's contract and panics with a diagnostic. A single
//! thread may rewrite its own element freely (as real SIMT threads do).
//!
//! The checker is heavyweight (a global hash table behind a mutex) and is
//! meant for tests and debugging, never for benchmarking.

use std::cell::Cell;
use std::collections::HashMap;

use parking_lot::Mutex;

thread_local! {
    /// The simulated global-thread id currently executing on this host
    /// thread, or `u64::MAX` outside a tracked launch.
    static CURRENT_SIM_THREAD: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// Install the simulated thread id for the current host thread while a
/// tracked kernel body runs.
pub(crate) fn set_current_sim_thread(id: u64) {
    CURRENT_SIM_THREAD.with(|c| c.set(id));
}

/// Clear the simulated thread id after a tracked kernel body.
pub(crate) fn clear_current_sim_thread() {
    CURRENT_SIM_THREAD.with(|c| c.set(u64::MAX));
}

/// Per-device write tracker. One logical "launch epoch" is active at a time
/// (RACC's model is synchronous, so launches never overlap).
#[derive(Debug, Default)]
pub struct RaceTracker {
    /// Map from (allocation base address, element index) to the sim-thread
    /// id of the first writer in the current epoch.
    writes: Mutex<HashMap<(usize, usize), u64>>,
}

impl RaceTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a new launch epoch, clearing previous write records.
    pub fn begin_epoch(&self) {
        self.writes.lock().clear();
    }

    /// Record a write; panics on a cross-thread overlap.
    pub fn record_write(&self, alloc_base: usize, index: usize) {
        let writer = CURRENT_SIM_THREAD.with(|c| c.get());
        if writer == u64::MAX {
            // Write performed outside a tracked launch (e.g. host-side
            // upload); not subject to the SIMT contract.
            return;
        }
        let mut writes = self.writes.lock();
        match writes.entry((alloc_base, index)) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let first = *e.get();
                if first != writer {
                    panic!(
                        "racecheck: simulated threads {first} and {writer} both wrote \
                         element {index} of allocation {alloc_base:#x} in one launch"
                    );
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(writer);
            }
        }
    }

    /// Number of distinct elements written this epoch (for tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn writes_recorded(&self) -> usize {
        self.writes.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untracked_writes_are_ignored() {
        let t = RaceTracker::new();
        clear_current_sim_thread();
        t.record_write(0x1000, 3);
        assert_eq!(t.writes_recorded(), 0);
    }

    #[test]
    fn same_thread_may_rewrite() {
        let t = RaceTracker::new();
        set_current_sim_thread(7);
        t.record_write(0x1000, 3);
        t.record_write(0x1000, 3);
        assert_eq!(t.writes_recorded(), 1);
        clear_current_sim_thread();
    }

    #[test]
    fn distinct_elements_are_fine() {
        let t = RaceTracker::new();
        set_current_sim_thread(1);
        t.record_write(0x1000, 0);
        set_current_sim_thread(2);
        t.record_write(0x1000, 1);
        // Same index on a different allocation is also fine.
        t.record_write(0x2000, 0);
        assert_eq!(t.writes_recorded(), 3);
        clear_current_sim_thread();
    }

    #[test]
    #[should_panic(expected = "racecheck")]
    fn cross_thread_overlap_panics() {
        let t = RaceTracker::new();
        set_current_sim_thread(1);
        t.record_write(0x1000, 5);
        set_current_sim_thread(2);
        t.record_write(0x1000, 5);
    }

    #[test]
    fn epoch_reset_forgets_writes() {
        let t = RaceTracker::new();
        set_current_sim_thread(1);
        t.record_write(0x1000, 5);
        t.begin_epoch();
        set_current_sim_thread(2);
        t.record_write(0x1000, 5); // would panic without the reset
        assert_eq!(t.writes_recorded(), 1);
        clear_current_sim_thread();
    }
}
