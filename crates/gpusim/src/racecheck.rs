//! A dynamic checker for the SIMT disjoint-writes contract.
//!
//! When enabled on a device, every bounds-checked write through a
//! [`crate::DeviceSliceMut`] records `(allocation, element)` together with
//! the identity of the simulated thread performing it. Two *different*
//! simulated threads writing the same element within one launch is a data
//! race under the model's contract and panics with a diagnostic. A single
//! thread may rewrite its own element freely (as real SIMT threads do).
//!
//! The tracker is **phase-aware**: each access carries the simulated
//! thread's block and the phase (barrier epoch) it executed in. Within one
//! block, accesses in *different* phases are separated by the block-wide
//! barrier and therefore ordered — a thread may legally overwrite or read a
//! value another thread of its block produced in an earlier phase (the
//! `__syncthreads` exchange pattern). Accesses from different blocks are
//! never synchronized within a launch, so any cross-block overlap races
//! regardless of phase.
//!
//! Under the sanitizer ([`crate::Device::set_sanitizer`]) the tracker also
//! records **reads**, catching read-write races with the same phase rules.
//! Reads use a compressed per-element summary (block, latest phase, one/many
//! reader threads) so tracking stays bounded by elements touched, not total
//! accesses; per-block phase monotonicity makes discarding earlier-phase
//! same-block readers sound.
//!
//! The checker is heavyweight (a global hash table behind a mutex) and is
//! meant for tests and debugging, never for benchmarking.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

/// Where a tracked access happened: which simulated thread, in which block,
/// during which phase. `thread == u64::MAX` means "outside a tracked launch".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SimLoc {
    thread: u64,
    block: u64,
    phase: u32,
}

const UNTRACKED: SimLoc = SimLoc {
    thread: u64::MAX,
    block: 0,
    phase: 0,
};

thread_local! {
    /// The simulated location currently executing on this host thread.
    static CURRENT: Cell<SimLoc> = const { Cell::new(UNTRACKED) };
}

/// Install the simulated thread id for the current host thread while a
/// tracked kernel body runs (legacy entry point: block 0, phase 0).
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn set_current_sim_thread(id: u64) {
    set_sim_location(id, 0, 0);
}

/// Install the full simulated location (thread, block, phase) for the
/// current host thread while a tracked kernel body runs.
pub(crate) fn set_sim_location(thread: u64, block: u64, phase: u32) {
    CURRENT.with(|c| {
        c.set(SimLoc {
            thread,
            block,
            phase,
        })
    });
}

/// Clear the simulated location after a tracked kernel body.
pub(crate) fn clear_current_sim_thread() {
    CURRENT.with(|c| c.set(UNTRACKED));
}

/// Compressed per-element read summary. Per-block phase monotonicity lets
/// same-block earlier-phase readers be forgotten when a later phase reads
/// (they can no longer race with any future same-block write), while a
/// cross-block read poisons the element for every future writer.
#[derive(Debug, Clone, Copy)]
struct ReadSet {
    /// Block of the readers (meaningful while `!multi_block`).
    block: u64,
    /// Latest phase a read happened in (same-block reads only).
    phase: u32,
    /// One reader thread at the latest phase.
    first: u64,
    /// More than one distinct reader thread at the latest phase.
    multi: bool,
    /// Readers from more than one block.
    multi_block: bool,
}

/// Two accesses race when they come from different threads and are not
/// ordered by a block barrier: either they are in different blocks (never
/// synchronized within a launch) or in the same block and the same phase.
#[inline]
fn races(a: SimLoc, b: SimLoc) -> bool {
    a.thread != b.thread && (a.block != b.block || a.phase == b.phase)
}

/// Per-device access tracker. One logical "launch epoch" is active at a time
/// (RACC's model is synchronous, so launches never overlap).
#[derive(Debug, Default)]
pub struct RaceTracker {
    /// Map from (allocation base address, element index) to the **latest**
    /// legal writer in the current epoch. Legal overwrites (same thread, or
    /// same block in a later phase) replace the record, so the stored
    /// writer is always the one unordered accesses would race with.
    writes: Mutex<HashMap<(usize, usize), SimLoc>>,
    /// Read summaries per element; populated only when `track_reads` is on.
    reads: Mutex<HashMap<(usize, usize), ReadSet>>,
    /// Whether reads are recorded (sanitizer mode).
    track_reads: AtomicBool,
    reads_tracked: AtomicU64,
    writes_tracked: AtomicU64,
}

impl RaceTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a new launch epoch, clearing previous access records.
    pub fn begin_epoch(&self) {
        self.writes.lock().clear();
        self.reads.lock().clear();
    }

    /// Enable or disable read tracking (the sanitizer's read-write check).
    pub fn set_track_reads(&self, on: bool) {
        self.track_reads.store(on, Ordering::Relaxed);
    }

    /// Record a write; panics on an unsynchronized overlap with another
    /// simulated thread's write or (when read tracking is on) read.
    pub fn record_write(&self, alloc_base: usize, index: usize) {
        let loc = CURRENT.with(|c| c.get());
        if loc.thread == u64::MAX {
            // Write performed outside a tracked launch (e.g. host-side
            // upload); not subject to the SIMT contract.
            return;
        }
        self.writes_tracked.fetch_add(1, Ordering::Relaxed);
        {
            let mut writes = self.writes.lock();
            match writes.entry((alloc_base, index)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let prev = *e.get();
                    if races(prev, loc) {
                        panic!(
                            "racecheck: simulated threads {} and {} both wrote \
                             element {index} of allocation {alloc_base:#x} in one launch",
                            prev.thread, loc.thread
                        );
                    }
                    // Legal overwrite (same thread, or barrier-ordered):
                    // future accesses race against the newer write.
                    e.insert(loc);
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(loc);
                }
            }
        }
        if self.track_reads.load(Ordering::Relaxed) {
            if let Some(r) = self.reads.lock().get(&(alloc_base, index)).copied() {
                let reader_races = r.multi_block
                    || r.block != loc.block
                    || (r.phase == loc.phase && (r.multi || r.first != loc.thread));
                if reader_races {
                    let reader = if r.first != loc.thread {
                        format!("simulated thread {}", r.first)
                    } else {
                        "another simulated thread".to_string()
                    };
                    panic!(
                        "simsan: read-write race on element {index} of allocation \
                         {alloc_base:#x}: {reader} read it and simulated thread {} \
                         wrote it without an intervening barrier",
                        loc.thread
                    );
                }
            }
        }
    }

    /// Record a read; panics when it is unsynchronized with a prior write by
    /// another simulated thread. No-op unless read tracking is enabled.
    pub fn record_read(&self, alloc_base: usize, index: usize) {
        if !self.track_reads.load(Ordering::Relaxed) {
            return;
        }
        let loc = CURRENT.with(|c| c.get());
        if loc.thread == u64::MAX {
            return;
        }
        self.reads_tracked.fetch_add(1, Ordering::Relaxed);
        {
            let mut reads = self.reads.lock();
            match reads.entry((alloc_base, index)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let r = e.get_mut();
                    if !r.multi_block {
                        if r.block != loc.block {
                            r.multi_block = true;
                        } else if loc.phase > r.phase {
                            // Barrier passed: earlier-phase readers can no
                            // longer race with same-block future writes.
                            r.phase = loc.phase;
                            r.first = loc.thread;
                            r.multi = false;
                        } else if r.first != loc.thread {
                            r.multi = true;
                        }
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(ReadSet {
                        block: loc.block,
                        phase: loc.phase,
                        first: loc.thread,
                        multi: false,
                        multi_block: false,
                    });
                }
            }
        }
        if let Some(w) = self.writes.lock().get(&(alloc_base, index)).copied() {
            if races(w, loc) {
                panic!(
                    "simsan: read-write race on element {index} of allocation \
                     {alloc_base:#x}: simulated thread {} wrote it and simulated \
                     thread {} read it without an intervening barrier",
                    w.thread, loc.thread
                );
            }
        }
    }

    /// Total reads recorded (sanitizer report).
    pub fn reads_tracked(&self) -> u64 {
        self.reads_tracked.load(Ordering::Relaxed)
    }

    /// Total writes recorded (sanitizer report).
    pub fn writes_tracked(&self) -> u64 {
        self.writes_tracked.load(Ordering::Relaxed)
    }

    /// Number of distinct elements written this epoch (for tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn writes_recorded(&self) -> usize {
        self.writes.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untracked_writes_are_ignored() {
        let t = RaceTracker::new();
        clear_current_sim_thread();
        t.record_write(0x1000, 3);
        assert_eq!(t.writes_recorded(), 0);
    }

    #[test]
    fn same_thread_may_rewrite() {
        let t = RaceTracker::new();
        set_current_sim_thread(7);
        t.record_write(0x1000, 3);
        t.record_write(0x1000, 3);
        assert_eq!(t.writes_recorded(), 1);
        clear_current_sim_thread();
    }

    #[test]
    fn distinct_elements_are_fine() {
        let t = RaceTracker::new();
        set_current_sim_thread(1);
        t.record_write(0x1000, 0);
        set_current_sim_thread(2);
        t.record_write(0x1000, 1);
        // Same index on a different allocation is also fine.
        t.record_write(0x2000, 0);
        assert_eq!(t.writes_recorded(), 3);
        clear_current_sim_thread();
    }

    #[test]
    #[should_panic(expected = "racecheck")]
    fn cross_thread_overlap_panics() {
        let t = RaceTracker::new();
        set_current_sim_thread(1);
        t.record_write(0x1000, 5);
        set_current_sim_thread(2);
        t.record_write(0x1000, 5);
    }

    #[test]
    fn epoch_reset_forgets_writes() {
        let t = RaceTracker::new();
        set_current_sim_thread(1);
        t.record_write(0x1000, 5);
        t.begin_epoch();
        set_current_sim_thread(2);
        t.record_write(0x1000, 5); // would panic without the reset
        assert_eq!(t.writes_recorded(), 1);
        clear_current_sim_thread();
    }

    #[test]
    fn barrier_ordered_writes_are_legal() {
        let t = RaceTracker::new();
        // Thread 1 writes in phase 0; thread 2 (same block) overwrites in
        // phase 1 — ordered by the block barrier.
        set_sim_location(1, 0, 0);
        t.record_write(0x1000, 5);
        set_sim_location(2, 0, 1);
        t.record_write(0x1000, 5);
        clear_current_sim_thread();
    }

    #[test]
    #[should_panic(expected = "racecheck")]
    fn cross_block_writes_race_even_across_phases() {
        let t = RaceTracker::new();
        set_sim_location(1, 0, 0);
        t.record_write(0x1000, 5);
        set_sim_location(65, 1, 1); // another block: never synchronized
        t.record_write(0x1000, 5);
    }

    #[test]
    fn reads_are_ignored_without_tracking() {
        let t = RaceTracker::new();
        set_sim_location(1, 0, 0);
        t.record_read(0x1000, 0);
        assert_eq!(t.reads_tracked(), 0);
        clear_current_sim_thread();
    }

    #[test]
    fn same_thread_read_write_is_fine() {
        let t = RaceTracker::new();
        t.set_track_reads(true);
        set_sim_location(3, 0, 0);
        t.record_read(0x1000, 7);
        t.record_write(0x1000, 7);
        t.record_read(0x1000, 7);
        assert_eq!(t.reads_tracked(), 2);
        clear_current_sim_thread();
    }

    #[test]
    #[should_panic(expected = "read-write race")]
    fn unsynchronized_read_after_write_panics() {
        let t = RaceTracker::new();
        t.set_track_reads(true);
        set_sim_location(1, 0, 0);
        t.record_write(0x1000, 4);
        set_sim_location(2, 0, 0); // same block, same phase, other thread
        t.record_read(0x1000, 4);
    }

    #[test]
    #[should_panic(expected = "read-write race")]
    fn unsynchronized_write_after_read_panics() {
        let t = RaceTracker::new();
        t.set_track_reads(true);
        set_sim_location(1, 0, 0);
        t.record_read(0x1000, 4);
        set_sim_location(2, 0, 0);
        t.record_write(0x1000, 4);
    }

    #[test]
    fn barrier_separated_read_write_is_legal() {
        let t = RaceTracker::new();
        t.set_track_reads(true);
        // Phase 0: thread 1 writes; phase 1: thread 2 of the same block
        // reads — the canonical shared-memory exchange, made legal by the
        // barrier between phases.
        set_sim_location(1, 0, 0);
        t.record_write(0x1000, 2);
        set_sim_location(2, 0, 1);
        t.record_read(0x1000, 2);
        // And the symmetric case: read in phase 1, overwrite in phase 2.
        set_sim_location(1, 0, 2);
        t.record_write(0x1000, 2);
        clear_current_sim_thread();
    }

    #[test]
    #[should_panic(expected = "read-write race")]
    fn cross_block_read_write_races_across_phases() {
        let t = RaceTracker::new();
        t.set_track_reads(true);
        set_sim_location(1, 0, 0);
        t.record_read(0x1000, 9);
        set_sim_location(70, 1, 3); // other block: phases don't order it
        t.record_write(0x1000, 9);
    }

    #[test]
    fn multiple_same_phase_readers_then_writer_race() {
        let t = RaceTracker::new();
        t.set_track_reads(true);
        set_sim_location(1, 0, 0);
        t.record_read(0x1000, 0);
        set_sim_location(2, 0, 0);
        t.record_read(0x1000, 0);
        // Thread 1 writing now races with thread 2's read even though
        // thread 1 itself also read the element.
        set_sim_location(1, 0, 0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.record_write(0x1000, 0);
        }));
        assert!(result.is_err(), "reader set must remember both threads");
        clear_current_sim_thread();
    }
}
