//! # racc-backend-hip
//!
//! The RACC back end for (simulated) AMD GPUs — the analog of JACC's
//! AMDGPU.jl back end. A thin wrapper around
//! [`racc_backend_common::SimBackend`] configured with:
//!
//! * the MI100 device profile (the paper's AMD accelerator),
//! * wavefront-64 friendly launch geometry (the reduction block of 512 is
//!   eight full wavefronts),
//! * the paper's 16x16 2D tiles and two-kernel reductions.

use std::sync::Arc;

use racc_backend_common::{SimBackend, SimBackendConfig};
use racc_core::{
    AccScalar, Backend, DeviceToken, FaultEvent, FaultPlan, KernelProfile, RaccError, ReduceOp,
    RetryPolicy, Timeline,
};
use racc_gpusim::Device;
use racc_hipsim::Hip;

/// The HIP-flavored RACC back end.
pub struct HipBackend {
    inner: SimBackend,
}

impl Default for HipBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl HipBackend {
    /// A backend on a fresh simulated MI100.
    pub fn new() -> Self {
        Self::from_hip(&Hip::new())
    }

    /// Share a device with existing HIP-flavored code.
    pub fn from_hip(hip: &Hip) -> Self {
        Self::from_device(hip.device_arc())
    }

    /// Wrap an arbitrary simulator device.
    pub fn from_device(device: Arc<Device>) -> Self {
        HipBackend {
            inner: SimBackend::new(device, Self::config()),
        }
    }

    /// The HIP back-end configuration.
    pub fn config() -> SimBackendConfig {
        SimBackendConfig {
            key: "hipsim",
            tile_2d: (16, 16),
            tile_3d: (8, 8, 4),
            reduce_block: 512,
            racc_launch_extra_ns: 1_500.0,
            reduce_time_factor: 1.0,
        }
    }

    /// The underlying simulator device.
    pub fn device(&self) -> &Arc<Device> {
        self.inner.device()
    }
}

impl Backend for HipBackend {
    fn name(&self) -> String {
        self.inner.name()
    }
    fn key(&self) -> &'static str {
        self.inner.key()
    }
    fn is_accelerator(&self) -> bool {
        true
    }
    fn timeline(&self) -> &Timeline {
        self.inner.timeline()
    }
    fn set_sanitizer(&self, enabled: bool) -> bool {
        self.inner.set_sanitizer(enabled)
    }
    fn sanitizer_report(&self) -> Option<String> {
        self.inner.sanitizer_report()
    }
    fn steal_stats(&self) -> Option<racc_core::StealStats> {
        self.inner.steal_stats()
    }
    fn set_chaos(&self, plan: FaultPlan) -> bool {
        self.inner.set_chaos(plan)
    }
    fn set_retry(&self, policy: RetryPolicy) -> bool {
        self.inner.set_retry(policy)
    }
    fn fault_log(&self) -> Vec<FaultEvent> {
        self.inner.fault_log()
    }
    fn self_check(&self) -> Result<(), RaccError> {
        self.inner.self_check()
    }
    fn on_alloc(&self, bytes: usize, upload: bool) -> Result<DeviceToken, RaccError> {
        self.inner.on_alloc(bytes, upload)
    }
    fn on_download(&self, bytes: usize) {
        self.inner.on_download(bytes)
    }
    fn parallel_for_1d<F: Fn(usize) + Sync>(&self, n: usize, p: &KernelProfile, f: F) {
        self.inner.parallel_for_1d(n, p, f)
    }
    fn parallel_for_2d<F: Fn(usize, usize) + Sync>(
        &self,
        m: usize,
        n: usize,
        p: &KernelProfile,
        f: F,
    ) {
        self.inner.parallel_for_2d(m, n, p, f)
    }
    fn parallel_for_3d<F: Fn(usize, usize, usize) + Sync>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        p: &KernelProfile,
        f: F,
    ) {
        self.inner.parallel_for_3d(m, n, l, p, f)
    }
    fn parallel_reduce_1d<T, F, O>(&self, n: usize, p: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.inner.parallel_reduce_1d(n, p, f, op)
    }
    fn parallel_reduce_2d<T, F, O>(&self, m: usize, n: usize, p: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.inner.parallel_reduce_2d(m, n, p, f, op)
    }
    fn parallel_reduce_3d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        p: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.inner.parallel_reduce_3d(m, n, l, p, f, op)
    }
    fn prim_scan_1d<T, F, W, O>(
        &self,
        n: usize,
        inclusive: bool,
        p: &KernelProfile,
        read: F,
        write: W,
        op: O,
    ) where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        W: Fn(usize, T) + Sync,
        O: ReduceOp<T>,
    {
        self.inner.prim_scan_1d(n, inclusive, p, read, write, op)
    }
    fn prim_histogram_1d<F, W>(&self, n: usize, bins: usize, p: &KernelProfile, key: F, write: W)
    where
        F: Fn(usize) -> usize + Sync,
        W: Fn(usize, u64) + Sync,
    {
        self.inner.prim_histogram_1d(n, bins, p, key, write)
    }
    fn prim_sort_pairs_1d<F, W>(&self, n: usize, key_bits: u32, p: &KernelProfile, key: F, write: W)
    where
        F: Fn(usize) -> u64 + Sync,
        W: Fn(usize, usize) + Sync,
    {
        self.inner.prim_sort_pairs_1d(n, key_bits, p, key, write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::Context;

    #[test]
    fn identity() {
        let b = HipBackend::new();
        assert_eq!(b.key(), "hipsim");
        assert!(b.is_accelerator());
        assert!(b.name().contains("MI100"));
    }

    #[test]
    fn lbm_style_2d_stencil_runs() {
        // A guard-heavy 2D kernel like the paper's LBM: interior update.
        let ctx = Context::new(HipBackend::new());
        let s = 64usize;
        let f = ctx.array2_from_fn(s, s, |i, j| (i + j) as f64).unwrap();
        let out = ctx.zeros2::<f64>(s, s).unwrap();
        let (fv, ov) = (f.view(), out.view_mut());
        ctx.parallel_for_2d((s, s), &KernelProfile::unknown(), move |x, y| {
            if x > 0 && x < s - 1 && y > 0 && y < s - 1 {
                let avg =
                    (fv.get(x - 1, y) + fv.get(x + 1, y) + fv.get(x, y - 1) + fv.get(x, y + 1))
                        / 4.0;
                ov.set(x, y, avg);
            }
        });
        let host = ctx.to_host2(&out).unwrap();
        // interior (1,1): neighbors sum = (0+1)+(2+1)+(1+0)+(1+2) = wait,
        // compute directly: f(i,j) = i+j, so avg of 4 neighbors of (1,1) is
        // ((0+1)+(2+1)+(1+0)+(1+2))/4 = 2.0 = f(1,1).
        assert_eq!(host[s + 1], 2.0);
        assert_eq!(host[0], 0.0, "boundary untouched");
    }

    #[test]
    fn reduce_on_wavefront_device() {
        let ctx = Context::new(HipBackend::new());
        let n = 12_345usize;
        let x = ctx.array_from_fn(n, |i| (i % 3) as f64).unwrap();
        let xv = x.view();
        let s: f64 = ctx.parallel_reduce(n, &KernelProfile::dot(), move |i| xv.get(i));
        let expect: f64 = (0..n).map(|i| (i % 3) as f64).sum();
        assert_eq!(s, expect);
    }
}
