//! Runner integration tests: bit-identity of the sharded execution against
//! a single device, overlap accounting on the modeled clock, and
//! reshard-and-replay recovery when a rank's device dies mid-run.

use std::sync::Arc;

use racc_backend_cuda::CudaBackend;
use racc_core::{
    Backend, Context, FaultPlan, KernelProfile, RetryPolicy, SerialBackend, ThreadsBackend,
};
use racc_shard::{run_sharded, ShardApp, ShardError, ShardHandle, ShardOptions, Topology};

const PROFILE: KernelProfile = KernelProfile::new("diffuse", 3.0, 24.0, 8.0);

/// Toy 1D diffusion with Dirichlet ends: the canonical snapshot is one
/// value per slab, and every global cell `g` in `1..E-1` steps to
/// `0.5*c[g] + 0.25*(c[g-1] + c[g+1])` — the same expression whether the
/// interior kernel (on the device) or the boundary pass computes it, so
/// the field is bit-identical at any shard count.
struct Diffuse {
    extent: usize,
    steps: u64,
}

struct DiffState {
    /// Local field including ghosts.
    cur: Vec<f64>,
}

impl<B: Backend> ShardApp<B> for Diffuse {
    type State = DiffState;

    fn extent(&self) -> usize {
        self.extent
    }
    fn slab_len(&self) -> usize {
        1
    }
    fn radius(&self) -> usize {
        1
    }
    fn total_steps(&self) -> u64 {
        self.steps
    }
    fn initial(&self) -> Vec<f64> {
        (0..self.extent)
            .map(|i| ((i * 7919) % 101) as f64 * 0.013 + 1.0)
            .collect()
    }
    fn init(&self, _ctx: &Context<B>, shard: racc_shard::Shard, snapshot: &[f64]) -> DiffState {
        let cur = (0..shard.local_extent())
            .map(|i| snapshot[shard.global_of(i)])
            .collect();
        DiffState { cur }
    }

    fn step(
        &self,
        h: &mut ShardHandle<'_, B>,
        state: &mut DiffState,
        _step: u64,
    ) -> Result<(), ShardError> {
        let sh = h.shard();
        let (os, owned, n, r) = (sh.owned_start(), sh.owned(), sh.local_extent(), sh.radius);

        // Phase 1: post the owned edge slabs.
        let to_lo = (sh.ghosts_lo() > 0).then(|| state.cur[os..os + r].to_vec());
        let to_hi = (sh.ghosts_hi() > 0).then(|| state.cur[os + owned - r..os + owned].to_vec());
        h.post_halos(to_lo, to_hi)?;

        // Phase 2: interior kernel over owned cells whose stencil support
        // is local (global-edge cells are Dirichlet-fixed; ghost-adjacent
        // cells wait for phase 4).
        let lo_int = if sh.ghosts_lo() > 0 { os + r } else { 1 };
        let hi_int = if sh.ghosts_hi() > 0 {
            os + owned - r
        } else {
            os + owned - 1
        };
        let cur = &state.cur;
        let mut next = h.interior(|ctx| {
            let src = ctx.array_from(cur).unwrap();
            let dst = ctx.array_from(cur).unwrap();
            {
                let sv = src.view();
                let dv = dst.view_mut();
                ctx.parallel_for(n, &PROFILE, move |i| {
                    if i >= lo_int && i < hi_int {
                        dv.set(i, 0.5 * sv.get(i) + 0.25 * (sv.get(i - 1) + sv.get(i + 1)));
                    }
                });
            }
            ctx.to_host(&dst).unwrap()
        });

        // Phase 3: complete the exchange into the ghost slots.
        let (from_lo, from_hi) = h.recv_halos()?;
        if let Some(d) = from_lo {
            state.cur[..r].copy_from_slice(&d);
        }
        if let Some(d) = from_hi {
            state.cur[n - r..].copy_from_slice(&d);
        }

        // Phase 4: boundary cells read the fresh ghosts.
        h.boundary(|_ctx| {
            let c = &state.cur;
            if sh.ghosts_lo() > 0 {
                for i in os..os + r {
                    next[i] = 0.5 * c[i] + 0.25 * (c[i - 1] + c[i + 1]);
                }
            }
            if sh.ghosts_hi() > 0 {
                for i in os + owned - r..os + owned {
                    next[i] = 0.5 * c[i] + 0.25 * (c[i - 1] + c[i + 1]);
                }
            }
        });
        state.cur = next;
        Ok(())
    }

    fn dump(&self, _ctx: &Context<B>, shard: racc_shard::Shard, state: &DiffState) -> Vec<f64> {
        state.cur[shard.owned_start()..shard.owned_start() + shard.owned()].to_vec()
    }
}

fn run_serial(devices: usize, overlap: bool) -> racc_shard::ShardOutcome {
    run_sharded(
        Arc::new(Diffuse {
            extent: 24,
            steps: 10,
        }),
        ShardOptions::devices(devices)
            .overlap(overlap)
            .checkpoint_every(3),
        |_rank| Context::new(SerialBackend::new()),
    )
}

#[test]
fn sharded_runs_are_bit_identical_to_a_single_device() {
    let one = run_serial(1, true);
    for devices in [2, 3, 4] {
        let many = run_serial(devices, true);
        assert_eq!(many.devices, devices);
        assert_eq!(
            one.field, many.field,
            "sharding must never change values ({devices} devices)"
        );
    }
    // Overlap is a clock policy, never a value policy.
    let off = run_serial(3, false);
    assert_eq!(one.field, off.field);
}

#[test]
fn sharded_runs_are_bit_identical_across_backends() {
    let serial = run_serial(3, true);
    let threads = run_sharded(
        Arc::new(Diffuse {
            extent: 24,
            steps: 10,
        }),
        ShardOptions::devices(3).checkpoint_every(3),
        |_rank| Context::new(ThreadsBackend::with_threads(2)),
    );
    let cuda = run_sharded(
        Arc::new(Diffuse {
            extent: 24,
            steps: 10,
        }),
        ShardOptions::devices(3).checkpoint_every(3),
        |_rank| Context::new(CudaBackend::new()),
    );
    assert_eq!(serial.field, threads.field);
    assert_eq!(serial.field, cuda.field);
}

#[test]
fn devices_are_clamped_to_the_radius_cap() {
    // extent 24, radius 1: the cap is 24, but asking for more shards than
    // slabs must clamp rather than panic.
    let out = run_serial(64, true);
    assert_eq!(out.devices, 24);
    assert_eq!(out.field, run_serial(1, true).field);
}

#[test]
fn overlap_shortens_the_modeled_makespan_but_not_the_values() {
    let app = || {
        Arc::new(Diffuse {
            extent: 32,
            steps: 8,
        })
    };
    let factory = |_rank: usize| Context::new(CudaBackend::new());
    let on = run_sharded(app(), ShardOptions::devices(4).overlap(true), factory);
    let off = run_sharded(app(), ShardOptions::devices(4).overlap(false), factory);
    assert_eq!(on.field, off.field);
    assert!(on.makespan_ns() > 0, "modeled clock must move");
    assert!(
        on.makespan_ns() <= off.makespan_ns(),
        "overlap can only hide exchange time: {} vs {}",
        on.makespan_ns(),
        off.makespan_ns()
    );
    // Counters: every rank stepped and exchanged.
    for report in on.reports.iter().flatten() {
        assert_eq!(report.stats.steps, 8);
        assert_eq!(report.stats.halo_exchanges, 8);
        assert!(report.stats.halo_bytes > 0);
        assert_eq!(report.stats.reshards, 0);
        assert!(report.shard_clock_ns <= report.modeled_ns);
    }
}

#[test]
fn rank_death_reshards_replays_and_stays_bit_identical() {
    let app = || {
        Arc::new(Diffuse {
            extent: 24,
            steps: 10,
        })
    };
    let fault_free = run_sharded(
        app(),
        ShardOptions::devices(4).checkpoint_every(3),
        |_rank| Context::new(CudaBackend::new()),
    );

    // Rank 2's device dies at its 6th kernel launch (step 5, past the
    // step-3 checkpoint) with no retry budget: the launch panics, the rank
    // drops off the world, and the survivors reshard.
    let doomed = 2usize;
    let chaotic = run_sharded(
        app(),
        ShardOptions::devices(4).checkpoint_every(3),
        move |rank| {
            if rank == doomed {
                Context::builder(CudaBackend::new())
                    .chaos(FaultPlan::parse("launch:nth-6").unwrap())
                    .retry(RetryPolicy::none())
                    .build()
            } else {
                Context::new(CudaBackend::new())
            }
        },
    );

    assert_eq!(
        fault_free.field, chaotic.field,
        "recovery must be bit-identical to the fault-free run"
    );
    assert_eq!(chaotic.survivors(), 3);
    assert!(
        chaotic.reports[doomed].is_none(),
        "the dead rank reports nothing"
    );
    for report in chaotic.reports.iter().flatten() {
        assert!(report.epochs >= 1, "survivors must have resharded");
        assert_eq!(report.stats.reshards, report.epochs as u64);
        assert!(
            report.stats.replayed_steps >= 1,
            "death past a checkpoint must replay at least one step"
        );
    }
}

#[test]
fn death_before_any_checkpoint_replays_from_the_initial_state() {
    let app = || {
        Arc::new(Diffuse {
            extent: 16,
            steps: 6,
        })
    };
    let fault_free = run_sharded(
        app(),
        ShardOptions::devices(3).checkpoint_every(0),
        |_rank| Context::new(CudaBackend::new()),
    );
    let chaotic = run_sharded(
        app(),
        ShardOptions::devices(3).checkpoint_every(0),
        move |rank| {
            if rank == 0 {
                Context::builder(CudaBackend::new())
                    .chaos(FaultPlan::parse("launch:nth-4").unwrap())
                    .retry(RetryPolicy::none())
                    .build()
            } else {
                Context::new(CudaBackend::new())
            }
        },
    );
    assert_eq!(fault_free.field, chaotic.field);
    assert_eq!(chaotic.survivors(), 2);
    let report = chaotic.reports.iter().flatten().next().unwrap();
    assert!(
        report.stats.replayed_steps >= 3,
        "everything replays from step 0"
    );
}

/// A tiny app exercising the app-level allgather: each shard contributes
/// its own lower bound, and every rank must see every contribution in
/// shard-index order.
struct GatherProbe;

impl ShardApp<SerialBackend> for GatherProbe {
    type State = Vec<f64>;

    fn extent(&self) -> usize {
        9
    }
    fn slab_len(&self) -> usize {
        1
    }
    fn radius(&self) -> usize {
        1
    }
    fn total_steps(&self) -> u64 {
        2
    }
    fn topology(&self) -> Topology {
        Topology::Periodic
    }
    fn initial(&self) -> Vec<f64> {
        vec![0.0; 9]
    }
    fn init(
        &self,
        _ctx: &Context<SerialBackend>,
        shard: racc_shard::Shard,
        _s: &[f64],
    ) -> Vec<f64> {
        vec![shard.lo as f64; shard.owned()]
    }
    fn step(
        &self,
        h: &mut ShardHandle<'_, SerialBackend>,
        state: &mut Vec<f64>,
        _step: u64,
    ) -> Result<(), ShardError> {
        let sh = h.shard();
        // Periodic: both sides always have a neighbor.
        let to_lo = Some(state[..sh.radius].to_vec());
        let to_hi = Some(state[state.len() - sh.radius..].to_vec());
        h.post_halos(to_lo, to_hi)?;
        let parts = h.allgather(vec![sh.lo as f64])?;
        let bounds: Vec<f64> = parts.into_iter().map(|p| p[0]).collect();
        let mut sorted = bounds.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(bounds, sorted, "allgather must return shard-index order");
        let _ = h.recv_halos()?;
        Ok(())
    }
    fn dump(
        &self,
        _ctx: &Context<SerialBackend>,
        _shard: racc_shard::Shard,
        state: &Vec<f64>,
    ) -> Vec<f64> {
        state.clone()
    }
}

#[test]
fn allgather_and_periodic_halos_work_at_any_shard_count() {
    for devices in [1, 2, 3] {
        let out = run_sharded(
            Arc::new(GatherProbe),
            ShardOptions::devices(devices),
            |_rank| Context::new(SerialBackend::new()),
        );
        assert_eq!(out.devices, devices);
        assert_eq!(out.field.len(), 9);
    }
}

#[test]
fn status_heartbeats_cost_o_n_on_the_ring_not_all_to_all() {
    // 10 steps with checkpoints every 4 -> 2 checkpoint steps (which sync
    // all-to-all and skip the ping) and 8 heartbeat steps. On the ring
    // each rank pings exactly its two index neighbours — one at N = 2,
    // where both directions collapse onto the same peer — independent of
    // world size; the old all-to-all sent N - 1 per rank per step.
    for devices in [2usize, 3, 4, 6] {
        let out = run_sharded(
            Arc::new(Diffuse {
                extent: 24,
                steps: 10,
            }),
            ShardOptions::devices(devices).checkpoint_every(4),
            |_rank| Context::new(SerialBackend::new()),
        );
        let per_rank = if devices == 2 { 8 } else { 16 };
        for report in out.reports.iter().flatten() {
            assert_eq!(report.stats.steps, 10);
            assert_eq!(report.stats.checkpoints, 2);
            assert_eq!(
                report.stats.heartbeats, per_rank,
                "ring heartbeat must send 2 per status step per rank ({devices} devices)"
            );
        }
        let total: u64 = out
            .reports
            .iter()
            .flatten()
            .map(|r| r.stats.heartbeats)
            .sum();
        assert_eq!(total, per_rank * devices as u64);
    }
}
