//! Domain decomposition: contiguous block split of the outermost axis.
//!
//! The planner splits the *outermost* axis of a 1D/2D/3D iteration space
//! into near-equal contiguous blocks, one per simulated device. Apps map
//! the split to their own layout through a "slab": everything at one index
//! of the split axis (an `n × n` plane of a 3D field, one `Q × s` lattice
//! row of the D2Q9 LBM, one tile of CG sites). The declared stencil
//! `radius` is the halo width in slabs: every shard needs the `radius`
//! slabs on each side of its owned range, refreshed each step by the
//! runner's halo exchange.

/// How the split axis behaves at the global ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Topology {
    /// No wraparound: the first and last shard have one-sided halos and
    /// the app's own boundary condition handles the global edges.
    #[default]
    Open,
    /// The axis wraps: every shard has two neighbors (possibly itself when
    /// only one shard exists).
    Periodic,
}

/// One shard of the decomposition: a contiguous owned range of the split
/// axis, plus the halo geometry derived from the stencil radius.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Shard index in `0..count`.
    pub index: usize,
    /// Number of shards in this epoch's plan.
    pub count: usize,
    /// First owned slab (global index).
    pub lo: usize,
    /// One past the last owned slab (global index).
    pub hi: usize,
    /// Halo width in slabs.
    pub radius: usize,
    /// Global extent of the split axis.
    pub extent: usize,
    /// End behavior of the split axis.
    pub topology: Topology,
}

impl Shard {
    /// Owned slabs.
    pub fn owned(&self) -> usize {
        self.hi - self.lo
    }

    /// The shard index of the lower neighbor, if any.
    pub fn lo_neighbor(&self) -> Option<usize> {
        match self.topology {
            Topology::Open => (self.index > 0).then(|| self.index - 1),
            Topology::Periodic => Some((self.index + self.count - 1) % self.count),
        }
    }

    /// The shard index of the upper neighbor, if any.
    pub fn hi_neighbor(&self) -> Option<usize> {
        match self.topology {
            Topology::Open => (self.index + 1 < self.count).then_some(self.index + 1),
            Topology::Periodic => Some((self.index + 1) % self.count),
        }
    }

    /// Ghost slabs below the owned range (`radius` when a lower neighbor
    /// exists, else 0).
    pub fn ghosts_lo(&self) -> usize {
        if self.lo_neighbor().is_some() {
            self.radius
        } else {
            0
        }
    }

    /// Ghost slabs above the owned range.
    pub fn ghosts_hi(&self) -> usize {
        if self.hi_neighbor().is_some() {
            self.radius
        } else {
            0
        }
    }

    /// Local slab count including ghosts.
    pub fn local_extent(&self) -> usize {
        self.owned() + self.ghosts_lo() + self.ghosts_hi()
    }

    /// The local index of the first *owned* slab (ghosts come first).
    pub fn owned_start(&self) -> usize {
        self.ghosts_lo()
    }

    /// Map a local slab index (ghosts included) to its global slab index.
    pub fn global_of(&self, local: usize) -> usize {
        debug_assert!(local < self.local_extent());
        let signed = self.lo as isize + local as isize - self.ghosts_lo() as isize;
        match self.topology {
            Topology::Open => {
                debug_assert!(signed >= 0 && (signed as usize) < self.extent);
                signed as usize
            }
            Topology::Periodic => signed.rem_euclid(self.extent as isize) as usize,
        }
    }
}

/// The full decomposition for one epoch: `shards[i]` covers a contiguous
/// block, and the blocks tile `0..extent` exactly, in index order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    shards: Vec<Shard>,
}

impl ShardPlan {
    /// Split `extent` slabs over `count` shards with near-equal contiguous
    /// blocks (the remainder spreads over the first shards, matching
    /// `racc-comm`'s scatter). Panics if any shard would own fewer slabs
    /// than the halo radius — clamp `count` with [`ShardPlan::max_count`]
    /// first.
    pub fn split(extent: usize, count: usize, radius: usize, topology: Topology) -> ShardPlan {
        assert!(count >= 1, "at least one shard");
        assert!(extent >= count, "more shards than slabs");
        let base = extent / count;
        let rem = extent % count;
        assert!(
            count == 1 || base >= radius.max(1),
            "shards must own at least the halo radius ({base} < {radius})"
        );
        let shards = (0..count)
            .map(|i| {
                let lo = i * base + i.min(rem);
                let hi = lo + base + usize::from(i < rem);
                Shard {
                    index: i,
                    count,
                    lo,
                    hi,
                    radius,
                    extent,
                    topology,
                }
            })
            .collect();
        ShardPlan { shards }
    }

    /// The largest shard count for which every shard still owns at least
    /// `radius` slabs (so halos only ever come from immediate neighbors).
    pub fn max_count(extent: usize, radius: usize) -> usize {
        (extent / radius.max(1)).max(1)
    }

    /// All shards, in index order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Number of shards.
    pub fn count(&self) -> usize {
        self.shards.len()
    }

    /// The shard at `index`.
    pub fn shard(&self, index: usize) -> Shard {
        self.shards[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_tile_the_extent_exactly() {
        for extent in [7usize, 16, 48, 97] {
            for count in 1..=extent.min(9) {
                let plan = ShardPlan::split(extent, count, 1, Topology::Open);
                assert_eq!(plan.count(), count);
                let mut next = 0;
                for (i, s) in plan.shards().iter().enumerate() {
                    assert_eq!(s.index, i);
                    assert_eq!(s.lo, next, "contiguous blocks");
                    assert!(s.owned() >= 1);
                    next = s.hi;
                }
                assert_eq!(next, extent, "blocks cover the axis");
                // Near-equal: sizes differ by at most one slab.
                let sizes: Vec<usize> = plan.shards().iter().map(|s| s.owned()).collect();
                let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
                assert!(max - min <= 1);
            }
        }
    }

    #[test]
    fn open_topology_has_one_sided_edges() {
        let plan = ShardPlan::split(12, 3, 1, Topology::Open);
        let first = plan.shard(0);
        let mid = plan.shard(1);
        let last = plan.shard(2);
        assert_eq!(first.lo_neighbor(), None);
        assert_eq!(first.hi_neighbor(), Some(1));
        assert_eq!(first.ghosts_lo(), 0);
        assert_eq!(first.ghosts_hi(), 1);
        assert_eq!(mid.local_extent(), 4 + 2);
        assert_eq!(mid.owned_start(), 1);
        assert_eq!(last.hi_neighbor(), None);
        // Local-to-global mapping skips the ghost offset.
        assert_eq!(mid.global_of(0), 3); // lower ghost = neighbor's last slab
        assert_eq!(mid.global_of(1), 4); // first owned
        assert_eq!(mid.global_of(5), 8); // upper ghost
    }

    #[test]
    fn periodic_topology_wraps_neighbors_and_globals() {
        let plan = ShardPlan::split(12, 3, 1, Topology::Periodic);
        let first = plan.shard(0);
        let last = plan.shard(2);
        assert_eq!(first.lo_neighbor(), Some(2));
        assert_eq!(last.hi_neighbor(), Some(0));
        assert_eq!(first.ghosts_lo(), 1);
        assert_eq!(first.global_of(0), 11, "lower ghost wraps to the end");
        assert_eq!(
            last.global_of(last.local_extent() - 1),
            0,
            "upper ghost wraps to the start"
        );
    }

    #[test]
    fn single_shard_owns_everything_without_ghosts_when_open() {
        let plan = ShardPlan::split(10, 1, 2, Topology::Open);
        let s = plan.shard(0);
        assert_eq!((s.lo, s.hi), (0, 10));
        assert_eq!(s.local_extent(), 10);
        assert_eq!(s.owned_start(), 0);
        assert_eq!(s.lo_neighbor(), None);
    }

    #[test]
    fn max_count_guards_the_radius_invariant() {
        assert_eq!(ShardPlan::max_count(48, 1), 48);
        assert_eq!(ShardPlan::max_count(48, 2), 24);
        assert_eq!(
            ShardPlan::max_count(3, 4),
            1,
            "radius larger than extent: single shard only"
        );
        assert_eq!(ShardPlan::max_count(5, 0), 5);
        // Splitting at the cap keeps every shard's owned >= radius.
        let plan = ShardPlan::split(9, ShardPlan::max_count(9, 2).min(4), 2, Topology::Open);
        assert!(plan.shards().iter().all(|s| s.owned() >= 2));
    }

    #[test]
    #[should_panic(expected = "at least the halo radius")]
    fn undersized_shards_are_rejected() {
        ShardPlan::split(8, 8, 2, Topology::Open);
    }
}
