//! The sharded step driver: overlapped halo exchange, lockstep status,
//! replicated checkpoints, and reshard-and-replay recovery.
//!
//! # Step protocol
//!
//! Every rank drives one shard through the same four-phase step:
//!
//! 1. **post halo sends** — pack the owned edge slabs and send them to the
//!    neighbors (buffered, non-blocking);
//! 2. **interior launch** — the kernel over every site whose full stencil
//!    support is owned, on the device stream, while the halos are in
//!    flight;
//! 3. **complete halo recv** — receive the neighbors' edge slabs into the
//!    ghost regions (timeout-guarded);
//! 4. **boundary launch** — the kernel over the remaining sites, which
//!    read the freshly received ghosts.
//!
//! On the modeled clock this is exactly the stream-overlap rule of
//! `examples/stream_overlap.rs`: the exchange (pack/unpack kernels and
//! transfers) and the interior launch proceed concurrently, so the step
//! costs `max(interior, exchange) + boundary` — the serialized cost with
//! overlap disabled is `interior + exchange + boundary`. The comm
//! substrate itself is functional (unclocked, like `racc-comm`), so the
//! exchange side of the clock is the device-visible work: packing,
//! unpacking, and the staging transfers.
//!
//! # Failure detection and recovery
//!
//! After every non-checkpoint step each rank runs a **ring heartbeat**: a
//! bidirectional status exchange with its two neighbors on the
//! shard-index ring (`owners[(i ± 1) mod N]`). That is O(N) messages per
//! step world-wide — 2 per rank at N ≥ 3 (the `heartbeats` counter) —
//! where the previous all-to-all status cost O(N²). The exchange still
//! enforces lockstep: a rank only finishes step `s` after its ring
//! neighbors reach the end of step `s`, so adjacent skew is bounded at
//! one step and every message pair that actually communicates (halos
//! between grid neighbors, which are ring-adjacent by construction)
//! stays exact-step matched. Replicated checkpoints remain all-to-all —
//! they double as the global barrier that re-zeros skew across the ring.
//!
//! Detection is now two-phase but still bounded by one step plus one ring
//! hop per rank: a rank that died mid-step (its device exhausted the
//! chaos retry budget) stops sending, its ring neighbors see
//! `Disconnected`/`Timeout` at their next receive, and each survivor
//! entering recovery broadcasts `Recover` to *every* live peer. A rank
//! waiting on a heartbeat that will never come instead pops that
//! neighbor's `Recover` from the same per-pair FIFO queue, joins the
//! recovery, and re-broadcasts — so the signal chains around the ring
//! without any rank polling non-neighbors in the steady state. Every
//! receive anywhere in the protocol is timeout-guarded; the runner never
//! calls the world barrier, which would deadlock on a dead rank.
//!
//! Recovery is reshard-and-replay: survivors exchange `Recover` messages
//! (which also flush stale in-flight traffic, thanks to per-pair FIFO
//! order), agree on the surviving set and the last replicated checkpoint,
//! re-split the domain over the survivors, rebuild their local state from
//! the checkpoint, and replay. Because every kernel is deterministic and
//! elementwise over the same global sites, the final field is
//! bit-identical to the fault-free run.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use racc_comm::{CommError, Rank, World};
use racc_core::{Backend, Context, ShardCounters, ShardStats};

use crate::plan::{Shard, ShardPlan, Topology};

/// Errors surfaced to a sharded app's `step`. Apps propagate them (`?`);
/// the runner reacts by entering recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A communication failure: a peer died (`Disconnected`) or went
    /// silent past a deadline (`Timeout`).
    Comm(CommError),
    /// A surviving peer detected a death first and requested recovery.
    RecoveryRequested,
}

impl From<CommError> for ShardError {
    fn from(e: CommError) -> Self {
        ShardError::Comm(e)
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Comm(e) => write!(f, "shard communication failed: {e}"),
            ShardError::RecoveryRequested => write!(f, "a peer requested recovery"),
        }
    }
}

impl std::error::Error for ShardError {}

/// Every message of the shard protocol. One enum so every receive can
/// dispatch on whatever arrives — in particular, a `Recover` can show up
/// wherever a halo/status/gather was expected.
enum Msg {
    /// A neighbor's packed edge slabs for one step. `hi_edge` says which
    /// of the *sender's* edges this is — necessary because both of a
    /// rank's halos can come from the same peer (two shards on a periodic
    /// axis), where arrival order alone cannot say which ghost side a
    /// message fills.
    Halo {
        epoch: u32,
        step: u64,
        hi_edge: bool,
        data: Vec<f64>,
    },
    /// End-of-step liveness + lockstep marker.
    Status { epoch: u32, step: u64 },
    /// One shard's contribution to a replicated checkpoint.
    Ckpt {
        epoch: u32,
        step: u64,
        index: usize,
        data: Vec<f64>,
    },
    /// One shard's contribution to an app-level allgather (CG dots).
    Gather {
        epoch: u32,
        step: u64,
        seq: u32,
        index: usize,
        data: Vec<f64>,
    },
    /// Recovery announcement: "I observed a death; reshard at `epoch`,
    /// replaying from my checkpoint at `ckpt_step`."
    Recover {
        epoch: u32,
        rank: usize,
        ckpt_step: u64,
    },
}

/// Options of one sharded run.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Simulated devices (= ranks = shards). Clamped to
    /// [`ShardPlan::max_count`] for the app's extent/radius.
    pub devices: usize,
    /// Overlap halo exchange with interior compute on the modeled clock
    /// (the A/B switch of the scaling tables). Values never change.
    pub overlap: bool,
    /// Steps between replicated checkpoints (0 = only the initial state,
    /// so recovery replays from step 0).
    pub checkpoint_every: u64,
    /// Deadline for each halo/status/gather receive. Generous by default:
    /// rank threads time-slice on small hosts.
    pub step_timeout: Duration,
    /// Deadline for each receive inside the recovery drain.
    pub recover_timeout: Duration,
}

impl Default for ShardOptions {
    fn default() -> Self {
        let cfg = racc_core::RuntimeConfig::from_env();
        ShardOptions {
            devices: cfg.shards.unwrap_or(2),
            overlap: cfg.shard_overlap.unwrap_or(true),
            checkpoint_every: 4,
            step_timeout: Duration::from_secs(60),
            recover_timeout: Duration::from_secs(30),
        }
    }
}

impl ShardOptions {
    /// Options for `devices` shards, everything else default.
    pub fn devices(devices: usize) -> Self {
        ShardOptions {
            devices,
            ..ShardOptions::default()
        }
    }

    /// Toggle modeled overlap of exchange and interior compute.
    pub fn overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Set the replicated-checkpoint interval.
    pub fn checkpoint_every(mut self, steps: u64) -> Self {
        self.checkpoint_every = steps;
        self
    }
}

/// A domain-decomposed application the runner can drive: it declares the
/// split geometry, (re)builds per-shard state from a canonical global
/// snapshot, and advances one step through the [`ShardHandle`] phases.
///
/// The canonical snapshot is `extent * slab_len` values in slab-major
/// order; `dump` returns exactly the owned `owned() * slab_len` range, so
/// concatenating all shards' dumps in index order reproduces the global
/// snapshot — re-partitionable at *any* shard count, which is what makes
/// reshard-and-replay possible.
pub trait ShardApp<B: Backend>: Send + Sync + 'static {
    /// Per-shard device state.
    type State;

    /// Global extent of the split (outermost) axis, in slabs.
    fn extent(&self) -> usize;
    /// Snapshot values per slab.
    fn slab_len(&self) -> usize;
    /// Stencil radius = halo width in slabs.
    fn radius(&self) -> usize;
    /// Steps to run.
    fn total_steps(&self) -> u64;
    /// End behavior of the split axis.
    fn topology(&self) -> Topology {
        Topology::Open
    }
    /// The canonical global snapshot at step 0.
    fn initial(&self) -> Vec<f64>;
    /// Build this shard's device state from a canonical global snapshot
    /// (used at step 0 and again after every reshard).
    fn init(&self, ctx: &Context<B>, shard: Shard, snapshot: &[f64]) -> Self::State;
    /// Advance one step through the handle's phases (post → interior →
    /// recv → boundary).
    fn step(
        &self,
        h: &mut ShardHandle<'_, B>,
        state: &mut Self::State,
        step: u64,
    ) -> Result<(), ShardError>;
    /// The owned range of the canonical snapshot for this shard's state.
    fn dump(&self, ctx: &Context<B>, shard: Shard, state: &Self::State) -> Vec<f64>;
}

/// The per-rank driver handle: the device context, the comm endpoint, the
/// current shard geometry, and the overlap-accounted shard clock. Apps use
/// it inside `step` for the four phases and for app-level allgathers.
pub struct ShardHandle<'a, B: Backend> {
    ctx: &'a Context<B>,
    comm: &'a Rank,
    plan: ShardPlan,
    my_index: usize,
    /// `owners[shard index] -> world rank` for the current epoch.
    owners: Vec<usize>,
    epoch: u32,
    step: u64,
    gather_seq: u32,
    overlap: bool,
    step_timeout: Duration,
    recover_timeout: Duration,
    counters: Arc<ShardCounters>,
    /// `Recover` messages consumed while expecting something else:
    /// `world rank -> (epoch, ckpt_step)`. An entry implies that peer's
    /// queue is drained up to (and including) its `Recover`.
    recover_seen: BTreeMap<usize, (u32, u64)>,
    /// Halos posted to self (periodic topology with a self-neighbor).
    self_halo_lo: Option<Vec<f64>>,
    self_halo_hi: Option<Vec<f64>>,
    /// Current-step halos that arrived while expecting something else
    /// (e.g. the app allgathers before completing the halo receive):
    /// `(peer world rank, sender hi edge?, data)`. Consulted by
    /// `recv_halos` before touching the channels.
    pending_halos: Vec<(usize, bool, Vec<f64>)>,
    // Modeled-clock accounting for the current step.
    step_base_ns: u64,
    interior_ns: u64,
    boundary_ns: u64,
    shard_clock_ns: u64,
    step_halo_bytes: u64,
}

impl<'a, B: Backend> ShardHandle<'a, B> {
    /// The per-rank device context.
    pub fn ctx(&self) -> &'a Context<B> {
        self.ctx
    }

    /// This rank's shard in the current epoch's plan.
    pub fn shard(&self) -> Shard {
        self.plan.shard(self.my_index)
    }

    /// Shards in the current epoch (survivors after reshards).
    pub fn devices(&self) -> usize {
        self.plan.count()
    }

    /// The recovery epoch (0 until a reshard happens).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The overlap-accounted modeled clock of this shard so far.
    pub fn shard_clock_ns(&self) -> u64 {
        self.shard_clock_ns
    }

    fn world_rank_of(&self, shard_index: usize) -> usize {
        self.owners[shard_index]
    }

    fn my_world_rank(&self) -> usize {
        self.comm.rank()
    }

    /// Post the packed edge slabs to the neighbors (phase 1). `to_lo` goes
    /// to the lower neighbor, `to_hi` to the upper one; pass `None` for a
    /// side without a neighbor.
    pub fn post_halos(
        &mut self,
        to_lo: Option<Vec<f64>>,
        to_hi: Option<Vec<f64>>,
    ) -> Result<(), ShardError> {
        let shard = self.shard();
        let sides = [
            (shard.lo_neighbor(), to_lo, false),
            (shard.hi_neighbor(), to_hi, true),
        ];
        for (neighbor, payload, hi_edge) in sides {
            let Some(data) = payload else {
                debug_assert!(neighbor.is_none(), "payload for a missing neighbor side");
                continue;
            };
            let neighbor = neighbor.expect("halo posted to a missing neighbor");
            self.step_halo_bytes += (data.len() * std::mem::size_of::<f64>()) as u64;
            if neighbor == self.my_index {
                // Periodic with one shard: the neighbor is this shard.
                // Deliver locally; recv_halos picks it up.
                if hi_edge {
                    self.self_halo_hi = Some(data);
                } else {
                    self.self_halo_lo = Some(data);
                }
                continue;
            }
            let msg = Msg::Halo {
                epoch: self.epoch,
                step: self.step,
                hi_edge,
                data,
            };
            self.comm.send(self.world_rank_of(neighbor), msg)?;
        }
        Ok(())
    }

    /// Run the interior phase (phase 2): the closure's modeled cost can
    /// overlap the exchange on the shard clock.
    pub fn interior<R>(&mut self, f: impl FnOnce(&Context<B>) -> R) -> R {
        let t0 = self.ctx.modeled_ns();
        let out = f(self.ctx);
        self.interior_ns += self.ctx.modeled_ns() - t0;
        self.counters
            .interior_launches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        out
    }

    /// Complete the halo receive (phase 3): returns `(from_lo, from_hi)`
    /// edge slabs from the respective neighbors (`None` for a side without
    /// one). Timeout-guarded; a dead neighbor or a peer's recovery request
    /// surfaces as `Err` and sends this rank into recovery.
    #[allow(clippy::type_complexity)]
    pub fn recv_halos(&mut self) -> Result<(Option<Vec<f64>>, Option<Vec<f64>>), ShardError> {
        let shard = self.shard();
        let mut out: [Option<Vec<f64>>; 2] = [None, None];
        // What to wait for: my lo ghost is my lower neighbor's *hi* edge,
        // my hi ghost is my upper neighbor's *lo* edge. Both can come from
        // the same peer (two shards, periodic axis) — the `hi_edge` tag
        // disambiguates, not arrival order.
        let mut wants: Vec<(usize, bool, usize)> = Vec::new();
        if let Some(nb) = shard.lo_neighbor() {
            if nb == self.my_index {
                out[0] = self.self_halo_hi.take();
            } else {
                wants.push((self.world_rank_of(nb), true, 0));
            }
        }
        if let Some(nb) = shard.hi_neighbor() {
            if nb == self.my_index {
                out[1] = self.self_halo_lo.take();
            } else {
                wants.push((self.world_rank_of(nb), false, 1));
            }
        }
        // Drain anything an earlier expect loop stashed for this step.
        wants.retain(|&(peer, hi_edge, slot)| {
            if let Some(pos) = self
                .pending_halos
                .iter()
                .position(|&(p, h, _)| p == peer && h == hi_edge)
            {
                let (_, _, data) = self.pending_halos.remove(pos);
                self.step_halo_bytes += (data.len() * std::mem::size_of::<f64>()) as u64;
                out[slot] = Some(data);
                false
            } else {
                true
            }
        });
        while let Some(&(peer, _, _)) = wants.first() {
            match self.recv_msg(peer, self.step_timeout)? {
                Msg::Halo {
                    epoch,
                    step,
                    hi_edge,
                    data,
                } if epoch == self.epoch && step == self.step => {
                    let pos = wants
                        .iter()
                        .position(|&(p, h, _)| p == peer && h == hi_edge)
                        .expect("duplicate halo for one step/side");
                    let (_, _, slot) = wants.remove(pos);
                    self.step_halo_bytes += (data.len() * std::mem::size_of::<f64>()) as u64;
                    out[slot] = Some(data);
                }
                Msg::Halo { epoch, step, .. }
                | Msg::Status { epoch, step }
                | Msg::Ckpt { epoch, step, .. }
                | Msg::Gather { epoch, step, .. } => {
                    debug_assert!(self.is_stale(epoch, step));
                }
                Msg::Recover {
                    epoch,
                    rank,
                    ckpt_step,
                } => {
                    self.note_recover(rank, epoch, ckpt_step);
                    return Err(ShardError::RecoveryRequested);
                }
            }
        }
        if shard.lo_neighbor().is_some() || shard.hi_neighbor().is_some() {
            self.counters
                .halo_exchanges
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            self.counters
                .halo_bytes
                .fetch_add(self.step_halo_bytes, std::sync::atomic::Ordering::Relaxed);
        }
        let [lo, hi] = out;
        Ok((lo, hi))
    }

    /// Run the boundary phase (phase 4): charged after the exchange joins
    /// the shard clock, like a launch behind a stream event.
    pub fn boundary<R>(&mut self, f: impl FnOnce(&Context<B>) -> R) -> R {
        let t0 = self.ctx.modeled_ns();
        let out = f(self.ctx);
        self.boundary_ns += self.ctx.modeled_ns() - t0;
        self.counters
            .boundary_launches
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        out
    }

    /// App-level allgather (for distributed dot products): every shard
    /// contributes `data` and receives all contributions in shard-index
    /// order. Functional comm — contributes nothing to the modeled clock.
    pub fn allgather(&mut self, data: Vec<f64>) -> Result<Vec<Vec<f64>>, ShardError> {
        let seq = self.gather_seq;
        self.gather_seq += 1;
        let mut parts: Vec<Option<Vec<f64>>> = vec![None; self.plan.count()];
        for index in 0..self.plan.count() {
            if index == self.my_index {
                continue;
            }
            let msg = Msg::Gather {
                epoch: self.epoch,
                step: self.step,
                seq,
                index: self.my_index,
                data: data.clone(),
            };
            self.comm.send(self.world_rank_of(index), msg)?;
        }
        parts[self.my_index] = Some(data);
        for index in 0..self.plan.count() {
            if index == self.my_index {
                continue;
            }
            let (from_index, part) = self.expect_gather(self.world_rank_of(index), seq)?;
            debug_assert_eq!(from_index, index);
            parts[from_index] = Some(part);
        }
        Ok(parts.into_iter().map(|p| p.expect("all parts")).collect())
    }

    // ------------------------------------------------------------------
    // Receive dispatch
    // ------------------------------------------------------------------

    /// Receive the next protocol message from `peer` (world rank), bounded
    /// by `timeout`.
    fn recv_msg(&self, peer: usize, timeout: Duration) -> Result<Msg, ShardError> {
        Ok(self.comm.recv_timeout::<Msg>(peer, timeout)?)
    }

    /// True when `msg` is from a past epoch (stale pre-reshard traffic the
    /// sender emitted before it learned of the death) — safe to drop.
    fn is_stale(&self, epoch: u32, step: u64) -> bool {
        debug_assert!(
            epoch < self.epoch || (epoch == self.epoch && step <= self.step),
            "a peer ran ahead of lockstep (msg epoch {epoch} step {step}, \
             ours {} / {})",
            self.epoch,
            self.step
        );
        epoch < self.epoch || step < self.step
    }

    fn note_recover(&mut self, peer: usize, epoch: u32, ckpt_step: u64) {
        self.recover_seen.insert(peer, (epoch, ckpt_step));
    }

    fn expect_status(&mut self, peer: usize) -> Result<(), ShardError> {
        loop {
            match self.recv_msg(peer, self.step_timeout)? {
                Msg::Status { epoch, step } if epoch == self.epoch && step == self.step => {
                    return Ok(())
                }
                Msg::Halo {
                    epoch,
                    step,
                    hi_edge,
                    data,
                } if epoch == self.epoch && step == self.step => {
                    self.pending_halos.push((peer, hi_edge, data));
                }
                Msg::Halo { epoch, step, .. }
                | Msg::Status { epoch, step }
                | Msg::Ckpt { epoch, step, .. }
                | Msg::Gather { epoch, step, .. } => {
                    debug_assert!(self.is_stale(epoch, step));
                }
                Msg::Recover {
                    epoch,
                    rank,
                    ckpt_step,
                } => {
                    self.note_recover(rank, epoch, ckpt_step);
                    return Err(ShardError::RecoveryRequested);
                }
            }
        }
    }

    fn expect_ckpt(&mut self, peer: usize) -> Result<(usize, Vec<f64>), ShardError> {
        loop {
            match self.recv_msg(peer, self.step_timeout)? {
                Msg::Ckpt {
                    epoch,
                    step,
                    index,
                    data,
                } if epoch == self.epoch && step == self.step => return Ok((index, data)),
                Msg::Halo {
                    epoch,
                    step,
                    hi_edge,
                    data,
                } if epoch == self.epoch && step == self.step => {
                    self.pending_halos.push((peer, hi_edge, data));
                }
                Msg::Halo { epoch, step, .. }
                | Msg::Status { epoch, step }
                | Msg::Ckpt { epoch, step, .. }
                | Msg::Gather { epoch, step, .. } => {
                    debug_assert!(self.is_stale(epoch, step));
                }
                Msg::Recover {
                    epoch,
                    rank,
                    ckpt_step,
                } => {
                    self.note_recover(rank, epoch, ckpt_step);
                    return Err(ShardError::RecoveryRequested);
                }
            }
        }
    }

    fn expect_gather(&mut self, peer: usize, seq: u32) -> Result<(usize, Vec<f64>), ShardError> {
        loop {
            match self.recv_msg(peer, self.step_timeout)? {
                Msg::Gather {
                    epoch,
                    step,
                    seq: s,
                    index,
                    data,
                } if epoch == self.epoch && step == self.step && s == seq => {
                    return Ok((index, data))
                }
                Msg::Halo {
                    epoch,
                    step,
                    hi_edge,
                    data,
                } if epoch == self.epoch && step == self.step => {
                    self.pending_halos.push((peer, hi_edge, data));
                }
                Msg::Halo { epoch, step, .. }
                | Msg::Status { epoch, step }
                | Msg::Ckpt { epoch, step, .. }
                | Msg::Gather { epoch, step, .. } => {
                    debug_assert!(self.is_stale(epoch, step));
                }
                Msg::Recover {
                    epoch,
                    rank,
                    ckpt_step,
                } => {
                    self.note_recover(rank, epoch, ckpt_step);
                    return Err(ShardError::RecoveryRequested);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Driver internals
    // ------------------------------------------------------------------

    fn begin_step(&mut self, step: u64) {
        self.step = step;
        self.gather_seq = 0;
        // Anything still pending belongs to a finished step whose ghosts
        // the app never consumed; lockstep guarantees nothing here can be
        // for the step that is only now beginning.
        self.pending_halos.clear();
        self.step_base_ns = self.ctx.modeled_ns();
        self.interior_ns = 0;
        self.boundary_ns = 0;
        self.step_halo_bytes = 0;
    }

    /// Close the step: charge the overlap-accounted cost to the shard
    /// clock, then run the lockstep exchange — a status ping, or a
    /// replicated checkpoint when `dump` is provided (the checkpoint
    /// doubles as the status). Returns the assembled global snapshot when
    /// a checkpoint was taken.
    fn end_step(&mut self, dump: Option<Vec<f64>>) -> Result<Option<Vec<f64>>, ShardError> {
        let total_ns = self.ctx.modeled_ns() - self.step_base_ns;
        let exchange_ns = total_ns.saturating_sub(self.interior_ns + self.boundary_ns);
        let charged = if self.overlap {
            self.interior_ns.max(exchange_ns) + self.boundary_ns
        } else {
            total_ns
        };
        self.shard_clock_ns += charged;
        self.counters
            .steps
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        #[cfg(feature = "trace")]
        self.record_step_spans(charged, exchange_ns);

        let result = if let Some(data) = dump {
            let snapshot = self.exchange_ckpt(data)?;
            self.counters
                .checkpoints
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Some(snapshot)
        } else {
            self.exchange_status()?;
            None
        };
        Ok(result)
    }

    #[cfg(feature = "trace")]
    fn record_step_spans(&self, charged_ns: u64, exchange_ns: u64) {
        if let Some(recorder) = self.ctx.tracer() {
            if recorder.is_enabled() {
                recorder.record(
                    racc_core::trace::Span::new(
                        self.ctx.key(),
                        racc_core::trace::ConstructKind::Shard,
                        "step",
                    )
                    .dims(self.step, self.my_index as u64, self.epoch as u64)
                    .geometry(self.my_world_rank() as u64, self.plan.count() as u64)
                    .modeled(charged_ns),
                );
                if self.step_halo_bytes > 0 {
                    recorder.record(
                        racc_core::trace::Span::new(
                            self.ctx.key(),
                            racc_core::trace::ConstructKind::Halo,
                            "exchange",
                        )
                        .dims(self.step, self.my_index as u64, self.epoch as u64)
                        .geometry(self.my_world_rank() as u64, self.plan.count() as u64)
                        .payload(self.step_halo_bytes)
                        .modeled(exchange_ns),
                    );
                }
            }
        }
    }

    #[cfg(feature = "trace")]
    fn record_reshard_span(&self) {
        if let Some(recorder) = self.ctx.tracer() {
            if recorder.is_enabled() {
                recorder.record(
                    racc_core::trace::Span::new(
                        self.ctx.key(),
                        racc_core::trace::ConstructKind::Shard,
                        "reshard",
                    )
                    .dims(self.step, self.my_index as u64, self.epoch as u64)
                    .geometry(self.my_world_rank() as u64, self.plan.count() as u64),
                );
            }
        }
    }

    fn live_peers(&self) -> Vec<usize> {
        self.owners
            .iter()
            .copied()
            .filter(|&r| r != self.my_world_rank())
            .collect()
    }

    /// World ranks adjacent to this rank on the shard-index ring — the
    /// heartbeat peers. Deduped at N = 2 (both directions are the same
    /// rank); empty when running alone.
    fn ring_peers(&self) -> Vec<usize> {
        let count = self.owners.len();
        if count <= 1 {
            return Vec::new();
        }
        let prev = self.owners[(self.my_index + count - 1) % count];
        let next = self.owners[(self.my_index + 1) % count];
        if prev == next {
            vec![prev]
        } else {
            vec![prev, next]
        }
    }

    /// The ring heartbeat: O(N) status messages world-wide per step where
    /// the old all-to-all cost O(N²). Lockstep with both ring neighbors
    /// transitively bounds skew everywhere it matters; death detection
    /// chains around the ring via the `Recover` broadcast (module docs).
    fn exchange_status(&mut self) -> Result<(), ShardError> {
        let peers = self.ring_peers();
        for &peer in &peers {
            self.comm.send(
                peer,
                Msg::Status {
                    epoch: self.epoch,
                    step: self.step,
                },
            )?;
        }
        self.counters
            .heartbeats
            .fetch_add(peers.len() as u64, std::sync::atomic::Ordering::Relaxed);
        for &peer in &peers {
            self.expect_status(peer)?;
        }
        Ok(())
    }

    /// Replicated checkpoint: everyone sends their owned dump to everyone,
    /// and every rank assembles the identical global snapshot.
    fn exchange_ckpt(&mut self, data: Vec<f64>) -> Result<Vec<f64>, ShardError> {
        let mut parts: Vec<Option<Vec<f64>>> = vec![None; self.plan.count()];
        for peer in self.live_peers() {
            self.comm.send(
                peer,
                Msg::Ckpt {
                    epoch: self.epoch,
                    step: self.step,
                    index: self.my_index,
                    data: data.clone(),
                },
            )?;
        }
        parts[self.my_index] = Some(data);
        for peer in self.live_peers() {
            let (index, part) = self.expect_ckpt(peer)?;
            parts[index] = Some(part);
        }
        let mut snapshot = Vec::new();
        for part in parts {
            snapshot.extend(part.expect("every shard contributed"));
        }
        Ok(snapshot)
    }

    /// Reshard after an observed failure. Announces `Recover` to every
    /// current peer, drains each peer's queue up to its own `Recover`
    /// (per-pair FIFO makes that the stale-message flush), marks peers
    /// that disconnect or stay silent as dead, re-splits the domain over
    /// the sorted survivors, and returns the agreed replay step (the
    /// minimum announced checkpoint — identical everywhere, since
    /// checkpoints are replicated in lockstep).
    fn recover(&mut self, my_ckpt_step: u64) -> u64 {
        let target_epoch = self.epoch + 1;
        let me = self.my_world_rank();
        for peer in self.live_peers() {
            // Dead peers fail the send; that is how we learn.
            let _ = self.comm.send(
                peer,
                Msg::Recover {
                    epoch: target_epoch,
                    rank: me,
                    ckpt_step: my_ckpt_step,
                },
            );
        }
        let mut alive = vec![me];
        let mut replay_step = my_ckpt_step;
        for peer in self.live_peers() {
            if let Some((epoch, ckpt)) = self.recover_seen.remove(&peer) {
                if epoch >= target_epoch {
                    alive.push(peer);
                    replay_step = replay_step.min(ckpt);
                }
                continue;
            }
            loop {
                match self.recv_msg(peer, self.recover_timeout) {
                    Ok(Msg::Recover {
                        epoch, ckpt_step, ..
                    }) if epoch >= target_epoch => {
                        alive.push(peer);
                        replay_step = replay_step.min(ckpt_step);
                        break;
                    }
                    // Anything older than the peer's `Recover` is stale
                    // traffic from before it observed the death; FIFO
                    // order means consuming up to the `Recover` IS the
                    // flush.
                    Ok(_) => continue,
                    // Disconnected: dead. Timeout: wedged past the
                    // deadline — treated as dead (single-failure scope).
                    Err(_) => break,
                }
            }
        }
        alive.sort_unstable();
        let shard = self.shard();
        let count = alive
            .len()
            .min(ShardPlan::max_count(shard.extent, shard.radius));
        self.epoch = target_epoch;
        self.owners = alive;
        self.my_index = self
            .owners
            .iter()
            .position(|&r| r == me)
            .expect("self is a survivor");
        // More survivors than the radius cap can host shards never happens
        // in practice (the initial clamp already enforced it).
        debug_assert_eq!(count, self.owners.len());
        self.plan = ShardPlan::split(shard.extent, count, shard.radius, shard.topology);
        self.recover_seen.clear();
        self.self_halo_lo = None;
        self.self_halo_hi = None;
        self.pending_halos.clear();
        self.counters
            .reshards
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        #[cfg(feature = "trace")]
        self.record_reshard_span();
        replay_step
    }
}

/// What one rank reports after a sharded run.
#[derive(Debug, Clone)]
pub struct RankReport {
    /// World rank.
    pub rank: usize,
    /// Overlap-accounted modeled clock of this shard (the run's modeled
    /// makespan is the max over ranks).
    pub shard_clock_ns: u64,
    /// Raw serialized modeled time of the rank's context (every launch
    /// and transfer, no overlap credit).
    pub modeled_ns: u64,
    /// Shard counters of the rank's context (`ctx.stats().shard`).
    pub stats: ShardStats,
    /// Recovery epoch the rank finished in (0 = no reshard happened).
    pub epochs: u32,
}

/// The result of a sharded run.
#[derive(Debug, Clone)]
pub struct ShardOutcome {
    /// The final canonical global snapshot (assembled from the surviving
    /// shards' dumps).
    pub field: Vec<f64>,
    /// Per-world-rank reports; `None` for ranks that died mid-run.
    pub reports: Vec<Option<RankReport>>,
    /// Devices the run launched with (after the radius clamp).
    pub devices: usize,
}

impl ShardOutcome {
    /// The run's modeled makespan: the max shard clock over survivors.
    pub fn makespan_ns(&self) -> u64 {
        self.reports
            .iter()
            .flatten()
            .map(|r| r.shard_clock_ns)
            .max()
            .unwrap_or(0)
    }

    /// Ranks that finished.
    pub fn survivors(&self) -> usize {
        self.reports.iter().flatten().count()
    }
}

enum RankResult {
    Done {
        field: Vec<f64>,
        report: RankReport,
    },
    /// The rank's device died (exhausted retries panic inside a launch);
    /// the panic is caught at the rank body so the world keeps running.
    Died,
}

/// Run `app` sharded over `opts.devices` simulated devices, one rank (OS
/// thread) per device, each with its own context from `factory(rank)`.
///
/// Returns the final global field (bit-identical to a single-device run of
/// the same app — sharding never changes values, only the split) plus
/// per-rank reports. A rank whose device dies mid-run (e.g. under
/// `racc-chaos` injection with retries exhausted) is dropped; the
/// survivors reshard and replay from the last replicated checkpoint, and
/// the field is still bit-identical to the fault-free run.
pub fn run_sharded<B, A>(
    app: Arc<A>,
    opts: ShardOptions,
    factory: impl Fn(usize) -> Context<B> + Send + Sync + 'static,
) -> ShardOutcome
where
    B: Backend,
    A: ShardApp<B>,
{
    let devices = opts
        .devices
        .clamp(1, ShardPlan::max_count(app.extent(), app.radius()))
        .min(app.extent());
    let opts = ShardOptions { devices, ..opts };
    let run_app = Arc::clone(&app);
    let results: Vec<RankResult> = World::run(devices, move |rank| {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            rank_main(&*run_app, &opts, &factory, rank)
        }));
        // A panic here is the simulated device dying (injected faults
        // exhausted the retry policy). Returning normally drops this
        // rank's channel endpoints, which is exactly how the survivors
        // detect the death.
        outcome.unwrap_or(RankResult::Died)
    });
    let mut field = None;
    let mut reports = Vec::with_capacity(results.len());
    for result in results {
        match result {
            RankResult::Done { field: f, report } => {
                // Survivors assembled identical snapshots; keep one.
                field.get_or_insert(f);
                reports.push(Some(report));
            }
            RankResult::Died => reports.push(None),
        }
    }
    ShardOutcome {
        field: field.expect("at least one rank survives"),
        reports,
        devices,
    }
}

fn rank_main<B, A>(
    app: &A,
    opts: &ShardOptions,
    factory: &(impl Fn(usize) -> Context<B> + Send + Sync),
    rank: &Rank,
) -> RankResult
where
    B: Backend,
    A: ShardApp<B>,
{
    let ctx = factory(rank.rank());
    let plan = ShardPlan::split(app.extent(), rank.size(), app.radius(), app.topology());
    let mut handle = ShardHandle {
        ctx: &ctx,
        comm: rank,
        my_index: rank.rank(),
        owners: (0..rank.size()).collect(),
        plan,
        epoch: 0,
        step: 0,
        gather_seq: 0,
        overlap: opts.overlap,
        step_timeout: opts.step_timeout,
        recover_timeout: opts.recover_timeout,
        counters: Arc::clone(ctx.shard_counters()),
        recover_seen: BTreeMap::new(),
        self_halo_lo: None,
        self_halo_hi: None,
        pending_halos: Vec::new(),
        step_base_ns: 0,
        interior_ns: 0,
        boundary_ns: 0,
        shard_clock_ns: 0,
        step_halo_bytes: 0,
    };

    // Checkpoint history, newest last. Two entries suffice: a death during
    // a checkpoint exchange can leave ranks one checkpoint apart (a rank
    // that already collected every contribution advances; one still
    // waiting does not), and recovery agrees on the *minimum* announced
    // step — which the advanced rank only still holds via its previous
    // entry. Lockstep bounds the divergence to exactly one boundary.
    let mut ckpts: Vec<(u64, Vec<f64>)> = vec![(0, app.initial())];
    let mut state = app.init(&ctx, handle.shard(), &ckpts[0].1);
    let mut step: u64 = 0;
    let total = app.total_steps();

    loop {
        if step >= total {
            // Final assembly: gather every shard's dump. A death here goes
            // through the same recovery (replaying any steps past the last
            // checkpoint).
            handle.begin_step(step);
            let dump = app.dump(&ctx, handle.shard(), &state);
            match handle.exchange_ckpt(dump) {
                Ok(field) => {
                    let report = RankReport {
                        rank: rank.rank(),
                        shard_clock_ns: handle.shard_clock_ns,
                        modeled_ns: ctx.modeled_ns(),
                        stats: ctx.stats().shard.unwrap_or_default(),
                        epochs: handle.epoch,
                    };
                    return RankResult::Done { field, report };
                }
                Err(_) => {
                    step = replay_from(&mut handle, app, &ctx, &mut ckpts, step, &mut state);
                    continue;
                }
            }
        }

        handle.begin_step(step);
        let due = opts.checkpoint_every > 0 && (step + 1).is_multiple_of(opts.checkpoint_every);
        let result = app.step(&mut handle, &mut state, step).and_then(|()| {
            let dump = due.then(|| app.dump(&ctx, handle.shard(), &state));
            handle.end_step(dump)
        });
        match result {
            Ok(Some(snapshot)) => {
                ckpts.push((step + 1, snapshot));
                if ckpts.len() > 2 {
                    ckpts.remove(0);
                }
                step += 1;
            }
            Ok(None) => step += 1,
            Err(_) => {
                step = replay_from(&mut handle, app, &ctx, &mut ckpts, step, &mut state);
            }
        }
    }
}

/// Shared recovery tail: reshard, rebuild state from the agreed
/// checkpoint, and return the step to resume from.
fn replay_from<B, A>(
    handle: &mut ShardHandle<'_, B>,
    app: &A,
    ctx: &Context<B>,
    ckpts: &mut Vec<(u64, Vec<f64>)>,
    current_step: u64,
    state: &mut A::State,
) -> u64
where
    B: Backend,
    A: ShardApp<B>,
{
    let newest = ckpts.last().expect("history is never empty").0;
    let replay_step = handle.recover(newest);
    // Drop any checkpoint newer than the agreed step (it would be
    // recomputed identically, but keeping it would desync the history).
    ckpts.retain(|(s, _)| *s <= replay_step);
    let (step, snapshot) = ckpts.last().expect("agreed step is in the history");
    assert_eq!(
        *step, replay_step,
        "survivors agreed on a checkpoint this rank no longer holds"
    );
    handle.counters.replayed_steps.fetch_add(
        current_step.saturating_sub(replay_step),
        std::sync::atomic::Ordering::Relaxed,
    );
    *state = app.init(ctx, handle.shard(), snapshot);
    replay_step
}
