//! # racc-shard — sharded multi-device execution
//!
//! Splits the outermost axis of a RACC iteration space across N simulated
//! devices (one [`racc_comm`] rank + one [`racc_core::Context`] each),
//! exchanges stencil halos through Result-typed messages, overlaps the
//! exchange with interior compute on the modeled clock, and survives rank
//! death under `racc-chaos` injection by resharding over the survivors and
//! replaying from a replicated checkpoint — bit-identically to the
//! fault-free run.
//!
//! The two layers:
//!
//! - [`plan`]: pure geometry — near-equal contiguous block decomposition,
//!   neighbor/ghost bookkeeping, the radius clamp ([`ShardPlan::max_count`]).
//! - [`runner`]: the step driver — the post/interior/recv/boundary phase
//!   protocol, lockstep status exchange doubling as a failure detector,
//!   replicated checkpoints, reshard-and-replay recovery, overlap-accounted
//!   shard clocks, and `ConstructKind::{Shard, Halo}` trace lanes.
//!
//! Applications implement [`ShardApp`] (see `racc-stencil`'s sharded
//! heat3d, `racc-lbm`'s sharded streaming, `racc-cg`'s pipelined CG) and
//! call [`run_sharded`].

pub mod plan;
pub mod runner;

pub use plan::{Shard, ShardPlan, Topology};
pub use runner::{
    run_sharded, RankReport, ShardApp, ShardError, ShardHandle, ShardOptions, ShardOutcome,
};
