//! End-to-end serving-layer tests: bit-identity vs solo contexts, weighted
//! fairness, admission shed, cross-tenant batching over one cached plan,
//! the chaos degradation ladder, and modeled multi-device speedup.

use racc_backend_cuda::CudaBackend;
use racc_core::{
    Backend, Context, FaultPlan, KernelProfile, RaccError, RetryPolicy, SerialBackend,
};
use racc_fuse::{lit, load, LazyExt};
use racc_serve::{job_fn, JobCtx, ServeError, Server, ServerOptions, TenantConfig};

/// The canonical job: fresh arrays, a fused CG-like update, a scalar out.
/// Allocating inside `run` makes every execution independent, so the
/// serve-layer result must be bit-identical to a solo fresh context.
fn cg_step<B: Backend>(job: &JobCtx<'_, B>, n: usize, alpha: f64) -> Result<f64, RaccError> {
    let ctx = job.ctx();
    let [x, p, r, s] = mk_arrays(ctx, n)?;
    job.uploaded();
    let mut l = ctx.lazy();
    l.store(&x, load(&x) + lit(alpha) * load(&p));
    let rv = l.assign(&r, load(&r) + lit(-alpha) * load(&s));
    let v = l.sum(rv.clone() * rv);
    job.computed();
    let _ = ctx.to_host(&x)?;
    Ok(v)
}

fn mk_arrays<B: Backend>(
    ctx: &Context<B>,
    n: usize,
) -> Result<[racc_core::Array1<f64>; 4], RaccError> {
    let mk = |k: usize| ctx.array_from_fn(n, move |i| ((i * k) % 13) as f64 * 0.5 - 3.0);
    Ok([mk(3)?, mk(5)?, mk(7)?, mk(11)?])
}

fn solo_reference(n: usize, alpha: f64) -> f64 {
    let ctx = Context::new(SerialBackend::new());
    let [x, p, r, s] = mk_arrays(&ctx, n).unwrap();
    let mut l = ctx.lazy();
    l.store(&x, load(&x) + lit(alpha) * load(&p));
    let rv = l.assign(&r, load(&r) + lit(-alpha) * load(&s));
    l.sum(rv.clone() * rv)
}

#[test]
fn results_are_bit_identical_to_running_alone() {
    let server = Server::start(ServerOptions::default().devices(3), |_d| {
        Context::new(SerialBackend::new())
    });
    let want = solo_reference(257, 0.8125);
    let handles: Vec<_> = (0..12)
        .map(|i| {
            let tenant = if i % 2 == 0 { "alice" } else { "bob" };
            server.submit_at(
                tenant,
                (i as u64) * 100,
                job_fn(move |job: &JobCtx<SerialBackend>| cg_step(job, 257, 0.8125)),
            )
        })
        .collect();
    for h in handles {
        let done = h.wait().expect("job completes");
        assert_eq!(done.output.to_bits(), want.to_bits());
        assert!(done.report.device < 3);
        assert!(done.report.dispatched_ns >= done.report.arrival_ns);
        assert!(done.report.completion_ns >= done.report.dispatched_ns);
        assert_eq!(done.report.attempts, 1);
        assert!(!done.report.fell_back);
    }
    let snap = server.shutdown();
    assert_eq!(snap.totals.admitted, 12);
    assert_eq!(snap.totals.completed, 12);
    assert_eq!(snap.totals.rejected, 0);
    assert_eq!(snap.totals.failed, 0);
}

#[test]
fn weighted_fairness_splits_dispatch_order_by_weight() {
    let server = Server::start(
        ServerOptions::default()
            .devices(1)
            .hold(true)
            .tenant("light", TenantConfig::default())
            .tenant(
                "heavy",
                TenantConfig {
                    weight: 3,
                    ..TenantConfig::default()
                },
            ),
        |_d| Context::new(SerialBackend::new()),
    );
    let submit = |tenant: &str| {
        server.submit_at(
            tenant,
            0,
            job_fn(move |job: &JobCtx<SerialBackend>| {
                let ctx = job.ctx();
                let x = ctx.array_from_fn(512, |i| i as f64)?;
                let xs = x.view();
                Ok(ctx.parallel_reduce(512, &KernelProfile::dot(), move |i| xs.get(i)))
            }),
        )
    };
    let light: Vec<_> = (0..24).map(|_| submit("light")).collect();
    let heavy: Vec<_> = (0..24).map(|_| submit("heavy")).collect();
    server.release();

    let mut order: Vec<(u64, bool)> = Vec::new();
    for h in light {
        order.push((h.wait().unwrap().report.dispatched_ns, false));
    }
    for h in heavy {
        order.push((h.wait().unwrap().report.dispatched_ns, true));
    }
    order.sort_unstable();
    let heavy_in_first_16 = order[..16].iter().filter(|(_, heavy)| *heavy).count();
    // Equal-cost jobs, weights 1:3 -> the contended prefix should dispatch
    // roughly 3 heavy jobs per light one (12 of 16), modulo startup.
    assert!(
        (10..=14).contains(&heavy_in_first_16),
        "weight-3 tenant got {heavy_in_first_16}/16 of the contended prefix"
    );
    server.shutdown();
}

#[test]
fn admission_sheds_beyond_tenant_and_global_depths() {
    // Tenant bound first: depth 2, five simultaneous arrivals.
    let server = Server::start(
        ServerOptions::default().devices(1).hold(true).tenant(
            "bursty",
            TenantConfig {
                queue_depth: 2,
                ..TenantConfig::default()
            },
        ),
        |_d| Context::new(SerialBackend::new()),
    );
    let handles: Vec<_> = (0..5)
        .map(|_| server.submit_at("bursty", 0, job_fn(|_job: &JobCtx<SerialBackend>| Ok(1u32))))
        .collect();
    server.release();
    let mut ok = 0;
    let mut shed = 0;
    for h in handles {
        match h.wait() {
            Ok(_) => ok += 1,
            Err(ServeError::TenantQueueFull { tenant, depth }) => {
                assert_eq!(tenant, "bursty");
                assert_eq!(depth, 2);
                shed += 1;
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }
    assert_eq!((ok, shed), (2, 3));
    let snap = server.shutdown();
    assert_eq!(snap.totals.rejected, 3);
    assert_eq!(snap.tenants[0].rejected, 3);
    assert_eq!(snap.tenants[0].queued, 0);

    // Server-wide bound: global depth 3 across two tenants.
    let server = Server::start(
        ServerOptions::default()
            .devices(1)
            .global_queue_depth(3)
            .hold(true),
        |_d| Context::new(SerialBackend::new()),
    );
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let tenant = if i % 2 == 0 { "a" } else { "b" };
            server.submit_at(tenant, 0, job_fn(|_job: &JobCtx<SerialBackend>| Ok(1u32)))
        })
        .collect();
    server.release();
    let saturated = handles
        .into_iter()
        .filter(|h| {
            matches!(
                h.wait_timeout(std::time::Duration::from_secs(30)),
                Some(Err(ServeError::Saturated { depth: 3 }))
            )
        })
        .count();
    assert_eq!(saturated, 3);
    let snap = server.shutdown();
    assert_eq!(snap.totals.admitted, 3);
    assert_eq!(snap.totals.rejected, 3);
}

#[test]
fn same_shape_jobs_batch_across_tenants_onto_one_cached_plan() {
    let server = Server::start(
        ServerOptions::default()
            .devices(1)
            .batch_limit(16)
            .hold(true),
        |_d| Context::new(SerialBackend::new()),
    );
    let want = solo_reference(257, 0.8125);
    let handles: Vec<_> = (0..16)
        .map(|i| {
            let tenant = if i < 8 { "alice" } else { "bob" };
            server.submit_at(
                tenant,
                0,
                job_fn(move |job: &JobCtx<SerialBackend>| cg_step(job, 257, 0.8125))
                    .with_shape("cg-257"),
            )
        })
        .collect();
    // A probe job staged far in the future runs after the wave drains and
    // reads the pool context's own view: its plan cache and serve counters.
    let probe = server.submit_at(
        "alice",
        1 << 40,
        job_fn(|job: &JobCtx<SerialBackend>| {
            let stats = job.ctx().stats();
            let pc = stats.plan_cache;
            Ok((pc.hits, pc.misses, pc.entries, stats.serve))
        }),
    );
    server.release();
    for h in handles {
        let done = h.wait().expect("batched job completes");
        assert_eq!(done.output.to_bits(), want.to_bits());
        assert_eq!(done.report.batch, 16, "the whole wave rides one dispatch");
        assert_eq!(done.report.device, 0);
    }
    let (hits, misses, entries, serve) = probe.wait().unwrap().output;
    assert_eq!(misses, 1, "first job compiles the plan");
    assert_eq!(hits, 15, "the other fifteen share it");
    assert_eq!(entries, 1);
    let serve = serve.expect("pool context records serve counters");
    assert_eq!(serve.batched_jobs, 16);
    let snap = server.shutdown();
    assert_eq!(snap.totals.batched_jobs, 16);
    assert!(snap.totals.batches >= 2, "the wave plus the probe dispatch");
}

#[test]
fn retry_rescues_a_transient_fault_bit_identically() {
    // The first kernel launch on the pool context faults (and panics:
    // no backend-level retry); the server's ladder retries the whole job
    // and the second attempt runs clean.
    let server = Server::start(
        ServerOptions::default().devices(1).retry(RetryPolicy {
            max_attempts: 2,
            base_backoff_ns: 1_000,
            multiplier: 2,
        }),
        |_d| {
            Context::builder(CudaBackend::new())
                .chaos(FaultPlan::parse("launch:nth-1").unwrap())
                .retry(RetryPolicy::none())
                .build()
        },
    );
    let clean = {
        let ctx = Context::new(CudaBackend::new());
        let x = ctx.array_from_fn(256, |i| (i % 7) as f64).unwrap();
        let xs = x.view();
        ctx.parallel_reduce(256, &KernelProfile::dot(), move |i| xs.get(i) * 2.0)
    };
    let done = server
        .submit(
            "alice",
            job_fn(|job: &JobCtx<CudaBackend>| {
                let ctx = job.ctx();
                let x = ctx.array_from_fn(256, |i| (i % 7) as f64)?;
                job.uploaded();
                let xs = x.view();
                Ok(ctx.parallel_reduce(256, &KernelProfile::dot(), move |i| xs.get(i) * 2.0))
            }),
        )
        .wait()
        .expect("retry rescues the job");
    assert_eq!(done.output.to_bits(), clean.to_bits());
    assert_eq!(done.report.attempts, 2);
    assert!(!done.report.fell_back);
    let snap = server.shutdown();
    assert_eq!(snap.totals.retried, 1);
    assert_eq!(snap.totals.completed, 1);
    assert_eq!(snap.totals.failed, 0);
}

#[test]
fn fallback_context_rescues_a_persistently_faulting_device() {
    // Device 0 faults every launch; the extra factory call (index ==
    // devices) builds the clean last-resort context.
    let server = Server::start(
        ServerOptions::default()
            .devices(1)
            .retry(RetryPolicy {
                max_attempts: 2,
                base_backoff_ns: 1_000,
                multiplier: 2,
            })
            .fallback(true),
        |device| {
            if device == 0 {
                Context::builder(CudaBackend::new())
                    .chaos(FaultPlan::parse("launch:always").unwrap())
                    .retry(RetryPolicy::none())
                    .build()
            } else {
                Context::new(CudaBackend::new())
            }
        },
    );
    let done = server
        .submit(
            "alice",
            job_fn(|job: &JobCtx<CudaBackend>| {
                let ctx = job.ctx();
                let x = ctx.array_from_fn(128, |i| i as f64)?;
                let xs = x.view();
                Ok(ctx.parallel_reduce(128, &KernelProfile::dot(), move |i| xs.get(i)))
            }),
        )
        .wait()
        .expect("fallback context completes the job");
    assert_eq!(done.output, (0..128).sum::<i32>() as f64);
    assert!(done.report.fell_back);
    assert_eq!(done.report.attempts, 3, "two primary attempts + fallback");
    let snap = server.shutdown();
    assert_eq!(snap.totals.fallbacks, 1);
    assert_eq!(snap.totals.retried, 1);
    assert_eq!(snap.totals.completed, 1);
}

#[test]
fn a_failing_job_resolves_alone_and_never_poisons_the_pool() {
    let server = Server::start(ServerOptions::default().devices(1), |_d| {
        Context::new(SerialBackend::new())
    });
    let poison = server.submit(
        "mallory",
        job_fn(|_job: &JobCtx<SerialBackend>| -> Result<u32, RaccError> {
            panic!("synthetic job bug")
        }),
    );
    match poison.wait() {
        Err(ServeError::JobFailed {
            tenant,
            attempts,
            error,
        }) => {
            assert_eq!(tenant, "mallory");
            assert_eq!(attempts, 1);
            assert!(error.contains("synthetic job bug"), "{error}");
        }
        other => panic!("expected JobFailed, got {other:?}"),
    }
    // The pool keeps serving other tenants afterwards.
    let done = server
        .submit("alice", job_fn(|_job: &JobCtx<SerialBackend>| Ok(7u32)))
        .wait()
        .expect("pool survives a panicking job");
    assert_eq!(done.output, 7);
    let snap = server.shutdown();
    assert_eq!(snap.totals.failed, 1);
    assert_eq!(snap.totals.completed, 1);
    let mallory = snap.tenants.iter().find(|t| t.name == "mallory").unwrap();
    assert_eq!(mallory.failed, 1);
}

#[test]
fn four_devices_beat_one_on_modeled_makespan() {
    let run = |devices: usize| {
        let server = Server::start(ServerOptions::default().devices(devices).hold(true), |_d| {
            Context::new(CudaBackend::new())
        });
        let handles: Vec<_> = (0..32)
            .map(|_| {
                server.submit_at(
                    "alice",
                    0,
                    job_fn(move |job: &JobCtx<CudaBackend>| cg_step(job, 1024, 0.5)),
                )
            })
            .collect();
        server.release();
        for h in handles {
            h.wait().expect("job completes");
        }
        server.shutdown().makespan_ns
    };
    let one = run(1);
    let four = run(4);
    assert!(one > 0 && four > 0);
    let speedup = one as f64 / four as f64;
    assert!(
        speedup >= 2.5,
        "4 modeled devices should cut the makespan ~4x, got {speedup:.2}x ({one} vs {four})"
    );
}

#[test]
fn overlap_shortens_the_modeled_makespan_on_one_device() {
    let run = |overlap: bool| {
        let server = Server::start(
            ServerOptions::default()
                .devices(1)
                .overlap(overlap)
                .hold(true),
            |_d| Context::new(CudaBackend::new()),
        );
        let handles: Vec<_> = (0..16)
            .map(|_| {
                server.submit_at(
                    "alice",
                    0,
                    job_fn(move |job: &JobCtx<CudaBackend>| cg_step(job, 4096, 0.5)),
                )
            })
            .collect();
        server.release();
        for h in handles {
            h.wait().expect("job completes");
        }
        server.shutdown().makespan_ns
    };
    let pipelined = run(true);
    let serial = run(false);
    assert!(
        pipelined < serial,
        "overlapping H2D/compute/D2H must shorten the pipeline: {pipelined} vs {serial}"
    );
}

#[test]
fn identical_loads_replay_identical_schedules() {
    let run = || {
        let server = Server::start(ServerOptions::default().devices(2).hold(true), |_d| {
            Context::new(SerialBackend::new())
        });
        let handles: Vec<_> = (0..10)
            .map(|i| {
                let tenant = if i % 3 == 0 { "a" } else { "b" };
                server.submit_at(
                    tenant,
                    (i as u64) * 37,
                    job_fn(move |job: &JobCtx<SerialBackend>| cg_step(job, 128 + i, 0.25)),
                )
            })
            .collect();
        server.release();
        let schedule: Vec<_> = handles
            .into_iter()
            .map(|h| {
                let done = h.wait().unwrap();
                (
                    done.report.id,
                    done.report.device,
                    done.report.dispatched_ns,
                    done.report.completion_ns,
                    done.output.to_bits(),
                )
            })
            .collect();
        (schedule, server.shutdown())
    };
    let (s1, snap1) = run();
    let (s2, snap2) = run();
    assert_eq!(s1, s2, "same load, same modeled schedule, same bits");
    assert_eq!(snap1.totals, snap2.totals);
}

#[test]
fn tenant_prefs_tables_configure_the_scheduler() {
    let mut prefs = racc_prefs::Preferences::new();
    prefs.set_tenant(
        "alice",
        &racc_prefs::TenantPrefs {
            weight: Some(5),
            max_in_flight: Some(2),
            queue_depth: Some(3),
        },
    );
    let options = ServerOptions::default().with_prefs(&prefs);
    let (name, cfg) = &options.tenants[0];
    assert_eq!(name, "alice");
    assert_eq!(
        *cfg,
        TenantConfig {
            weight: 5,
            max_in_flight: 2,
            queue_depth: 3,
        }
    );

    // And the depth actually gates admission.
    let server = Server::start(options.devices(1).hold(true), |_d| {
        Context::new(SerialBackend::new())
    });
    let handles: Vec<_> = (0..5)
        .map(|_| server.submit_at("alice", 0, job_fn(|_j: &JobCtx<SerialBackend>| Ok(0u8))))
        .collect();
    server.release();
    let shed = handles
        .into_iter()
        .filter(|h| {
            matches!(
                h.wait_timeout(std::time::Duration::from_secs(30)),
                Some(Err(ServeError::TenantQueueFull { depth: 3, .. }))
            )
        })
        .count();
    assert_eq!(shed, 2);
    server.shutdown();
}

#[test]
fn max_in_flight_caps_count_as_preemptions() {
    // A capped tenant shares one device with an uncapped one: while the
    // capped tenant's single modeled in-flight job drains, the scheduler
    // passes it over (counted as preempted) and serves the other tenant.
    let server = Server::start(
        ServerOptions::default().devices(1).hold(true).tenant(
            "capped",
            TenantConfig {
                weight: 8,
                max_in_flight: 1,
                ..TenantConfig::default()
            },
        ),
        |_d| Context::new(SerialBackend::new()),
    );
    let submit = |tenant: &str| {
        server.submit_at(
            tenant,
            0,
            job_fn(move |job: &JobCtx<SerialBackend>| cg_step(job, 256, 0.5)),
        )
    };
    let handles: Vec<_> = (0..6)
        .map(|i| submit(if i % 2 == 0 { "capped" } else { "free" }))
        .collect();
    server.release();
    for h in handles {
        h.wait().expect("capped jobs still drain");
    }
    let snap = server.shutdown();
    assert_eq!(snap.totals.completed, 6);
    assert!(
        snap.totals.preempted > 0,
        "the cap must have held the tenant back at least once: {:?}",
        snap.totals
    );
}
