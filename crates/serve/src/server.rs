//! The server: a background dispatcher thread multiplexing jobs from many
//! tenants across a pool of backend contexts.
//!
//! # Scheduling model
//!
//! The dispatcher runs a deterministic discrete-event loop over **modeled
//! time** (the same clock every backend's `Timeline` keeps). Two event
//! kinds exist: *arrivals* (a staged job reaches its admission instant)
//! and *dispatches* (some device's pipeline can accept its next job).
//! Events are processed in modeled-time order, arrivals first on ties, so
//! a given submission schedule produces one schedule of decisions — which
//! is what lets the bench harness and the chaos soak assert reproducible
//! throughput and bit-identical results.
//!
//! Jobs execute inline on the dispatcher thread, one at a time, against
//! the pool context the scheduler assigned; device parallelism and
//! H2D/compute/D2H overlap are captured by each device's three-engine
//! pipeline model ([`crate::engine`]). This mirrors the trade the shard
//! runner makes: real threads where the protocol needs them, modeled
//! accounting where the machine being modeled (N devices) is wider than
//! the machine running the test suite.
//!
//! # Fairness
//!
//! Per-tenant weighted fair queueing: every tenant carries a virtual time,
//! advanced by `modeled cost / weight` on each dispatch; the scheduler
//! picks the eligible tenant with the smallest virtual time. A tenant
//! whose modeled in-flight jobs reached its `max_in_flight` cap is held
//! back (counted as `preempted`); a tenant going from idle to backlogged
//! rejoins at the current virtual-time floor so idling banks no credit.

use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam::channel::{unbounded, Receiver, SendError, Sender};
use racc_core::{Backend, Context, RaccError, RetryPolicy, RuntimeConfig, ServeStats};
use racc_prefs::{Preferences, TenantPrefs};

use crate::engine::Engine;
use crate::error::ServeError;
use crate::job::{Completed, ErasedOutput, JobCtx, JobHandle, JobReport, Phases, ServeJob};

/// Weighted-fair virtual time is charged in units of `modeled_ns << WFQ_SHIFT
/// / weight` so integer division by small weights keeps precision.
const WFQ_SHIFT: u32 = 10;

/// One tenant's admission and fairness knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantConfig {
    /// Weighted-fair share relative to other tenants (>= 1; 0 is clamped).
    pub weight: u32,
    /// Cap on modeled in-flight jobs (dispatched, not yet completed on the
    /// modeled clock). `usize::MAX` = unlimited.
    pub max_in_flight: usize,
    /// Per-tenant admission bound: queued jobs beyond this are shed with
    /// [`ServeError::TenantQueueFull`].
    pub queue_depth: usize,
}

impl Default for TenantConfig {
    fn default() -> Self {
        TenantConfig {
            weight: 1,
            max_in_flight: usize::MAX,
            queue_depth: 64,
        }
    }
}

impl TenantConfig {
    /// Overlay `[tenant.<name>]` preferences on top of this config.
    pub fn with_prefs(mut self, prefs: &TenantPrefs) -> Self {
        if let Some(w) = prefs.weight {
            self.weight = w;
        }
        if let Some(m) = prefs.max_in_flight {
            self.max_in_flight = m;
        }
        if let Some(d) = prefs.queue_depth {
            self.queue_depth = d;
        }
        self
    }
}

/// Server construction knobs. `Default` honors the `RACC_SERVE_*`
/// environment knobs parsed by [`RuntimeConfig`].
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Pool width: how many contexts the factory is asked for.
    pub devices: usize,
    /// Server-wide admission bound across all tenant queues.
    pub global_queue_depth: usize,
    /// Cross-tenant batching cap: at most this many queued same-shape jobs
    /// dispatch to one device as a group (1 disables batching).
    pub batch_limit: usize,
    /// Model H2D/compute/D2H overlap per device (the A/B lever).
    pub overlap: bool,
    /// Server-level retry budget per job before backend fallback.
    pub retry: RetryPolicy,
    /// Whether the factory is asked for one extra, last-resort context
    /// (index `devices`) that jobs fall back to after exhausting retries.
    pub fallback: bool,
    /// Config for tenants not named in [`ServerOptions::tenants`].
    pub default_tenant: TenantConfig,
    /// Pre-registered tenants (others auto-register on first submit).
    pub tenants: Vec<(String, TenantConfig)>,
    /// Start held: stage submissions but process nothing until
    /// [`Server::release`] (or shutdown). An open-loop load generator
    /// stages its whole arrival schedule under hold, so admission and
    /// dispatch replay in pure modeled-time order — a function of the
    /// load, not of how fast the submitting thread ran.
    pub hold: bool,
}

impl Default for ServerOptions {
    fn default() -> Self {
        let cfg = RuntimeConfig::from_env();
        ServerOptions {
            devices: cfg.serve_devices.unwrap_or(1),
            global_queue_depth: cfg.serve_queue.unwrap_or(256),
            batch_limit: cfg.serve_batch.unwrap_or(8),
            overlap: true,
            retry: RetryPolicy::none(),
            fallback: false,
            default_tenant: TenantConfig::default(),
            tenants: Vec::new(),
            hold: false,
        }
    }
}

impl ServerOptions {
    /// Set the pool width.
    pub fn devices(mut self, n: usize) -> Self {
        self.devices = n.max(1);
        self
    }

    /// Set the server-wide admission bound.
    pub fn global_queue_depth(mut self, n: usize) -> Self {
        self.global_queue_depth = n.max(1);
        self
    }

    /// Set the same-shape batching cap.
    pub fn batch_limit(mut self, n: usize) -> Self {
        self.batch_limit = n.max(1);
        self
    }

    /// Toggle modeled H2D/compute/D2H overlap.
    pub fn overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Set the server-level retry budget.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Ask for a last-resort fallback context.
    pub fn fallback(mut self, on: bool) -> Self {
        self.fallback = on;
        self
    }

    /// Set the config applied to tenants not explicitly registered.
    pub fn tenant_defaults(mut self, cfg: TenantConfig) -> Self {
        self.default_tenant = cfg;
        self
    }

    /// Pre-register one tenant.
    pub fn tenant(mut self, name: &str, cfg: TenantConfig) -> Self {
        match self.tenants.iter_mut().find(|(n, _)| n == name) {
            Some((_, existing)) => *existing = cfg,
            None => self.tenants.push((name.to_string(), cfg)),
        }
        self
    }

    /// Start the server held (see the `hold` field).
    pub fn hold(mut self, on: bool) -> Self {
        self.hold = on;
        self
    }

    /// Register every `[tenant.<name>]` table from a preferences store,
    /// each overlaying the default tenant config.
    pub fn with_prefs(mut self, prefs: &Preferences) -> Self {
        for (name, tp) in prefs.tenants() {
            let cfg = self.default_tenant.with_prefs(&tp);
            self = self.tenant(&name, cfg);
        }
        self
    }
}

/// Per-tenant counters shared between the dispatcher and `stats()` readers.
#[derive(Debug, Default)]
struct TenantShared {
    queued: AtomicUsize,
    admitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
}

struct TenantEntry {
    name: String,
    cfg: TenantConfig,
    shared: Arc<TenantShared>,
}

/// State shared between the client-side [`Server`] handle and the
/// dispatcher thread.
struct Shared {
    counters: racc_core::ServeCounters,
    tenants: Mutex<Vec<TenantEntry>>,
    makespan_ns: AtomicU64,
}

impl Shared {
    fn tenant_index(&self, name: &str, default_cfg: &TenantConfig) -> usize {
        let mut reg = self.tenants.lock().unwrap();
        if let Some(i) = reg.iter().position(|e| e.name == name) {
            return i;
        }
        reg.push(TenantEntry {
            name: name.to_string(),
            cfg: *default_cfg,
            shared: Arc::new(TenantShared::default()),
        });
        reg.len() - 1
    }
}

/// One tenant's scheduling state in a [`ServerSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub name: String,
    /// Weighted-fair share.
    pub weight: u32,
    /// Jobs currently queued (admitted, not yet dispatched).
    pub queued: usize,
    /// Jobs admitted so far.
    pub admitted: u64,
    /// Jobs shed at admission.
    pub rejected: u64,
    /// Jobs completed with `Ok`.
    pub completed: u64,
    /// Jobs failed after the degradation ladder.
    pub failed: u64,
}

/// A point-in-time view of the server: pool-wide [`ServeStats`] totals plus
/// per-tenant queue depths — the `ctx.stats()`-style snapshot of the
/// serving layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerSnapshot {
    /// Pool-wide totals (the same shape `ctx.stats().serve` reports per
    /// pool context).
    pub totals: ServeStats,
    /// Per-tenant registration order view.
    pub tenants: Vec<TenantSnapshot>,
    /// Modeled time at which the busiest device pipeline drains — the
    /// denominator of modeled throughput.
    pub makespan_ns: u64,
}

type RunFn<B> = Box<dyn Fn(&JobCtx<'_, B>) -> Result<ErasedOutput, RaccError> + Send>;
type ResolveFn = Box<dyn FnOnce(Result<(ErasedOutput, JobReport), ServeError>) + Send>;

struct QueuedJob<B: Backend> {
    id: u64,
    tenant: usize,
    arrival_ns: u64,
    shape: Option<&'static str>,
    run: RunFn<B>,
    resolve: ResolveFn,
}

struct Staged<B: Backend> {
    time: u64,
    seq: u64,
    job: QueuedJob<B>,
}

impl<B: Backend> PartialEq for Staged<B> {
    fn eq(&self, other: &Self) -> bool {
        (self.time, self.seq) == (other.time, other.seq)
    }
}
impl<B: Backend> Eq for Staged<B> {}
impl<B: Backend> PartialOrd for Staged<B> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<B: Backend> Ord for Staged<B> {
    /// Reversed so the `BinaryHeap` pops the *earliest* (time, seq) first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

enum Ctl<B: Backend> {
    Submit {
        arrival: Option<u64>,
        job: QueuedJob<B>,
    },
    Release,
    Shutdown,
}

/// The client handle: submit jobs, read stats, shut down. Cheap to share
/// by reference across submitting threads (`submit` takes `&self`).
pub struct Server<B: Backend> {
    tx: Sender<Ctl<B>>,
    join: Option<std::thread::JoinHandle<()>>,
    shared: Arc<Shared>,
    default_tenant: TenantConfig,
    devices: usize,
    next_id: AtomicU64,
}

impl<B: Backend> Server<B> {
    /// Build the pool and start the dispatcher. The factory is called with
    /// each device index `0..options.devices` (and once more with index
    /// `devices` for the fallback context when `options.fallback` is set);
    /// it decides the backend construction, chaos arming, tracing, etc.
    /// per pool member.
    pub fn start<F>(options: ServerOptions, mut factory: F) -> Server<B>
    where
        F: FnMut(usize) -> Context<B>,
    {
        let devices = options.devices.max(1);
        let ctxs: Vec<Context<B>> = (0..devices).map(&mut factory).collect();
        let fallback = options.fallback.then(|| factory(devices));
        let shared = Arc::new(Shared {
            counters: racc_core::ServeCounters::default(),
            tenants: Mutex::new(
                options
                    .tenants
                    .iter()
                    .map(|(name, cfg)| TenantEntry {
                        name: name.clone(),
                        cfg: *cfg,
                        shared: Arc::new(TenantShared::default()),
                    })
                    .collect(),
            ),
            makespan_ns: AtomicU64::new(0),
        });
        let (tx, rx) = unbounded();
        let dispatcher = Dispatcher {
            rx,
            ctxs,
            fallback,
            engines: vec![Engine::default(); devices],
            tenants: Vec::new(),
            staged: BinaryHeap::new(),
            shared: Arc::clone(&shared),
            now: 0,
            vfloor: 0,
            seq: 0,
            global_depth: options.global_queue_depth.max(1),
            batch_limit: options.batch_limit.max(1),
            overlap: options.overlap,
            retry: options.retry,
            held: options.hold,
        };
        let join = std::thread::Builder::new()
            .name("racc-serve".into())
            .spawn(move || dispatcher.run())
            .expect("spawn racc-serve dispatcher");
        Server {
            tx,
            join: Some(join),
            shared,
            default_tenant: options.default_tenant,
            devices,
            next_id: AtomicU64::new(1),
        }
    }

    /// Pool width.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Submit a job arriving *now* (at the server's current modeled
    /// frontier). Returns immediately; the handle resolves when the job
    /// completes, fails, or is shed.
    pub fn submit<J: ServeJob<B>>(&self, tenant: &str, job: J) -> JobHandle<J::Output> {
        self.submit_inner(tenant, None, job)
    }

    /// Submit a job with an explicit modeled arrival time — the open-loop
    /// load-generator path: stage a whole arrival schedule up front and
    /// the dispatcher admits each job at its instant, in time order,
    /// deterministically.
    pub fn submit_at<J: ServeJob<B>>(
        &self,
        tenant: &str,
        arrival_ns: u64,
        job: J,
    ) -> JobHandle<J::Output> {
        self.submit_inner(tenant, Some(arrival_ns), job)
    }

    fn submit_inner<J: ServeJob<B>>(
        &self,
        tenant: &str,
        arrival: Option<u64>,
        job: J,
    ) -> JobHandle<J::Output> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let tenant_idx = self.shared.tenant_index(tenant, &self.default_tenant);
        let shape = job.shape();
        let (tx, rx) = unbounded();
        let run: RunFn<B> = Box::new(move |jc: &JobCtx<'_, B>| {
            job.run(jc).map(|out| Box::new(out) as ErasedOutput)
        });
        let resolve: ResolveFn = Box::new(move |res| {
            let _ = tx.send(res.map(|(out, report)| {
                Completed {
                    output: *out
                        .downcast::<J::Output>()
                        .expect("job output type matches its handle"),
                    report,
                }
            }));
        });
        let queued = QueuedJob {
            id,
            tenant: tenant_idx,
            arrival_ns: 0,
            shape,
            run,
            resolve,
        };
        if let Err(SendError(Ctl::Submit { job, .. })) = self.tx.send(Ctl::Submit {
            arrival,
            job: queued,
        }) {
            (job.resolve)(Err(ServeError::Shutdown));
        }
        JobHandle { id, rx }
    }

    /// Release a server started with [`ServerOptions::hold`]: dispatch
    /// begins once every submission sent before this call is staged.
    pub fn release(&self) {
        let _ = self.tx.send(Ctl::Release);
    }

    /// Pool-wide totals plus per-tenant queue depths.
    pub fn stats(&self) -> ServerSnapshot {
        let c = &self.shared.counters;
        let totals = ServeStats {
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_jobs: c.batched_jobs.load(Ordering::Relaxed),
            retried: c.retried.load(Ordering::Relaxed),
            fallbacks: c.fallbacks.load(Ordering::Relaxed),
            preempted: c.preempted.load(Ordering::Relaxed),
        };
        let tenants = self
            .shared
            .tenants
            .lock()
            .unwrap()
            .iter()
            .map(|e| TenantSnapshot {
                name: e.name.clone(),
                weight: e.cfg.weight.max(1),
                queued: e.shared.queued.load(Ordering::Relaxed),
                admitted: e.shared.admitted.load(Ordering::Relaxed),
                rejected: e.shared.rejected.load(Ordering::Relaxed),
                completed: e.shared.completed.load(Ordering::Relaxed),
                failed: e.shared.failed.load(Ordering::Relaxed),
            })
            .collect();
        ServerSnapshot {
            totals,
            tenants,
            makespan_ns: self.shared.makespan_ns.load(Ordering::Relaxed),
        }
    }

    /// Drain every staged and queued job, stop the dispatcher, and return
    /// the final snapshot.
    pub fn shutdown(mut self) -> ServerSnapshot {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        let _ = self.tx.send(Ctl::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl<B: Backend> Drop for Server<B> {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

struct TenantState<B: Backend> {
    name: String,
    cfg: TenantConfig,
    shared: Arc<TenantShared>,
    queue: VecDeque<QueuedJob<B>>,
    vtime: u128,
    /// Modeled completion times of dispatched-but-not-yet-drained jobs.
    inflight: Vec<u64>,
}

impl<B: Backend> TenantState<B> {
    fn inflight_at(&self, t: u64) -> usize {
        self.inflight.iter().filter(|&&c| c > t).count()
    }

    fn eligible_at(&self, t: u64) -> bool {
        !self.queue.is_empty() && self.inflight_at(t) < self.cfg.max_in_flight
    }
}

struct Dispatcher<B: Backend> {
    rx: Receiver<Ctl<B>>,
    ctxs: Vec<Context<B>>,
    fallback: Option<Context<B>>,
    engines: Vec<Engine>,
    tenants: Vec<TenantState<B>>,
    staged: BinaryHeap<Staged<B>>,
    shared: Arc<Shared>,
    /// Modeled time of the last processed event.
    now: u64,
    /// Virtual-time floor newly-backlogged tenants rejoin at.
    vfloor: u128,
    seq: u64,
    global_depth: usize,
    batch_limit: usize,
    overlap: bool,
    retry: RetryPolicy,
    /// While held, arrivals are admitted but nothing dispatches.
    held: bool,
}

fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

fn add(counter: &AtomicU64, n: u64) {
    counter.fetch_add(n, Ordering::Relaxed);
}

impl<B: Backend> Dispatcher<B> {
    fn run(mut self) {
        let mut shutdown = false;
        loop {
            while let Ok(msg) = self.rx.try_recv() {
                self.stage(msg, &mut shutdown);
            }
            // While held, events only stage: on release the loop replays
            // arrivals and dispatches in pure modeled-time order, so both
            // admission and scheduling are functions of the load alone.
            let (next_arrival, next_dispatch) = if self.held {
                (None, None)
            } else {
                (
                    self.staged.peek().map(|s| s.time),
                    self.next_dispatch_time(),
                )
            };
            match (next_arrival, next_dispatch) {
                (Some(a), Some(t)) if a <= t => self.process_next_arrival(),
                (_, Some(t)) => self.dispatch_at(t),
                (Some(_), None) => self.process_next_arrival(),
                (None, None) => {
                    if shutdown {
                        break;
                    }
                    match self.rx.recv() {
                        Ok(msg) => self.stage(msg, &mut shutdown),
                        Err(_) => break,
                    }
                }
            }
        }
    }

    fn stage(&mut self, msg: Ctl<B>, shutdown: &mut bool) {
        match msg {
            Ctl::Submit { arrival, mut job } => {
                let time = arrival.unwrap_or(self.now);
                job.arrival_ns = time;
                self.seq += 1;
                self.staged.push(Staged {
                    time,
                    seq: self.seq,
                    job,
                });
            }
            Ctl::Release => self.held = false,
            Ctl::Shutdown => {
                // Shutdown drains everything, held or not.
                self.held = false;
                *shutdown = true;
            }
        }
    }

    /// Lazily mirror tenants auto-registered by the client side.
    fn sync_tenants(&mut self) {
        let reg = self.shared.tenants.lock().unwrap();
        for entry in reg.iter().skip(self.tenants.len()) {
            self.tenants.push(TenantState {
                name: entry.name.clone(),
                cfg: TenantConfig {
                    weight: entry.cfg.weight.max(1),
                    ..entry.cfg
                },
                shared: Arc::clone(&entry.shared),
                queue: VecDeque::new(),
                vtime: self.vfloor,
                inflight: Vec::new(),
            });
        }
    }

    fn process_next_arrival(&mut self) {
        let staged = self.staged.pop().expect("arrival peeked");
        self.now = self.now.max(staged.time);
        self.sync_tenants();
        let job = staged.job;
        let total_queued: usize = self.tenants.iter().map(|t| t.queue.len()).sum();
        let ts = &mut self.tenants[job.tenant];
        if total_queued >= self.global_depth {
            bump(&self.shared.counters.rejected);
            bump(&ts.shared.rejected);
            (job.resolve)(Err(ServeError::Saturated {
                depth: self.global_depth,
            }));
        } else if ts.queue.len() >= ts.cfg.queue_depth {
            bump(&self.shared.counters.rejected);
            bump(&ts.shared.rejected);
            (job.resolve)(Err(ServeError::TenantQueueFull {
                tenant: ts.name.clone(),
                depth: ts.cfg.queue_depth,
            }));
        } else {
            bump(&self.shared.counters.admitted);
            bump(&ts.shared.admitted);
            if ts.queue.is_empty() {
                ts.vtime = ts.vtime.max(self.vfloor);
            }
            ts.shared.queued.fetch_add(1, Ordering::Relaxed);
            ts.queue.push_back(job);
        }
    }

    /// Modeled time of the next dispatch decision, or `None` when no job
    /// is queued. Advances past in-flight completions when every
    /// backlogged tenant sits at its cap.
    fn next_dispatch_time(&self) -> Option<u64> {
        if self.tenants.iter().all(|t| t.queue.is_empty()) {
            return None;
        }
        let dev_ready = self.engines.iter().map(|e| e.ready()).min().unwrap_or(0);
        let mut t = self.now.max(dev_ready);
        loop {
            if self.tenants.iter().any(|ts| ts.eligible_at(t)) {
                return Some(t);
            }
            let next_drain = self
                .tenants
                .iter()
                .filter(|ts| !ts.queue.is_empty())
                .flat_map(|ts| ts.inflight.iter().copied())
                .filter(|&c| c > t)
                .min();
            match next_drain {
                Some(c) => t = c,
                // Unreachable (capped implies in-flight work), but never
                // deadlock on an inconsistency.
                None => return Some(t),
            }
        }
    }

    fn dispatch_at(&mut self, t: u64) {
        self.now = t;
        for ts in &mut self.tenants {
            ts.inflight.retain(|&c| c > t);
        }
        // Weighted-fair pick; tenants held back purely by their in-flight
        // cap count as preempted.
        let mut pick = None;
        for (i, ts) in self.tenants.iter().enumerate() {
            if ts.queue.is_empty() {
                continue;
            }
            if ts.inflight_at(t) >= ts.cfg.max_in_flight {
                bump(&self.shared.counters.preempted);
                continue;
            }
            match pick {
                None => pick = Some(i),
                Some(p) if ts.vtime < self.tenants[p].vtime => pick = Some(i),
                _ => {}
            }
        }
        let Some(lead_tenant) = pick else { return };
        self.vfloor = self.vfloor.max(self.tenants[lead_tenant].vtime);
        let device = self
            .engines
            .iter()
            .enumerate()
            .min_by_key(|(i, e)| (e.ready(), *i))
            .map(|(i, _)| i)
            .expect("pool has at least one device");

        // Collect the dispatch group: the lead job, plus queued jobs of
        // the same shape from any tenant (weighted-fair order, caps
        // respected) up to the batch limit.
        let mut taken = vec![0usize; self.tenants.len()];
        let lead = self.tenants[lead_tenant].queue.pop_front().expect("queued");
        taken[lead_tenant] = 1;
        let shape = lead.shape;
        let mut batch = vec![lead];
        if shape.is_some() {
            while batch.len() < self.batch_limit {
                let cand = self
                    .tenants
                    .iter()
                    .enumerate()
                    .filter(|(i, ts)| {
                        ts.queue.front().map(|j| j.shape) == Some(shape)
                            && ts.inflight_at(t) + taken[*i] < ts.cfg.max_in_flight
                    })
                    .min_by_key(|(i, ts)| (ts.vtime, *i))
                    .map(|(i, _)| i);
                match cand {
                    Some(i) => {
                        batch.push(self.tenants[i].queue.pop_front().expect("matched head"));
                        taken[i] += 1;
                    }
                    None => break,
                }
            }
        }

        let batch_size = batch.len();
        bump(&self.shared.counters.batches);
        bump(&self.ctxs[device].serve_counters().batches);
        if batch_size >= 2 {
            add(&self.shared.counters.batched_jobs, batch_size as u64);
            add(
                &self.ctxs[device].serve_counters().batched_jobs,
                batch_size as u64,
            );
        }

        for job in batch {
            self.run_and_resolve(device, t, batch_size, job);
        }
        let makespan = self.engines.iter().map(|e| e.drained()).max().unwrap_or(0);
        self.shared
            .makespan_ns
            .fetch_max(makespan, Ordering::Relaxed);
    }

    fn run_and_resolve(&mut self, device: usize, t: u64, batch: usize, job: QueuedJob<B>) {
        let (outcome, phases, attempts, fell_back) = self.run_ladder(device, &job);
        let (start, completion) = self.engines[device].admit(t, &phases, self.overlap);
        let _ = start;
        let ndev = self.ctxs.len();
        let ts = &mut self.tenants[job.tenant];
        ts.vtime += ((phases.total().max(1) as u128) << WFQ_SHIFT) / ts.cfg.weight.max(1) as u128;
        ts.inflight.push(completion);
        ts.shared.queued.fetch_sub(1, Ordering::Relaxed);
        let report = JobReport {
            id: job.id,
            tenant: ts.name.clone(),
            device,
            arrival_ns: job.arrival_ns,
            dispatched_ns: t,
            completion_ns: completion,
            attempts,
            fell_back,
            batch,
        };
        #[cfg(feature = "trace")]
        self.record_span(device, ndev, job.tenant, &report);
        #[cfg(not(feature = "trace"))]
        let _ = ndev;
        match outcome {
            Ok(out) => {
                bump(&self.shared.counters.completed);
                bump(&self.tenants[job.tenant].shared.completed);
                bump(&self.ctxs[device].serve_counters().completed);
                (job.resolve)(Ok((out, report)));
            }
            Err(error) => {
                bump(&self.shared.counters.failed);
                bump(&self.tenants[job.tenant].shared.failed);
                bump(&self.ctxs[device].serve_counters().failed);
                let tenant = self.tenants[job.tenant].name.clone();
                (job.resolve)(Err(ServeError::JobFailed {
                    tenant,
                    attempts,
                    error,
                }));
            }
        }
    }

    /// The degradation ladder: run on the assigned context, retry per the
    /// server's [`RetryPolicy`] (modeled backoff charged to the compute
    /// engine), then try the fallback context once, then fail just this
    /// job. Panics are caught so a poisoned job can never take the pool
    /// down.
    fn run_ladder(
        &self,
        device: usize,
        job: &QueuedJob<B>,
    ) -> (Result<ErasedOutput, String>, Phases, u32, bool) {
        let ctx = &self.ctxs[device];
        let mut attempts = 0u32;
        // Failed attempts and retry backoff are charged to the compute
        // engine on top of the successful attempt's measured phases.
        let mut extra_ns = 0u64;
        let mut last_err = String::new();
        while attempts < self.retry.max_attempts.max(1) {
            attempts += 1;
            let jc = JobCtx::new(ctx);
            match catch_unwind(AssertUnwindSafe(|| (job.run)(&jc))) {
                Ok(Ok(out)) => {
                    let mut phases = jc.phases();
                    phases.compute += extra_ns;
                    return (Ok(out), phases, attempts, false);
                }
                Ok(Err(e)) => {
                    extra_ns += jc.phases().total();
                    last_err = e.to_string();
                }
                Err(panic) => {
                    extra_ns += jc.phases().total();
                    last_err = render_panic(panic);
                }
            }
            if attempts < self.retry.max_attempts {
                extra_ns += self.retry.backoff_ns(attempts);
                bump(&self.shared.counters.retried);
                bump(&ctx.serve_counters().retried);
            }
        }
        if let Some(fb) = &self.fallback {
            attempts += 1;
            let jc = JobCtx::new(fb);
            match catch_unwind(AssertUnwindSafe(|| (job.run)(&jc))) {
                Ok(Ok(out)) => {
                    let mut phases = jc.phases();
                    phases.compute += extra_ns;
                    bump(&self.shared.counters.fallbacks);
                    bump(&ctx.serve_counters().fallbacks);
                    return (Ok(out), phases, attempts, true);
                }
                Ok(Err(e)) => {
                    extra_ns += jc.phases().total();
                    last_err = e.to_string();
                }
                Err(panic) => {
                    extra_ns += jc.phases().total();
                    last_err = render_panic(panic);
                }
            }
        }
        (
            Err(last_err),
            Phases {
                h2d: 0,
                compute: extra_ns,
                d2h: 0,
            },
            attempts,
            false,
        )
    }

    #[cfg(feature = "trace")]
    fn record_span(&self, device: usize, ndev: usize, tenant: usize, report: &JobReport) {
        let ctx = &self.ctxs[device];
        if let Some(recorder) = ctx.tracer() {
            if recorder.is_enabled() {
                recorder.record(
                    racc_core::trace::Span::new(
                        ctx.key(),
                        racc_core::trace::ConstructKind::Serve,
                        "job",
                    )
                    .dims(report.id, tenant as u64, report.batch as u64)
                    .geometry(device as u64, ndev as u64)
                    .payload(report.queue_delay_ns())
                    .modeled(report.latency_ns()),
                );
            }
        }
    }
}

fn render_panic(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = panic.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked".to_string()
    }
}
