//! The job abstraction: what tenants submit, how jobs see their assigned
//! context, and the handle their results come back through.

use std::any::Any;
use std::cell::Cell;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError};
use racc_core::{Backend, Context, RaccError};

use crate::error::ServeError;

/// A unit of serveable work: a kernel DAG built with `ctx.lazy()`, a solver
/// run, a sharded app step — anything that runs against one [`Context`] and
/// produces a value.
///
/// `run` may be called more than once (retries, backend fallback), so it
/// takes `&self`; each call must recompute the result from scratch against
/// the context it is handed. Jobs that allocate their arrays inside `run`
/// are automatically bit-identical to running alone on a fresh context.
pub trait ServeJob<B: Backend>: Send + 'static {
    /// The value the job's [`JobHandle`] resolves with.
    type Output: Send + 'static;

    /// A stable shape key for cross-tenant batching: queued jobs whose
    /// keys match may be dispatched to one device as a group, where the
    /// shape-keyed fusion plan cache lets them share one compiled plan.
    /// `None` (the default) never batches.
    fn shape(&self) -> Option<&'static str> {
        None
    }

    /// Run the job against the assigned context.
    fn run(&self, job: &JobCtx<'_, B>) -> Result<Self::Output, RaccError>;
}

/// A [`ServeJob`] from a closure plus an optional batching shape key.
pub struct FnJob<F> {
    f: F,
    shape: Option<&'static str>,
}

/// Wrap a closure as a job. Add a batching key with [`FnJob::with_shape`].
pub fn job_fn<F>(f: F) -> FnJob<F> {
    FnJob { f, shape: None }
}

impl<F> FnJob<F> {
    /// Set the cross-tenant batching shape key.
    pub fn with_shape(mut self, shape: &'static str) -> Self {
        self.shape = Some(shape);
        self
    }
}

impl<B, T, F> ServeJob<B> for FnJob<F>
where
    B: Backend,
    T: Send + 'static,
    F: for<'a> Fn(&JobCtx<'a, B>) -> Result<T, RaccError> + Send + 'static,
{
    type Output = T;

    fn shape(&self) -> Option<&'static str> {
        self.shape
    }

    fn run(&self, job: &JobCtx<'_, B>) -> Result<T, RaccError> {
        (self.f)(job)
    }
}

/// The job's view of its assigned pool context, plus optional phase marks.
///
/// The server charges each job's modeled cost to the device's three-engine
/// pipeline (H2D / compute / D2H, the `examples/stream_overlap.rs`
/// machinery). A job that calls [`uploaded`](JobCtx::uploaded) after its
/// host-to-device transfers and [`computed`](JobCtx::computed) after its
/// kernels gets its phases overlapped with neighboring jobs on the modeled
/// clock; a job that never marks is charged entirely to the compute engine.
pub struct JobCtx<'a, B: Backend> {
    ctx: &'a Context<B>,
    t0: u64,
    h2d_ns: Cell<Option<u64>>,
    compute_ns: Cell<Option<u64>>,
}

impl<'a, B: Backend> JobCtx<'a, B> {
    pub(crate) fn new(ctx: &'a Context<B>) -> Self {
        JobCtx {
            ctx,
            t0: ctx.modeled_ns(),
            h2d_ns: Cell::new(None),
            compute_ns: Cell::new(None),
        }
    }

    /// The context this job was dispatched onto.
    pub fn ctx(&self) -> &'a Context<B> {
        self.ctx
    }

    /// Mark the end of the job's upload (H2D) phase. Idempotent: the first
    /// call wins.
    pub fn uploaded(&self) {
        if self.h2d_ns.get().is_none() {
            self.h2d_ns
                .set(Some(self.ctx.modeled_ns().saturating_sub(self.t0)));
        }
    }

    /// Mark the end of the job's compute phase (everything after is
    /// charged as D2H). Idempotent: the first call wins.
    pub fn computed(&self) {
        if self.compute_ns.get().is_none() {
            self.compute_ns
                .set(Some(self.ctx.modeled_ns().saturating_sub(self.t0)));
        }
    }

    /// Split the modeled cost since construction into pipeline phases.
    pub(crate) fn phases(&self) -> Phases {
        let total = self.ctx.modeled_ns().saturating_sub(self.t0);
        let h2d = self.h2d_ns.get().unwrap_or(0).min(total);
        let through_compute = self.compute_ns.get().unwrap_or(total).clamp(h2d, total);
        Phases {
            h2d,
            compute: through_compute - h2d,
            d2h: total - through_compute,
        }
    }
}

/// A job's modeled cost split across the device pipeline's three engines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Phases {
    pub h2d: u64,
    pub compute: u64,
    pub d2h: u64,
}

impl Phases {
    pub(crate) fn total(&self) -> u64 {
        self.h2d + self.compute + self.d2h
    }
}

/// How one completed job moved through the server, on the modeled clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobReport {
    /// Submission-assigned job id (unique per server).
    pub id: u64,
    /// The submitting tenant.
    pub tenant: String,
    /// Pool device index the job was dispatched onto.
    pub device: usize,
    /// Modeled arrival time (admission).
    pub arrival_ns: u64,
    /// Modeled dispatch time (left the queue).
    pub dispatched_ns: u64,
    /// Modeled completion time (result ready, D2H drained).
    pub completion_ns: u64,
    /// Attempts spent (1 = clean first run).
    pub attempts: u32,
    /// Whether the fallback context produced the result.
    pub fell_back: bool,
    /// Size of the dispatch group this job rode in (1 = alone).
    pub batch: usize,
}

impl JobReport {
    /// Admission-to-completion latency on the modeled clock.
    pub fn latency_ns(&self) -> u64 {
        self.completion_ns.saturating_sub(self.arrival_ns)
    }

    /// Time spent queued before dispatch.
    pub fn queue_delay_ns(&self) -> u64 {
        self.dispatched_ns.saturating_sub(self.arrival_ns)
    }
}

/// A completed job: its output plus the scheduling report.
#[derive(Debug)]
pub struct Completed<T> {
    /// What [`ServeJob::run`] returned.
    pub output: T,
    /// How the job moved through the server.
    pub report: JobReport,
}

/// The caller's side of one submitted job. Dropping the handle abandons
/// the result (the job still runs and counts in stats).
#[derive(Debug)]
pub struct JobHandle<T> {
    pub(crate) id: u64,
    pub(crate) rx: Receiver<Result<Completed<T>, ServeError>>,
}

impl<T> JobHandle<T> {
    /// The server-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Block until the job resolves.
    pub fn wait(self) -> Result<Completed<T>, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Shutdown))
    }

    /// Block with a real-time bound; `None` on timeout (the handle stays
    /// usable).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<Completed<T>, ServeError>> {
        match self.rx.recv_timeout(timeout) {
            Ok(res) => Some(res),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(ServeError::Shutdown)),
        }
    }
}

/// Type-erased output crossing the dispatcher boundary.
pub(crate) type ErasedOutput = Box<dyn Any + Send>;
