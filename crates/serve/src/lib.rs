//! # racc-serve — multi-tenant job serving over a context pool
//!
//! The serving layer turns the single-user runtime into a multi-tenant
//! service: many clients submit jobs concurrently (kernel DAGs built with
//! `ctx.lazy()`, CG solver runs, sharded app steps — anything that runs
//! against one `Context`), and a [`Server`] multiplexes them across a pool
//! of backend contexts standing in for devices and streams.
//!
//! ```
//! use racc_core::{Context, KernelProfile, SerialBackend};
//! use racc_serve::{job_fn, JobCtx, Server, ServerOptions};
//!
//! let server = Server::start(ServerOptions::default().devices(2), |_device| {
//!     Context::new(SerialBackend::new())
//! });
//! let handle = server.submit(
//!     "alice",
//!     job_fn(|job: &JobCtx<SerialBackend>| {
//!         let ctx = job.ctx();
//!         let x = ctx.array_from(&[1.0f64, 2.0, 3.0])?;
//!         job.uploaded();
//!         let xs = x.view();
//!         let s = ctx.parallel_reduce(3, &KernelProfile::dot(), move |i| xs.get(i) * 2.0);
//!         job.computed();
//!         Ok(s)
//!     }),
//! );
//! let done = handle.wait().unwrap();
//! assert_eq!(done.output, 12.0);
//! ```
//!
//! What the server gives you on top of calling contexts directly:
//!
//! * **Admission control** — a bounded submission queue per tenant and
//!   server-wide; overload sheds jobs with typed errors
//!   ([`ServeError::TenantQueueFull`], [`ServeError::Saturated`]) instead
//!   of queueing without bound.
//! * **Weighted-fair scheduling** — each tenant gets throughput in
//!   proportion to its configured weight when the pool is contended
//!   (virtual-time WFQ; see `server` module docs).
//! * **Cross-tenant batching** — small same-shape jobs (keyed by
//!   [`ServeJob::shape`]) dispatch to one device as a group, where the
//!   shape-keyed fusion plan cache means one compiled plan serves all of
//!   them.
//! * **Overlap** — each device's modeled H2D/compute/D2H pipeline overlaps
//!   neighboring jobs' transfers and kernels, the same three-engine
//!   accounting the stream/event machinery gives a single context.
//! * **Graceful degradation** — faults injected by `RACC_CHAOS` (or real
//!   backend errors, or panics) walk a ladder: retry per [`RetryPolicy`],
//!   then a fallback context, then fail *that job only*. The pool is never
//!   poisoned.
//!
//! Observability: [`Server::stats`] returns a [`ServerSnapshot`] (pool
//! totals plus per-tenant queue depths); each pool context's own
//! `ctx.stats().serve` carries its share of the same counters; with the
//! `trace` feature each dispatched job records a `serve` span into the
//! context's chrome-trace lane.

mod engine;
mod error;
mod job;
mod server;

pub use error::ServeError;
pub use job::{job_fn, Completed, FnJob, JobCtx, JobHandle, JobReport, ServeJob};
pub use server::{Server, ServerOptions, ServerSnapshot, TenantConfig, TenantSnapshot};

// Re-exported so servers can be configured without a direct racc-core dep.
pub use racc_core::{RetryPolicy, ServeStats};
