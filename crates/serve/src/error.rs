//! Typed serving errors: admission shed, degradation-ladder exhaustion,
//! and server teardown.

/// Why a submitted job did not produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control shed the job: the tenant's own queue bound was
    /// reached. Back off and resubmit.
    TenantQueueFull {
        /// The over-budget tenant.
        tenant: String,
        /// Its configured queue depth.
        depth: usize,
    },
    /// Admission control shed the job: the server-wide submission queue
    /// bound was reached (every tenant is backed up).
    Saturated {
        /// The configured global queue depth.
        depth: usize,
    },
    /// The job failed on its primary context, exhausted the retry budget,
    /// and (when a fallback context is configured) failed there too. The
    /// pool itself survives; only this job's handle resolves with an error.
    JobFailed {
        /// The submitting tenant.
        tenant: String,
        /// Attempts spent across the degradation ladder (primary retries
        /// plus the fallback attempt, when one ran).
        attempts: u32,
        /// The final attempt's error (or panic payload) rendered to text.
        error: String,
    },
    /// The server shut down before the job could run (or the handle's
    /// server side was dropped).
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::TenantQueueFull { tenant, depth } => {
                write!(f, "tenant {tenant:?} queue full (depth {depth}); job shed")
            }
            ServeError::Saturated { depth } => {
                write!(f, "server saturated (global queue depth {depth}); job shed")
            }
            ServeError::JobFailed {
                tenant,
                attempts,
                error,
            } => write!(
                f,
                "job from tenant {tenant:?} failed after {attempts} attempt(s): {error}"
            ),
            ServeError::Shutdown => write!(f, "server shut down before the job ran"),
        }
    }
}

impl std::error::Error for ServeError {}
