//! The modeled per-device pipeline: three engines (H2D, compute, D2H)
//! with monotone free times, the same accounting `examples/stream_overlap.rs`
//! demonstrates for one context and the shard runner uses for halo overlap.
//!
//! Dispatch order across devices keys off [`Engine::ready`]: with overlap
//! on, a device becomes ready for its next job once the previous job has
//! *started* compute — so the next job's upload runs under the current
//! job's kernels (double buffering). With overlap off the whole device
//! serializes, which is the A/B lever the bench tables pull.

use crate::job::Phases;

#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Engine {
    h2d_free: u64,
    compute_free: u64,
    d2h_free: u64,
    ready_at: u64,
}

impl Engine {
    /// Earliest modeled time this device should be handed its next job.
    pub(crate) fn ready(&self) -> u64 {
        self.ready_at
    }

    /// Modeled time the device drains completely.
    pub(crate) fn drained(&self) -> u64 {
        self.d2h_free
    }

    /// Push one job through the pipeline starting no earlier than `t`.
    /// Returns `(start, completion)` on the modeled clock.
    pub(crate) fn admit(&mut self, t: u64, p: &Phases, overlap: bool) -> (u64, u64) {
        if overlap {
            let h2d_start = t.max(self.h2d_free);
            let h2d_done = h2d_start + p.h2d;
            self.h2d_free = h2d_done;
            let compute_start = h2d_done.max(self.compute_free);
            let compute_done = compute_start + p.compute;
            self.compute_free = compute_done;
            let d2h_start = compute_done.max(self.d2h_free);
            let done = d2h_start + p.d2h;
            self.d2h_free = done;
            // Ready again once this job is on the compute engine: the next
            // job's H2D overlaps this one's kernels.
            self.ready_at = compute_start.max(h2d_start);
            (h2d_start, done)
        } else {
            let start = t.max(self.d2h_free);
            let done = start + p.total();
            self.h2d_free = done;
            self.compute_free = done;
            self.d2h_free = done;
            self.ready_at = done;
            (start, done)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phases(h2d: u64, compute: u64, d2h: u64) -> Phases {
        Phases { h2d, compute, d2h }
    }

    #[test]
    fn overlapped_jobs_pipeline_and_serialized_jobs_sum() {
        let p = phases(10, 100, 10);
        let mut ov = Engine::default();
        let (s1, d1) = ov.admit(0, &p, true);
        assert_eq!((s1, d1), (0, 120));
        // Device is ready at compute start (t=10), and the second job's
        // upload hides under the first job's kernels.
        assert_eq!(ov.ready(), 10);
        let (s2, d2) = ov.admit(ov.ready(), &p, true);
        assert_eq!(s2, 10);
        assert_eq!(d2, 220, "compute engine back-to-back: 10+100+100+10");

        let mut ser = Engine::default();
        let (_, d1) = ser.admit(0, &p, false);
        assert_eq!(d1, 120);
        let (s2, d2) = ser.admit(0, &p, false);
        assert_eq!((s2, d2), (120, 240), "no overlap: strictly serial");
    }

    #[test]
    fn compute_only_phases_serialize_even_with_overlap() {
        let p = phases(0, 50, 0);
        let mut e = Engine::default();
        let (_, d1) = e.admit(0, &p, true);
        let (_, d2) = e.admit(0, &p, true);
        assert_eq!((d1, d2), (50, 100));
        assert_eq!(e.drained(), 100);
    }
}
