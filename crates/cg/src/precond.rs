//! Preconditioned CG — the extension the paper's §V-C sets aside ("we
//! implemented the plain CG algorithm without a precondition ... this
//! simplifies the study"). HPCCG and MiniFE both normally run
//! Jacobi-style preconditioning; this module restores it on top of the
//! same RACC constructs.

use racc_blas::portable as blas;
use racc_core::{Array1, Backend, Context, KernelProfile, RaccError};

use crate::csr::Csr;
use crate::solver::LinearOperator;
use crate::tridiag::Tridiag;
use crate::CgResult;

/// A preconditioner: applies `z = M⁻¹ r`.
pub trait Preconditioner<B: Backend> {
    /// Apply the inverse preconditioner.
    fn apply(&self, ctx: &Context<B>, r: &Array1<f64>, z: &Array1<f64>);
}

/// The identity preconditioner (PCG degenerates to plain CG).
#[derive(Debug, Default, Clone, Copy)]
pub struct IdentityPrecond;

impl<B: Backend> Preconditioner<B> for IdentityPrecond {
    fn apply(&self, ctx: &Context<B>, r: &Array1<f64>, z: &Array1<f64>) {
        ctx.copy_array(r, z).expect("same-length copy");
    }
}

/// Jacobi (diagonal) preconditioning: `z[i] = r[i] / A[i][i]`, one
/// element-wise `parallel_for`.
#[derive(Debug)]
pub struct JacobiPrecond {
    inv_diag: Array1<f64>,
}

impl JacobiPrecond {
    /// Build from a tridiagonal operator's diagonal.
    pub fn from_tridiag<B: Backend>(ctx: &Context<B>, a: &Tridiag) -> Result<Self, RaccError> {
        Self::from_diagonal(ctx, &a.diag)
    }

    /// Build from a CSR operator's diagonal.
    pub fn from_csr<B: Backend>(ctx: &Context<B>, a: &Csr) -> Result<Self, RaccError> {
        let diag: Vec<f64> = (0..a.nrows()).map(|i| a.get(i, i)).collect();
        Self::from_diagonal(ctx, &diag)
    }

    /// Build from an explicit diagonal (all entries must be nonzero).
    pub fn from_diagonal<B: Backend>(ctx: &Context<B>, diag: &[f64]) -> Result<Self, RaccError> {
        if let Some(i) = diag.iter().position(|&d| d == 0.0) {
            return Err(RaccError::InvalidConfig(format!(
                "Jacobi preconditioner: zero diagonal entry at row {i}"
            )));
        }
        let inv: Vec<f64> = diag.iter().map(|d| 1.0 / d).collect();
        Ok(JacobiPrecond {
            inv_diag: ctx.array_from(&inv)?,
        })
    }
}

impl<B: Backend> Preconditioner<B> for JacobiPrecond {
    fn apply(&self, ctx: &Context<B>, r: &Array1<f64>, z: &Array1<f64>) {
        let n = r.len();
        let (rv, zv, dv) = (r.view(), z.view_mut(), self.inv_diag.view());
        ctx.parallel_for(
            n,
            &KernelProfile::new("jacobi-precond", 1.0, 16.0, 8.0),
            move |i| {
                zv.set(i, rv.get(i) * dv.get(i));
            },
        );
    }
}

/// Solve `A x = b` with preconditioned CG from the zero initial guess.
/// Returns the result record and the solution array.
pub fn solve_preconditioned<B, Op, P>(
    ctx: &Context<B>,
    op: &Op,
    precond: &P,
    b: &Array1<f64>,
    tol: f64,
    max_iters: usize,
) -> Result<(CgResult, Array1<f64>), RaccError>
where
    B: Backend,
    Op: LinearOperator<B>,
    P: Preconditioner<B>,
{
    assert_eq!(op.n(), b.len(), "operator/rhs dimension mismatch");
    let n = b.len();
    let x = ctx.zeros::<f64>(n)?;
    let r = ctx.zeros::<f64>(n)?;
    let z = ctx.zeros::<f64>(n)?;
    let p = ctx.zeros::<f64>(n)?;
    let s = ctx.zeros::<f64>(n)?;
    ctx.copy_array(b, &r)?;
    precond.apply(ctx, &r, &z);
    ctx.copy_array(&z, &p)?;
    let mut rz = blas::dot(ctx, &r, &z);
    let mut residual = blas::nrm2(ctx, &r);
    if residual <= tol {
        return Ok((
            CgResult {
                iterations: 0,
                residual,
                converged: true,
            },
            x,
        ));
    }
    for iter in 1..=max_iters {
        op.apply(&p, &s);
        let ps = blas::dot(ctx, &p, &s);
        let alpha = rz / ps;
        blas::axpy(ctx, alpha, &x, &p);
        blas::axpy(ctx, -alpha, &r, &s);
        residual = blas::nrm2(ctx, &r);
        if residual <= tol {
            return Ok((
                CgResult {
                    iterations: iter,
                    residual,
                    converged: true,
                },
                x,
            ));
        }
        precond.apply(ctx, &r, &z);
        let rz_new = blas::dot(ctx, &r, &z);
        let beta = rz_new / rz;
        blas::axpby(ctx, 1.0, &z, beta, &p);
        rz = rz_new;
    }
    Ok((
        CgResult {
            iterations: max_iters,
            residual,
            converged: false,
        },
        x,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use crate::tridiag::DeviceTridiag;
    use racc_core::{SerialBackend, ThreadsBackend};

    /// An SPD tridiagonal system whose diagonal spreads smoothly over three
    /// orders of magnitude — a wide eigenvalue spectrum that slows plain CG
    /// and that Jacobi scaling collapses.
    fn ill_conditioned(n: usize) -> Tridiag {
        let diag: Vec<f64> = (0..n).map(|i| 3.0 + 3000.0 * i as f64 / n as f64).collect();
        Tridiag::new(vec![1.0; n], diag, vec![1.0; n])
    }

    #[test]
    fn jacobi_pcg_solves_ill_conditioned_system_faster() {
        let ctx = Context::new(ThreadsBackend::with_threads(4));
        let n = 2000;
        let a = ill_conditioned(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 9) as f64) - 4.0).collect();
        let mut b_host = vec![0.0; n];
        a.matvec_ref(&x_true, &mut b_host);
        let da = DeviceTridiag::upload(&ctx, &a).unwrap();
        let b = ctx.array_from(&b_host).unwrap();

        let (plain, _) = solve(&ctx, &da, &b, 1e-8, 500).unwrap();
        let pre = JacobiPrecond::from_tridiag(&ctx, &a).unwrap();
        let (pcg, x) = solve_preconditioned(&ctx, &da, &pre, &b, 1e-8, 500).unwrap();

        assert!(pcg.converged, "PCG residual {}", pcg.residual);
        assert!(
            pcg.iterations < plain.iterations,
            "PCG {} must beat CG {}",
            pcg.iterations,
            plain.iterations
        );
        let got = ctx.to_host(&x).unwrap();
        let direct = a.thomas_solve(&b_host);
        for (g, w) in got.iter().zip(&direct) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn identity_precond_matches_plain_cg_trajectory() {
        let ctx = Context::new(SerialBackend::new());
        let n = 600;
        let a = Tridiag::diagonally_dominant(n);
        let da = DeviceTridiag::upload(&ctx, &a).unwrap();
        let b = ctx.array_from_fn(n, |i| ((i % 5) as f64) - 2.0).unwrap();
        let (plain, _) = solve(&ctx, &da, &b, 1e-10, 200).unwrap();
        let (ident, _) = solve_preconditioned(&ctx, &da, &IdentityPrecond, &b, 1e-10, 200).unwrap();
        assert!(ident.converged);
        // Identity-PCG is algebraically plain CG; iteration counts match
        // (tolerances are applied to the same residual norms).
        assert_eq!(ident.iterations, plain.iterations);
    }

    #[test]
    fn jacobi_on_csr_laplacian() {
        let ctx = Context::new(ThreadsBackend::with_threads(2));
        let m = Csr::laplacian_2d(16, 16);
        let n = m.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) * 0.5).collect();
        let mut b_host = vec![0.0; n];
        m.matvec_ref(&x_true, &mut b_host);
        let dm = crate::csr::DeviceCsr::upload(&ctx, &m).unwrap();
        let pre = JacobiPrecond::from_csr(&ctx, &m).unwrap();
        let b = ctx.array_from(&b_host).unwrap();
        let (result, x) = solve_preconditioned(&ctx, &dm, &pre, &b, 1e-9, 2000).unwrap();
        assert!(result.converged);
        let got = ctx.to_host(&x).unwrap();
        for (g, w) in got.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_diagonal_is_rejected() {
        let ctx = Context::new(SerialBackend::new());
        let err = JacobiPrecond::from_diagonal(&ctx, &[1.0, 0.0, 2.0]).unwrap_err();
        assert!(err.to_string().contains("zero diagonal"), "{err}");
    }
}
