//! `hpccg` — the HPCCG-style mini-app driver.
//!
//! Mirrors the original HPCCG benchmark's shape: build a sparse SPD system,
//! run CG to a tolerance, and report iteration counts, residuals, and
//! modeled FLOP rates per backend.
//!
//! ```text
//! cargo run --release -p racc-cg --bin hpccg -- [options]
//!   --n <int>        tridiagonal dimension (default 1_000_000)
//!   --grid <int>     also solve a 2D Laplacian of grid x grid (default 48)
//!   --nx <int>       also solve the HPCCG 27-point 3D system, nx^3 (default 0 = skip)
//!   --tol <float>    convergence tolerance on ||r|| (default 1e-9)
//!   --max-iters <n>  iteration cap (default 500)
//!   --backend <key>  serial|threads|cudasim|hipsim|oneapisim (default: preferences)
//!   --all-backends   run the tridiagonal solve on every compiled backend
//! ```

use racc_cg::csr::{Csr, DeviceCsr};
use racc_cg::solver::solve;
use racc_cg::tridiag::{DeviceTridiag, Tridiag};
use racc_core::{Backend, Context};

struct Options {
    n: usize,
    grid: usize,
    nx: usize,
    tol: f64,
    max_iters: usize,
    backend: Option<String>,
    all_backends: bool,
}

fn parse_args() -> Options {
    let mut opts = Options {
        n: 1_000_000,
        grid: 48,
        nx: 0,
        tol: 1e-9,
        max_iters: 500,
        backend: None,
        all_backends: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| -> &str {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--n" => {
                opts.n = need_value(i).parse().expect("--n integer");
                i += 2;
            }
            "--grid" => {
                opts.grid = need_value(i).parse().expect("--grid integer");
                i += 2;
            }
            "--nx" => {
                opts.nx = need_value(i).parse().expect("--nx integer");
                i += 2;
            }
            "--tol" => {
                opts.tol = need_value(i).parse().expect("--tol float");
                i += 2;
            }
            "--max-iters" => {
                opts.max_iters = need_value(i).parse().expect("--max-iters integer");
                i += 2;
            }
            "--backend" => {
                opts.backend = Some(need_value(i).to_string());
                i += 2;
            }
            "--all-backends" => {
                opts.all_backends = true;
                i += 1;
            }
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// FLOPs of one CG iteration on a tridiagonal system of dimension n:
/// matvec (5n) + 2 dots (2·2n) + 2 axpy (2·2n) + axpby (3n).
fn cg_iter_flops(n: usize) -> f64 {
    (5 + 4 + 4 + 3) as f64 * n as f64
}

fn run_tridiag<B: Backend>(ctx: &Context<B>, opts: &Options) {
    let a = Tridiag::diagonally_dominant(opts.n);
    let b: Vec<f64> = (0..opts.n).map(|i| 1.0 + ((i % 10) as f64) * 0.1).collect();
    let da = DeviceTridiag::upload(ctx, &a).expect("upload A");
    let db = ctx.array_from(&b).expect("upload b");
    ctx.reset_timeline();
    let t0 = std::time::Instant::now();
    let (result, _ws) = solve(ctx, &da, &db, opts.tol, opts.max_iters).expect("solve");
    let wall = t0.elapsed();
    let modeled_s = ctx.modeled_ns() as f64 / 1e9;
    let flops = cg_iter_flops(opts.n) * result.iterations as f64;
    println!(
        "  {:<46} {:>4} iters  ||r|| {:>9.2e}  modeled {:>9.3} ms  {:>8.2} GFLOP/s (modeled)  [{:?} wall]",
        ctx.name(),
        result.iterations,
        result.residual,
        modeled_s * 1e3,
        flops / modeled_s / 1e9,
        wall
    );
    if !result.converged {
        println!(
            "    WARNING: did not converge within {} iterations",
            opts.max_iters
        );
    }
}

/// Build the context the options ask for: explicit `--backend`, or the
/// preference-selected default. Exits with a diagnostic on a bad key.
fn selected_context(opts: &Options) -> racc::Ctx {
    let mut builder = racc::builder();
    if let Some(key) = &opts.backend {
        builder = builder.backend(key);
    }
    builder.build().unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

fn main() {
    let opts = parse_args();
    println!(
        "HPCCG mini-app: tridiagonal N = {}, tol = {:.0e}, max {} iterations",
        opts.n, opts.tol, opts.max_iters
    );

    if opts.all_backends {
        for key in racc::available_backends() {
            let ctx = racc::builder().backend(key).build().expect("backend");
            run_tridiag(&ctx, &opts);
        }
    } else {
        let ctx = selected_context(&opts);
        run_tridiag(&ctx, &opts);
    }

    // The original HPCCG problem: the 27-point 3D operator.
    if opts.nx >= 2 {
        let ctx = selected_context(&opts);
        let m = Csr::hpccg_27pt(opts.nx, opts.nx, opts.nx);
        let n = m.nrows();
        let b = vec![1.0; n];
        let dm = DeviceCsr::upload(&ctx, &m).expect("upload 27pt operator");
        let db = ctx.array_from(&b).expect("upload rhs");
        ctx.reset_timeline();
        let (result, _ws) = solve(&ctx, &dm, &db, opts.tol, opts.max_iters).expect("solve");
        let modeled_s = ctx.modeled_ns() as f64 / 1e9;
        // 27-point matvec: ~2 flops per nonzero, plus the BLAS-1 tail.
        let flops = (2.0 * m.nnz() as f64 + 11.0 * n as f64) * result.iterations as f64;
        println!(
            "\nHPCCG 27-point {0}^3 ({1} unknowns, {2} nnz): {3} iters, ||r|| {4:.2e}, \
             modeled {5:.3} ms, {6:.2} GFLOP/s (modeled)",
            opts.nx,
            n,
            m.nnz(),
            result.iterations,
            result.residual,
            modeled_s * 1e3,
            flops / modeled_s / 1e9
        );
    }

    // The MiniFE-like 2D Laplacian through the CSR substrate.
    if opts.grid >= 4 {
        let ctx = selected_context(&opts);
        let m = Csr::laplacian_2d(opts.grid, opts.grid);
        let n = m.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) * 0.25).collect();
        let mut rhs = vec![0.0; n];
        m.matvec_ref(&x_true, &mut rhs);
        let dm = DeviceCsr::upload(&ctx, &m).expect("upload Laplacian");
        let db = ctx.array_from(&rhs).expect("upload rhs");
        ctx.reset_timeline();
        let (result, ws) = solve(&ctx, &dm, &db, opts.tol, 20 * opts.max_iters).expect("solve");
        let x = ctx.to_host(&ws.x).expect("download");
        let max_err = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        println!(
            "\n2D Laplacian {0}x{0} ({1} unknowns, {2} nnz): {3} iters, ||r|| {4:.2e}, max err {5:.2e}, modeled {6:.3} ms",
            opts.grid,
            n,
            m.nnz(),
            result.iterations,
            result.residual,
            max_err,
            ctx.modeled_ns() as f64 / 1e6
        );
    }
}
