//! Device-specific CG iterations — the comparison codes of Fig. 13.
//!
//! Each vendor struct owns the CG vectors on its device, applies the
//! tridiagonal matvec with a hand-written vendor kernel, and composes the
//! vendor BLAS of `racc-blas` for the dots and AXPYs. `iterate()` performs
//! one CG iteration and returns its modeled nanoseconds — the unit the
//! paper measures at N = 100M.

use racc_blas::vendor as vblas;
use racc_core::cpumodel::CpuSpec;
use racc_gpusim::KernelCost;
use racc_threadpool::ThreadPool;

use crate::tridiag::Tridiag;
use crate::tridiag_matvec_profile;

fn matvec_cost() -> KernelCost {
    let p = tridiag_matvec_profile();
    KernelCost::new(
        p.flops_per_iter,
        p.bytes_read_per_iter,
        p.bytes_written_per_iter,
        p.coalescing,
    )
}

macro_rules! gpu_cg {
    (
        $(#[$doc:meta])*
        $name:ident, $apimod:ident, $ctxty:ty, $new_ctx:expr, $arr:ident, $mkarr:ident
    ) => {
        $(#[$doc])*
        pub struct $name {
            api: $ctxty,
            n: usize,
            sub: racc_gpusim::DeviceBuffer<f64>,
            diag: racc_gpusim::DeviceBuffer<f64>,
            sup: racc_gpusim::DeviceBuffer<f64>,
            r: racc_gpusim::DeviceBuffer<f64>,
            p: racc_gpusim::DeviceBuffer<f64>,
            s: racc_gpusim::DeviceBuffer<f64>,
            x: racc_gpusim::DeviceBuffer<f64>,
            rr: f64,
        }

        impl $name {
            /// Set up `A x = b` on a fresh simulated device (zero initial
            /// guess, so `r = p = b`).
            pub fn new(a: &Tridiag, b: &[f64]) -> Self {
                let n = a.n();
                assert_eq!(b.len(), n);
                let api = $new_ctx;
                let sub = api.$mkarr(&a.sub).expect("sub");
                let diag = api.$mkarr(&a.diag).expect("diag");
                let sup = api.$mkarr(&a.sup).expect("sup");
                let r = api.$mkarr(b).expect("r");
                let p = api.$mkarr(b).expect("p");
                let s = api.zeros::<f64>(n).expect("s");
                let x = api.zeros::<f64>(n).expect("x");
                let (rr, _) = vblas::$apimod::dot(&api, &r, &r);
                $name {
                    api,
                    n,
                    sub,
                    diag,
                    sup,
                    r,
                    p,
                    s,
                    x,
                    rr,
                }
            }

            /// Hand-written tridiagonal matvec kernel: `s = A p`.
            fn matvec(&self) {
                let n = self.n;
                let sub = self.api.view(&self.sub).expect("own");
                let diag = self.api.view(&self.diag).expect("own");
                let sup = self.api.view(&self.sup).expect("own");
                let pv = self.api.view(&self.p).expect("own");
                let sv = self.api.view_mut(&self.s).expect("own");
                let threads = 256u32;
                let blocks = n.div_ceil(threads as usize) as u32;
                self.api
                    .launch(threads, blocks, 0, matvec_cost(), move |t| {
                        let i = t.global_id_x();
                        if i >= n {
                            return;
                        }
                        let v = if n == 1 {
                            diag.get(0) * pv.get(0)
                        } else if i == 0 {
                            diag.get(0) * pv.get(0) + sup.get(0) * pv.get(1)
                        } else if i == n - 1 {
                            sub.get(i) * pv.get(i - 1) + diag.get(i) * pv.get(i)
                        } else {
                            sub.get(i) * pv.get(i - 1)
                                + diag.get(i) * pv.get(i)
                                + sup.get(i) * pv.get(i + 1)
                        };
                        sv.set(i, v);
                    })
                    .expect("matvec launch");
            }

            /// One CG iteration; returns `(residual_norm, modeled_ns)`.
            pub fn iterate(&mut self) -> (f64, u64) {
                let e0 = self.api.record_event();
                self.matvec();
                let (ps, _) = vblas::$apimod::dot(&self.api, &self.p, &self.s);
                let alpha = self.rr / ps;
                vblas::$apimod::axpy(&self.api, alpha, &self.x, &self.p);
                vblas::$apimod::axpy(&self.api, -alpha, &self.r, &self.s);
                let (rr_new, _) = vblas::$apimod::dot(&self.api, &self.r, &self.r);
                let beta = rr_new / self.rr;
                // p = r + beta p, as one hand-written kernel.
                {
                    let n = self.n;
                    let rv = self.api.view(&self.r).expect("own");
                    let pv = self.api.view_mut(&self.p).expect("own");
                    let threads = 256u32;
                    let blocks = n.div_ceil(threads as usize) as u32;
                    self.api
                        .launch(
                            threads,
                            blocks,
                            0,
                            KernelCost::new(3.0, 16.0, 8.0, 1.0),
                            move |t| {
                                let i = t.global_id_x();
                                if i < n {
                                    pv.set(i, rv.get(i) + beta * pv.get(i));
                                }
                            },
                        )
                        .expect("update launch");
                }
                self.rr = rr_new;
                let e1 = self.api.record_event();
                (rr_new.sqrt(), e0.elapsed_ns(&e1))
            }

            /// Squared residual norm.
            pub fn rr(&self) -> f64 {
                self.rr
            }

            /// Download the current iterate.
            pub fn solution(&self) -> Vec<f64> {
                self.api.to_host(&self.x).expect("download")
            }
        }
    };
}

gpu_cg!(
    /// CUDA-specific CG on the simulated A100.
    CudaCg,
    cuda,
    racc_cudasim::Cuda,
    racc_cudasim::Cuda::new(),
    CuArray,
    cu_array
);

gpu_cg!(
    /// HIP-specific CG on the simulated MI100.
    HipCg,
    hip,
    racc_hipsim::Hip,
    racc_hipsim::Hip::new(),
    RocArray,
    roc_array
);

gpu_cg!(
    /// oneAPI-specific CG on the simulated Max 1550.
    OneApiCg,
    oneapi,
    racc_oneapisim::OneApi,
    racc_oneapisim::OneApi::new(),
    OneArray,
    one_array
);

/// CPU device-specific CG: direct thread-pool loops, CPU-model timing.
pub struct ThreadsCg {
    pool: ThreadPool,
    cpu: CpuSpec,
    a: Tridiag,
    r: Vec<f64>,
    p: Vec<f64>,
    s: Vec<f64>,
    x: Vec<f64>,
    rr: f64,
}

impl ThreadsCg {
    /// Set up `A x = b` over a fresh pool.
    pub fn new(threads: usize, a: Tridiag, b: &[f64]) -> Self {
        let n = a.n();
        assert_eq!(b.len(), n);
        let pool = ThreadPool::new(threads);
        let cpu = CpuSpec::epyc_7742_rome();
        let (rr, _) = vblas::threads::dot(&pool, &cpu, b, b);
        ThreadsCg {
            pool,
            cpu,
            a,
            r: b.to_vec(),
            p: b.to_vec(),
            s: vec![0.0; n],
            x: vec![0.0; n],
            rr,
        }
    }

    fn matvec(&mut self) {
        let n = self.a.n();
        let (sub, diag, sup) = (&self.a.sub, &self.a.diag, &self.a.sup);
        let p = &self.p;
        let s = &mut self.s;
        self.pool.parallel_for_slices(s, |offset, block| {
            for (bi, out) in block.iter_mut().enumerate() {
                let i = offset + bi;
                *out = if n == 1 {
                    diag[0] * p[0]
                } else if i == 0 {
                    diag[0] * p[0] + sup[0] * p[1]
                } else if i == n - 1 {
                    sub[i] * p[i - 1] + diag[i] * p[i]
                } else {
                    sub[i] * p[i - 1] + diag[i] * p[i] + sup[i] * p[i + 1]
                };
            }
        });
    }

    /// One CG iteration; returns `(residual_norm, modeled_ns)`.
    pub fn iterate(&mut self) -> (f64, u64) {
        let n = self.a.n();
        let mut total_ns = 0u64;
        self.matvec();
        total_ns += self.cpu.kernel_time_ns(n, &tridiag_matvec_profile()) as u64;
        let (ps, ns) = vblas::threads::dot(&self.pool, &self.cpu, &self.p, &self.s);
        total_ns += ns;
        let alpha = self.rr / ps;
        total_ns += vblas::threads::axpy(&self.pool, &self.cpu, alpha, &mut self.x, &self.p);
        total_ns += vblas::threads::axpy(&self.pool, &self.cpu, -alpha, &mut self.r, &self.s);
        let (rr_new, ns) = vblas::threads::dot(&self.pool, &self.cpu, &self.r, &self.r);
        total_ns += ns;
        let beta = rr_new / self.rr;
        let r = &self.r;
        let p = &mut self.p;
        self.pool.parallel_for_slices(p, |offset, block| {
            for (bi, pi) in block.iter_mut().enumerate() {
                *pi = r[offset + bi] + beta * *pi;
            }
        });
        total_ns += self
            .cpu
            .kernel_time_ns(n, &racc_core::KernelProfile::new("axpby", 3.0, 16.0, 8.0))
            as u64;
        self.rr = rr_new;
        (rr_new.sqrt(), total_ns)
    }

    /// Squared residual norm.
    pub fn rr(&self) -> f64 {
        self.rr
    }

    /// The current iterate.
    pub fn solution(&self) -> &[f64] {
        &self.x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system(n: usize) -> (Tridiag, Vec<f64>, Vec<f64>) {
        let a = Tridiag::diagonally_dominant(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 11) % 6) as f64 - 2.5).collect();
        let mut b = vec![0.0; n];
        a.matvec_ref(&x_true, &mut b);
        (a, b, x_true)
    }

    fn assert_solves(solution: &[f64], x_true: &[f64]) {
        for (got, want) in solution.iter().zip(x_true) {
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn cuda_cg_converges() {
        let (a, b, x_true) = system(1500);
        let mut cg = CudaCg::new(&a, &b);
        let mut steps = 0;
        while cg.rr().sqrt() > 1e-9 && steps < 200 {
            let (_res, ns) = cg.iterate();
            assert!(ns > 0);
            steps += 1;
        }
        assert!(steps < 100, "diag-dominant system converges fast: {steps}");
        assert_solves(&cg.solution(), &x_true);
    }

    #[test]
    fn hip_cg_converges() {
        let (a, b, x_true) = system(1000);
        let mut cg = HipCg::new(&a, &b);
        for _ in 0..80 {
            cg.iterate();
        }
        assert_solves(&cg.solution(), &x_true);
    }

    #[test]
    fn oneapi_cg_converges() {
        let (a, b, x_true) = system(1000);
        let mut cg = OneApiCg::new(&a, &b);
        for _ in 0..80 {
            cg.iterate();
        }
        assert_solves(&cg.solution(), &x_true);
    }

    #[test]
    fn threads_cg_converges() {
        let (a, b, x_true) = system(3000);
        let mut cg = ThreadsCg::new(4, a, &b);
        let mut steps = 0;
        while cg.rr().sqrt() > 1e-9 && steps < 200 {
            let (_res, ns) = cg.iterate();
            assert!(ns > 0);
            steps += 1;
        }
        assert_solves(cg.solution(), &x_true);
    }

    #[test]
    fn vendor_iterations_agree_with_each_other() {
        let (a, b, _) = system(800);
        let mut cuda = CudaCg::new(&a, &b);
        let mut threads = ThreadsCg::new(2, a, &b);
        for _ in 0..10 {
            let (r1, _) = cuda.iterate();
            let (r2, _) = threads.iterate();
            assert!((r1 - r2).abs() < 1e-9 * r1.max(1e-30), "{r1} vs {r2}");
        }
    }
}
