//! # racc-cg
//!
//! The conjugate-gradient workload of the paper's §V-C: the plain
//! (unpreconditioned) CG algorithm as used by the **HPCCG** benchmark and
//! the **MiniFE** proxy app, on a diagonally dominant tridiagonal system
//! (the paper's `matvecmul`) and, as the more general substrate those apps
//! really sit on, a CSR sparse-matrix operator.
//!
//! Structure:
//!
//! * [`tridiag`] — the paper's tridiagonal operator and its host reference
//!   (including a Thomas-algorithm direct solver used as test ground truth);
//! * [`csr`] — a from-scratch CSR sparse-matrix substrate with a 2D
//!   five-point Laplacian generator (the MiniFE-like problem);
//! * [`solver`] — portable RACC CG over any [`solver::LinearOperator`];
//!   the iteration is the paper's operation mix: one `parallel_for` matvec,
//!   four `parallel_reduce` dots, three `parallel_for` AXPYs, plus the
//!   explicit vector copies of the paper's Fig. 12;
//! * [`vendor`] — device-specific CG per vendor API (composing the vendor
//!   BLAS of `racc-blas` with a hand-written matvec kernel per vendor).

pub mod csr;
pub mod pipelined;
pub mod precond;
pub mod solver;
pub mod tridiag;
pub mod vendor;

use racc_core::KernelProfile;

/// Kernel profile of the tridiagonal matvec: 5 FLOPs, three coefficient
/// reads + three (mostly cached) vector reads + one write per row.
pub const fn tridiag_matvec_profile() -> KernelProfile {
    KernelProfile::new("tridiag-matvec", 5.0, 48.0, 8.0)
}

/// Kernel profile of a CSR matvec row with ~`nnz_per_row` entries.
pub fn csr_matvec_profile(nnz_per_row: f64) -> KernelProfile {
    KernelProfile::new(
        "csr-matvec",
        2.0 * nnz_per_row,
        // column index (4 B…8 B) + value (8 B) + gathered x (8 B) per entry
        24.0 * nnz_per_row,
        8.0,
    )
}

/// Summed profile of the fused tridiagonal matvec+dot: the matvec plus
/// the dot's multiply-accumulate, with the row value forwarded (only the
/// dot's `x` read touches memory).
pub const fn tridiag_matvec_dot_profile() -> KernelProfile {
    KernelProfile::new("fused-tridiag-matvec-dot", 7.0, 56.0, 8.0).as_fused()
}

/// Summed profile of the fused CSR matvec+dot (see
/// [`csr_matvec_profile`]): two extra FLOPs and one extra 8-byte read per
/// row, the row value forwarded.
pub fn csr_matvec_dot_profile(nnz_per_row: f64) -> KernelProfile {
    KernelProfile::new(
        "fused-csr-matvec-dot",
        2.0 * nnz_per_row + 2.0,
        24.0 * nnz_per_row + 8.0,
        8.0,
    )
    .as_fused()
}

/// Result of a CG solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgResult {
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Whether the tolerance was reached within the iteration budget.
    pub converged: bool,
}
