//! The paper's tridiagonal operator and host references.

use racc_core::{Array1, Backend, Context, RaccError};

use crate::tridiag_matvec_profile;

/// A tridiagonal matrix stored as three diagonals, mirroring the paper's
/// `a3` (sub), `a2` (main), `a1` (super) vectors. `sub[0]` and
/// `sup[n-1]` are unused.
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiag {
    /// Sub-diagonal (`a3`), length n.
    pub sub: Vec<f64>,
    /// Main diagonal (`a2`), length n.
    pub diag: Vec<f64>,
    /// Super-diagonal (`a1`), length n.
    pub sup: Vec<f64>,
}

impl Tridiag {
    /// The paper's diagonally dominant system: ones off-diagonal, fours on
    /// the diagonal (SPD, condition number bounded independent of n).
    pub fn diagonally_dominant(n: usize) -> Self {
        Tridiag {
            sub: vec![1.0; n],
            diag: vec![4.0; n],
            sup: vec![1.0; n],
        }
    }

    /// A general constructor.
    pub fn new(sub: Vec<f64>, diag: Vec<f64>, sup: Vec<f64>) -> Self {
        assert_eq!(sub.len(), diag.len());
        assert_eq!(sup.len(), diag.len());
        Tridiag { sub, diag, sup }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.diag.len()
    }

    /// Serial reference matvec `y = A x`.
    pub fn matvec_ref(&self, x: &[f64], y: &mut [f64]) {
        let n = self.n();
        assert_eq!(x.len(), n);
        assert_eq!(y.len(), n);
        if n == 0 {
            return;
        }
        if n == 1 {
            y[0] = self.diag[0] * x[0];
            return;
        }
        y[0] = self.diag[0] * x[0] + self.sup[0] * x[1];
        for i in 1..n - 1 {
            y[i] = self.sub[i] * x[i - 1] + self.diag[i] * x[i] + self.sup[i] * x[i + 1];
        }
        y[n - 1] = self.sub[n - 1] * x[n - 2] + self.diag[n - 1] * x[n - 1];
    }

    /// Direct solve with the Thomas algorithm (test ground truth; O(n)).
    pub fn thomas_solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(b.len(), n);
        if n == 0 {
            return Vec::new();
        }
        let mut c = vec![0.0; n];
        let mut d = vec![0.0; n];
        c[0] = self.sup[0] / self.diag[0];
        d[0] = b[0] / self.diag[0];
        for i in 1..n {
            let m = self.diag[i] - self.sub[i] * c[i - 1];
            c[i] = if i + 1 < n { self.sup[i] / m } else { 0.0 };
            d[i] = (b[i] - self.sub[i] * d[i - 1]) / m;
        }
        let mut x = vec![0.0; n];
        x[n - 1] = d[n - 1];
        for i in (0..n - 1).rev() {
            x[i] = d[i] - c[i] * x[i + 1];
        }
        x
    }
}

/// Device-resident diagonals of a tridiagonal operator, plus the portable
/// RACC matvec (the paper's `matvecmul` as a `parallel_for`).
pub struct DeviceTridiag<'c, B: Backend> {
    ctx: &'c Context<B>,
    /// Sub-diagonal on the device.
    pub sub: Array1<f64>,
    /// Main diagonal on the device.
    pub diag: Array1<f64>,
    /// Super-diagonal on the device.
    pub sup: Array1<f64>,
    n: usize,
}

impl<'c, B: Backend> DeviceTridiag<'c, B> {
    /// Upload a host tridiagonal matrix.
    pub fn upload(ctx: &'c Context<B>, host: &Tridiag) -> Result<Self, RaccError> {
        Ok(DeviceTridiag {
            sub: ctx.array_from(&host.sub)?,
            diag: ctx.array_from(&host.diag)?,
            sup: ctx.array_from(&host.sup)?,
            n: host.n(),
            ctx,
        })
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `y = A x` and `x·y` as **one** `parallel_reduce`: the matvec body
    /// with the dot's map (`x[i] * y[i]`) folded in, the per-row value
    /// forwarded through a register. Same per-row f64 value and the same
    /// reduce primitive as the eager `matvec` + `dot` pair, so the result
    /// is bit-identical; the summed profile (flagged fused) keeps the perf
    /// model and the trace reconciliation exact.
    pub fn matvec_dot(&self, x: &Array1<f64>, y: &Array1<f64>) -> f64 {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        assert!(self.sub.len() == self.n && self.diag.len() == self.n && self.sup.len() == self.n);
        let n = self.n;
        let (sub, diag, sup) = (self.sub.view(), self.diag.view(), self.sup.view());
        let (xv, yv) = (x.view(), y.view_mut());
        let profile = crate::tridiag_matvec_dot_profile();
        // SAFETY: the asserts above pin every view's length to `n`; the
        // branch structure keeps each index in `0..n` (`i - 1` only for
        // `i > 0`, `i + 1` only for `i < n - 1`). Checked accessors here
        // would re-verify bounds after the `y` store, which the optimizer
        // cannot elide through the raw view pointers.
        self.ctx.parallel_reduce(n, &profile, move |i| unsafe {
            let xi = xv.get_unchecked(i);
            let v = if n == 1 {
                diag.get_unchecked(0) * xi
            } else if i == 0 {
                diag.get_unchecked(0) * xi + sup.get_unchecked(0) * xv.get_unchecked(1)
            } else if i == n - 1 {
                sub.get_unchecked(i) * xv.get_unchecked(i - 1) + diag.get_unchecked(i) * xi
            } else {
                sub.get_unchecked(i) * xv.get_unchecked(i - 1)
                    + diag.get_unchecked(i) * xi
                    + sup.get_unchecked(i) * xv.get_unchecked(i + 1)
            };
            yv.set_unchecked(i, v);
            xi * v
        })
    }

    /// `y = A x` as one `parallel_for`, the paper's `matvecmul` kernel.
    pub fn matvec(&self, x: &Array1<f64>, y: &Array1<f64>) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        assert!(self.sub.len() == self.n && self.diag.len() == self.n && self.sup.len() == self.n);
        let n = self.n;
        let (sub, diag, sup) = (self.sub.view(), self.diag.view(), self.sup.view());
        let (xv, yv) = (x.view(), y.view_mut());
        // SAFETY: same in-bounds argument as `matvec_dot`.
        self.ctx
            .parallel_for(n, &tridiag_matvec_profile(), move |i| unsafe {
                let v = if n == 1 {
                    diag.get_unchecked(0) * xv.get_unchecked(0)
                } else if i == 0 {
                    diag.get_unchecked(0) * xv.get_unchecked(0)
                        + sup.get_unchecked(0) * xv.get_unchecked(1)
                } else if i == n - 1 {
                    sub.get_unchecked(i) * xv.get_unchecked(i - 1)
                        + diag.get_unchecked(i) * xv.get_unchecked(i)
                } else {
                    sub.get_unchecked(i) * xv.get_unchecked(i - 1)
                        + diag.get_unchecked(i) * xv.get_unchecked(i)
                        + sup.get_unchecked(i) * xv.get_unchecked(i + 1)
                };
                yv.set_unchecked(i, v);
            });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::{SerialBackend, ThreadsBackend};

    #[test]
    fn reference_matvec_small() {
        // A = [[2, 1, 0], [1, 3, 1], [0, 1, 4]] as tridiag.
        let a = Tridiag::new(
            vec![0.0, 1.0, 1.0],
            vec![2.0, 3.0, 4.0],
            vec![1.0, 1.0, 0.0],
        );
        let mut y = vec![0.0; 3];
        a.matvec_ref(&[1.0, 2.0, 3.0], &mut y);
        assert_eq!(y, vec![4.0, 10.0, 14.0]);
    }

    #[test]
    fn thomas_solves_exactly() {
        let n = 200;
        let a = Tridiag::diagonally_dominant(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 31) % 17) as f64 - 8.0).collect();
        let mut b = vec![0.0; n];
        a.matvec_ref(&x_true, &mut b);
        let x = a.thomas_solve(&b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
    }

    #[test]
    fn device_matvec_matches_reference() {
        for threads in [1usize, 4] {
            let ctx = Context::new(ThreadsBackend::with_threads(threads));
            let n = 5000;
            let a = Tridiag::diagonally_dominant(n);
            let da = DeviceTridiag::upload(&ctx, &a).unwrap();
            let hx: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) - 11.0).collect();
            let x = ctx.array_from(&hx).unwrap();
            let y = ctx.zeros::<f64>(n).unwrap();
            da.matvec(&x, &y);
            let mut want = vec![0.0; n];
            a.matvec_ref(&hx, &mut want);
            assert_eq!(ctx.to_host(&y).unwrap(), want);
        }
    }

    #[test]
    fn degenerate_sizes() {
        let ctx = Context::new(SerialBackend::new());
        // n = 1
        let a = Tridiag::new(vec![0.0], vec![5.0], vec![0.0]);
        let da = DeviceTridiag::upload(&ctx, &a).unwrap();
        let x = ctx.array_from(&[2.0]).unwrap();
        let y = ctx.zeros::<f64>(1).unwrap();
        da.matvec(&x, &y);
        assert_eq!(ctx.to_host(&y).unwrap(), vec![10.0]);
        // n = 2
        let a = Tridiag::new(vec![0.0, 1.0], vec![3.0, 3.0], vec![1.0, 0.0]);
        let mut y2 = vec![0.0; 2];
        a.matvec_ref(&[1.0, 1.0], &mut y2);
        assert_eq!(y2, vec![4.0, 4.0]);
        // n = 0
        let a = Tridiag::new(vec![], vec![], vec![]);
        let mut y0: Vec<f64> = vec![];
        a.matvec_ref(&[], &mut y0);
        assert!(a.thomas_solve(&[]).is_empty());
    }

    #[test]
    fn diagonally_dominant_is_spd_like() {
        // x^T A x > 0 for a few random-ish x (necessary condition for CG).
        let n = 100;
        let a = Tridiag::diagonally_dominant(n);
        for seed in 0..5u64 {
            let x: Vec<f64> = (0..n)
                .map(|i| ((i as u64 * 2654435761 + seed * 97) % 19) as f64 - 9.0)
                .collect();
            let mut ax = vec![0.0; n];
            a.matvec_ref(&x, &mut ax);
            let quad: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
            assert!(quad > 0.0);
        }
    }
}
