//! Pipelined distributed CG as a [`ShardApp`]: the tridiagonal system of
//! `examples/distributed_cg.rs`, tiled so that every reduction is
//! bit-identical at any shard count and the one-scalar matvec halos
//! overlap the interior sweep.
//!
//! Determinism is the whole design:
//!
//! - The vector length is `tiles * tile` and shards split at *tile*
//!   granularity (the split axis counts tiles, not elements).
//! - Every dot product is computed as per-tile partial sums — each tile
//!   summed serially in element order on whatever device owns it — then
//!   allgathered and folded on the host in global tile order. The result
//!   is one canonical `f64` per dot, independent of shard count, backend
//!   geometry, and reshard history; it feeds `alpha`/`beta` identically
//!   everywhere, which is what makes the solution trajectory bit-stable
//!   under chaos recovery.
//! - Iterations run a fixed count (`steps`), keeping every rank in
//!   lockstep SPMD (no data-dependent early exit).

use racc_core::{Array1, Backend, Context, KernelProfile};
use racc_shard::{Shard, ShardApp, ShardError, ShardHandle, Topology};

/// The sharded CG mini-app: solve `A x = b` for the diagonally dominant
/// tridiagonal `A = tri(1, 4, 1)` with `b = A x_true`.
#[derive(Debug, Clone)]
pub struct PipelinedCg {
    /// Number of global tiles (the split axis).
    pub tiles: usize,
    /// Elements per tile.
    pub tile: usize,
    /// CG iterations to run (fixed, for SPMD lockstep).
    pub steps: u64,
}

/// Per-shard device state: the owned slices of the CG vectors plus the
/// carried `r·r` scalar (lazily recomputed after restarts — the
/// deterministic fold makes the recomputed value bit-identical to the
/// carried one).
pub struct CgState {
    x: Array1<f64>,
    r: Array1<f64>,
    p: Array1<f64>,
    s: Array1<f64>,
    /// Per-tile partial staging (owned tiles).
    partials: Array1<f64>,
    /// Edge-scalar staging (`p[0]`, `p[local_n-1]`).
    edges: Array1<f64>,
    rr: Option<f64>,
}

impl PipelinedCg {
    /// Global vector length.
    pub fn n(&self) -> usize {
        self.tiles * self.tile
    }

    /// The synthetic exact solution at global element `i`.
    pub fn x_true(i: usize) -> f64 {
        ((i % 11) as f64) * 0.3 - 1.5
    }

    /// `b = A x_true` at global element `i`.
    fn b(&self, i: usize) -> f64 {
        let n = self.n();
        let left = if i > 0 { Self::x_true(i - 1) } else { 0.0 };
        let right = if i + 1 < n { Self::x_true(i + 1) } else { 0.0 };
        left + 4.0 * Self::x_true(i) + right
    }

    /// Deterministic dot: per-tile serial partials on the device, then a
    /// host fold in global tile order via the handle's allgather.
    fn dot<B: Backend>(
        h: &mut ShardHandle<'_, B>,
        state: &CgState,
        a: &Array1<f64>,
        b: &Array1<f64>,
        tile: usize,
        owned_tiles: usize,
    ) -> Result<f64, ShardError> {
        let (av, bv, pv) = (a.view(), b.view(), state.partials.view_mut());
        h.ctx().parallel_for(
            owned_tiles,
            &KernelProfile::new("cg-tile-dot", 2.0 * tile as f64, 16.0 * tile as f64, 8.0),
            move |t| {
                let mut acc = 0.0;
                for i in t * tile..(t + 1) * tile {
                    acc += av.get(i) * bv.get(i);
                }
                pv.set(t, acc);
            },
        );
        let mine = h.ctx().to_host(&state.partials).expect("partials download");
        let parts = h.allgather(mine)?;
        let mut total = 0.0;
        for part in parts {
            for v in part {
                total += v;
            }
        }
        Ok(total)
    }
}

impl<B: Backend> ShardApp<B> for PipelinedCg {
    type State = CgState;

    fn extent(&self) -> usize {
        self.tiles
    }
    fn slab_len(&self) -> usize {
        3 * self.tile
    }
    fn radius(&self) -> usize {
        1
    }
    fn total_steps(&self) -> u64 {
        self.steps
    }
    fn topology(&self) -> Topology {
        Topology::Open
    }

    fn initial(&self) -> Vec<f64> {
        // x = 0, r = p = b, interleaved [x | r | p] per tile.
        let tile = self.tile;
        let mut snapshot = Vec::with_capacity(self.tiles * 3 * tile);
        for t in 0..self.tiles {
            snapshot.extend(std::iter::repeat_n(0.0, tile));
            for i in t * tile..(t + 1) * tile {
                snapshot.push(self.b(i));
            }
            for i in t * tile..(t + 1) * tile {
                snapshot.push(self.b(i));
            }
        }
        snapshot
    }

    fn init(&self, ctx: &Context<B>, shard: Shard, snapshot: &[f64]) -> CgState {
        let tile = self.tile;
        let slab = 3 * tile;
        let owned = shard.owned();
        let local_n = owned * tile;
        let (mut x, mut r, mut p) = (
            Vec::with_capacity(local_n),
            Vec::with_capacity(local_n),
            Vec::with_capacity(local_n),
        );
        for t in shard.lo..shard.hi {
            let row = &snapshot[t * slab..(t + 1) * slab];
            x.extend_from_slice(&row[..tile]);
            r.extend_from_slice(&row[tile..2 * tile]);
            p.extend_from_slice(&row[2 * tile..]);
        }
        CgState {
            x: ctx.array_from(&x).expect("x alloc"),
            r: ctx.array_from(&r).expect("r alloc"),
            p: ctx.array_from(&p).expect("p alloc"),
            s: ctx.zeros(local_n).expect("s alloc"),
            partials: ctx.zeros(owned).expect("partials alloc"),
            edges: ctx.zeros(2).expect("edges alloc"),
            rr: None,
        }
    }

    fn step(
        &self,
        h: &mut ShardHandle<'_, B>,
        state: &mut CgState,
        _step: u64,
    ) -> Result<(), ShardError> {
        let tile = self.tile;
        let sh = h.shard();
        let owned_tiles = sh.owned();
        let local_n = owned_tiles * tile;

        // Phase 1: read and post the p edge scalars.
        {
            let (pv, ev) = (state.p.view(), state.edges.view_mut());
            h.ctx().parallel_for(
                2,
                &KernelProfile::new("cg-edge-pack", 0.0, 8.0, 8.0),
                move |i| {
                    ev.set(i, pv.get(if i == 0 { 0 } else { local_n - 1 }));
                },
            );
        }
        let edges = h.ctx().to_host(&state.edges).expect("edge download");
        let to_lo = (sh.ghosts_lo() > 0).then(|| vec![edges[0]]);
        let to_hi = (sh.ghosts_hi() > 0).then(|| vec![edges[1]]);
        h.post_halos(to_lo, to_hi)?;

        // Phase 2: interior matvec `s = A p` — every owned element except
        // the two that read a neighbor's p scalar.
        let (skip_first, skip_last) = (sh.ghosts_lo() > 0, sh.ghosts_hi() > 0);
        h.interior(|ctx| {
            let (pv, sv) = (state.p.view(), state.s.view_mut());
            ctx.parallel_for(
                local_n,
                &KernelProfile::new("dist-tridiag", 5.0, 48.0, 8.0),
                move |i| {
                    if (i == 0 && skip_first) || (i == local_n - 1 && skip_last) {
                        return;
                    }
                    let left = if i > 0 { pv.get(i - 1) } else { 0.0 };
                    let right = if i + 1 < local_n { pv.get(i + 1) } else { 0.0 };
                    sv.set(i, left + 4.0 * pv.get(i) + right);
                },
            );
        });

        // Phase 3: complete the halo exchange.
        let (from_lo, from_hi) = h.recv_halos()?;

        // Phase 4: the two ghost-reading elements.
        h.boundary(|ctx| {
            let profile = KernelProfile::new("dist-tridiag-edge", 5.0, 48.0, 8.0);
            if let Some(lh) = from_lo {
                let (pv, sv) = (state.p.view(), state.s.view_mut());
                let halo = lh[0];
                ctx.parallel_for(1, &profile, move |_| {
                    let right = if local_n > 1 { pv.get(1) } else { 0.0 };
                    sv.set(0, halo + 4.0 * pv.get(0) + right);
                });
            }
            if let Some(rh) = from_hi {
                let (pv, sv) = (state.p.view(), state.s.view_mut());
                let halo = rh[0];
                ctx.parallel_for(1, &profile, move |_| {
                    let left = if local_n > 1 {
                        pv.get(local_n - 2)
                    } else {
                        0.0
                    };
                    sv.set(local_n - 1, left + 4.0 * pv.get(local_n - 1) + halo);
                });
            }
        });

        // Scalar recurrences on the canonical folded dots.
        let rr = match state.rr {
            Some(v) => v,
            None => Self::dot(h, state, &state.r, &state.r, tile, owned_tiles)?,
        };
        let ps = Self::dot(h, state, &state.p, &state.s, tile, owned_tiles)?;
        let alpha = rr / ps;

        {
            let (xv, pv) = (state.x.view_mut(), state.p.view());
            h.ctx()
                .parallel_for(local_n, &KernelProfile::axpy(), move |i| {
                    xv.set(i, xv.get(i) + alpha * pv.get(i));
                });
            let (rv, sv) = (state.r.view_mut(), state.s.view());
            h.ctx()
                .parallel_for(local_n, &KernelProfile::axpy(), move |i| {
                    rv.set(i, rv.get(i) - alpha * sv.get(i));
                });
        }

        let rr_new = Self::dot(h, state, &state.r, &state.r, tile, owned_tiles)?;
        let beta = rr_new / rr;
        {
            let (rv, pv) = (state.r.view(), state.p.view_mut());
            h.ctx().parallel_for(
                local_n,
                &KernelProfile::new("axpby", 3.0, 16.0, 8.0),
                move |i| {
                    pv.set(i, rv.get(i) + beta * pv.get(i));
                },
            );
        }
        state.rr = Some(rr_new);
        Ok(())
    }

    fn dump(&self, ctx: &Context<B>, shard: Shard, state: &CgState) -> Vec<f64> {
        let tile = self.tile;
        let x = ctx.to_host(&state.x).expect("x dump");
        let r = ctx.to_host(&state.r).expect("r dump");
        let p = ctx.to_host(&state.p).expect("p dump");
        let mut out = Vec::with_capacity(shard.owned() * 3 * tile);
        for t in 0..shard.owned() {
            out.extend_from_slice(&x[t * tile..(t + 1) * tile]);
            out.extend_from_slice(&r[t * tile..(t + 1) * tile]);
            out.extend_from_slice(&p[t * tile..(t + 1) * tile]);
        }
        out
    }
}

/// Extract the solution vector `x` from a sharded CG outcome field.
pub fn solution_of(field: &[f64], tile: usize) -> Vec<f64> {
    let slab = 3 * tile;
    assert_eq!(field.len() % slab, 0);
    let mut x = Vec::with_capacity(field.len() / 3);
    for t in 0..field.len() / slab {
        x.extend_from_slice(&field[t * slab..t * slab + tile]);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::SerialBackend;
    use racc_shard::{run_sharded, ShardOptions};
    use std::sync::Arc;

    fn run(devices: usize) -> Vec<f64> {
        run_sharded(
            Arc::new(PipelinedCg {
                tiles: 12,
                tile: 16,
                steps: 25,
            }),
            ShardOptions::devices(devices).checkpoint_every(4),
            |_rank| Context::new(SerialBackend::new()),
        )
        .field
    }

    #[test]
    fn sharded_cg_is_bit_identical_at_any_shard_count() {
        let one = run(1);
        for devices in [2, 3, 4] {
            assert_eq!(one, run(devices), "{devices} devices");
        }
    }

    #[test]
    fn sharded_cg_converges_to_the_synthetic_solution() {
        let app = PipelinedCg {
            tiles: 12,
            tile: 16,
            steps: 25,
        };
        let x = solution_of(&run(3), app.tile);
        let max_err = x
            .iter()
            .enumerate()
            .map(|(i, &v)| (v - PipelinedCg::x_true(i)).abs())
            .fold(0.0f64, f64::max);
        assert!(max_err < 1e-8, "CG must converge: max err {max_err}");
    }
}
