//! A compressed-sparse-row matrix substrate.
//!
//! HPCCG and MiniFE apply CG to general sparse operators; this module is
//! that substrate: CSR storage built from triplets, a five-point 2D
//! Laplacian generator (the classic MiniFE-like model problem), a serial
//! reference matvec, and the portable RACC row-parallel matvec.

use racc_core::{Array1, Backend, Context, RaccError};

use crate::csr_matvec_profile;
use crate::tridiag::Tridiag;

/// An immutable CSR sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Row pointer array, length `nrows + 1`.
    pub row_ptr: Vec<usize>,
    /// Column indices, length `nnz`.
    pub col_idx: Vec<usize>,
    /// Nonzero values, length `nnz`.
    pub values: Vec<f64>,
    /// Number of columns.
    pub ncols: usize,
}

impl Csr {
    /// Build from `(row, col, value)` triplets; duplicate entries are
    /// summed, rows/cols validated.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Result<Self, String> {
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); nrows];
        for &(r, c, v) in triplets {
            if r >= nrows || c >= ncols {
                return Err(format!("entry ({r}, {c}) outside {nrows} x {ncols}"));
            }
            per_row[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in &mut per_row {
            row.sort_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < row.len() {
                let c = row[i].0;
                let mut v = 0.0;
                while i < row.len() && row[i].0 == c {
                    v += row[i].1;
                    i += 1;
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Ok(Csr {
            row_ptr,
            col_idx,
            values,
            ncols,
        })
    }

    /// Convert a tridiagonal matrix.
    pub fn from_tridiag(t: &Tridiag) -> Self {
        let n = t.n();
        let mut triplets = Vec::with_capacity(3 * n);
        for i in 0..n {
            if i > 0 {
                triplets.push((i, i - 1, t.sub[i]));
            }
            triplets.push((i, i, t.diag[i]));
            if i + 1 < n {
                triplets.push((i, i + 1, t.sup[i]));
            }
        }
        Csr::from_triplets(n, n, &triplets).expect("valid tridiagonal")
    }

    /// The five-point 2D Laplacian on an `nx × ny` grid with Dirichlet
    /// boundaries: `4` on the diagonal, `-1` to each grid neighbor. SPD.
    pub fn laplacian_2d(nx: usize, ny: usize) -> Self {
        let n = nx * ny;
        let mut triplets = Vec::with_capacity(5 * n);
        let id = |i: usize, j: usize| i * ny + j;
        for i in 0..nx {
            for j in 0..ny {
                let r = id(i, j);
                triplets.push((r, r, 4.0));
                if i > 0 {
                    triplets.push((r, id(i - 1, j), -1.0));
                }
                if i + 1 < nx {
                    triplets.push((r, id(i + 1, j), -1.0));
                }
                if j > 0 {
                    triplets.push((r, id(i, j - 1), -1.0));
                }
                if j + 1 < ny {
                    triplets.push((r, id(i, j + 1), -1.0));
                }
            }
        }
        Csr::from_triplets(n, n, &triplets).expect("valid laplacian")
    }

    /// The 27-point 3D operator of the original **HPCCG** benchmark: on an
    /// `nx × ny × nz` grid, each row couples a node to its full 3x3x3
    /// neighborhood with `-1`, and the diagonal is `27` minus nothing —
    /// i.e. `26` off-diagonal entries of `-1` and `27` on the diagonal for
    /// interior nodes (diagonally dominant, SPD).
    pub fn hpccg_27pt(nx: usize, ny: usize, nz: usize) -> Self {
        let n = nx * ny * nz;
        let id = |i: usize, j: usize, k: usize| (k * ny + j) * nx + i;
        let mut triplets = Vec::with_capacity(27 * n);
        for k in 0..nz {
            for j in 0..ny {
                for i in 0..nx {
                    let r = id(i, j, k);
                    for dk in -1i64..=1 {
                        for dj in -1i64..=1 {
                            for di in -1i64..=1 {
                                let (ii, jj, kk) = (i as i64 + di, j as i64 + dj, k as i64 + dk);
                                if ii < 0
                                    || jj < 0
                                    || kk < 0
                                    || ii >= nx as i64
                                    || jj >= ny as i64
                                    || kk >= nz as i64
                                {
                                    continue;
                                }
                                let c = id(ii as usize, jj as usize, kk as usize);
                                let v = if c == r { 27.0 } else { -1.0 };
                                triplets.push((r, c, v));
                            }
                        }
                    }
                }
            }
        }
        Csr::from_triplets(n, n, &triplets).expect("valid 27-point operator")
    }

    /// A ragged power-law matrix: deterministic in `seed`, square
    /// `n × n`, where row `r`'s nonzero count follows a heavy-tailed
    /// distribution (most rows are short, a few hold up to
    /// `max_nnz_per_row` entries). This is the load-balance stress case
    /// for the row-parallel matvec — a static row split gives a few
    /// participants nearly all the work — used by the `steal` benchmark.
    /// Every row keeps a dominant diagonal so the matrix stays usable as
    /// a CG operator.
    pub fn ragged_power_law(n: usize, max_nnz_per_row: usize, seed: u64) -> Self {
        // Splitmix64: deterministic, dependency-free pseudo-randomness.
        let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut next = move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let cap = max_nnz_per_row.min(n).max(1);
        let mut triplets = Vec::new();
        for r in 0..n {
            // u^3 concentrates mass near 0: ~1/8 of rows exceed half the cap.
            let u = (next() >> 11) as f64 / (1u64 << 53) as f64;
            let extras = ((u * u * u) * cap as f64) as usize;
            let mut row_sum = 0.0;
            for _ in 0..extras {
                let c = (next() % n as u64) as usize;
                if c != r {
                    let v = -((next() % 8) as f64 + 1.0) / 8.0;
                    row_sum += v.abs();
                    triplets.push((r, c, v));
                }
            }
            triplets.push((r, r, row_sum + 1.0));
        }
        Csr::from_triplets(n, n, &triplets).expect("valid power-law matrix")
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Average nonzeros per row.
    pub fn avg_nnz_per_row(&self) -> f64 {
        if self.nrows() == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows() as f64
        }
    }

    /// Serial reference matvec.
    pub fn matvec_ref(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows());
        for (r, yr) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[idx] * x[self.col_idx[idx]];
            }
            *yr = acc;
        }
    }

    /// Dense transpose-check helper: value at `(r, c)` (tests only; O(nnz row)).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
            if self.col_idx[idx] == c {
                return self.values[idx];
            }
        }
        0.0
    }
}

/// Device-resident CSR operator with the portable row-parallel matvec.
pub struct DeviceCsr<'c, B: Backend> {
    ctx: &'c Context<B>,
    row_ptr: Array1<u64>,
    col_idx: Array1<u64>,
    values: Array1<f64>,
    nrows: usize,
    ncols: usize,
    avg_nnz: f64,
}

impl<'c, B: Backend> DeviceCsr<'c, B> {
    /// Upload a host CSR matrix.
    pub fn upload(ctx: &'c Context<B>, host: &Csr) -> Result<Self, RaccError> {
        let row_ptr: Vec<u64> = host.row_ptr.iter().map(|&v| v as u64).collect();
        let col_idx: Vec<u64> = host.col_idx.iter().map(|&v| v as u64).collect();
        Ok(DeviceCsr {
            row_ptr: ctx.array_from(&row_ptr)?,
            col_idx: ctx.array_from(&col_idx)?,
            values: ctx.array_from(&host.values)?,
            nrows: host.nrows(),
            ncols: host.ncols,
            avg_nnz: host.avg_nnz_per_row(),
            ctx,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// `y = A x`: one row per iteration (the scalar-row CSR kernel).
    pub fn matvec(&self, x: &Array1<f64>, y: &Array1<f64>) {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        let (rp, ci, vals) = (self.row_ptr.view(), self.col_idx.view(), self.values.view());
        let (xv, yv) = (x.view(), y.view_mut());
        let profile = csr_matvec_profile(self.avg_nnz);
        self.ctx.parallel_for(self.nrows, &profile, move |r| {
            let start = rp.get(r) as usize;
            let end = rp.get(r + 1) as usize;
            let mut acc = 0.0;
            for idx in start..end {
                acc += vals.get(idx) * xv.get(ci.get(idx) as usize);
            }
            yv.set(r, acc);
        });
    }

    /// `y = A x` and `x·y` as **one** `parallel_reduce` — the row-parallel
    /// matvec with the dot's map folded in, the row value forwarded
    /// through a register. Bit-identical to the eager `matvec` + `dot`
    /// pair (same per-row f64, same reduce primitive and extent).
    pub fn matvec_dot(&self, x: &Array1<f64>, y: &Array1<f64>) -> f64 {
        assert_eq!(x.len(), self.ncols);
        assert_eq!(y.len(), self.nrows);
        let (rp, ci, vals) = (self.row_ptr.view(), self.col_idx.view(), self.values.view());
        let (xv, yv) = (x.view(), y.view_mut());
        let profile = crate::csr_matvec_dot_profile(self.avg_nnz);
        self.ctx.parallel_reduce(self.nrows, &profile, move |r| {
            let start = rp.get(r) as usize;
            let end = rp.get(r + 1) as usize;
            let mut acc = 0.0;
            for idx in start..end {
                acc += vals.get(idx) * xv.get(ci.get(idx) as usize);
            }
            yv.set(r, acc);
            xv.get(r) * acc
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_core::ThreadsBackend;

    #[test]
    fn triplets_build_and_dupes_sum() {
        let m = Csr::from_triplets(2, 3, &[(0, 1, 2.0), (0, 1, 3.0), (1, 0, 1.0), (0, 2, 4.0)])
            .unwrap();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 5.0);
        assert_eq!(m.get(0, 2), 4.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(1, 2), 0.0);
    }

    #[test]
    fn out_of_range_triplets_rejected() {
        assert!(Csr::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(Csr::from_triplets(2, 2, &[(0, 2, 1.0)]).is_err());
    }

    #[test]
    fn csr_from_tridiag_matches() {
        let t = Tridiag::diagonally_dominant(50);
        let m = Csr::from_tridiag(&t);
        let x: Vec<f64> = (0..50).map(|i| (i as f64).cos()).collect();
        let mut y1 = vec![0.0; 50];
        let mut y2 = vec![0.0; 50];
        t.matvec_ref(&x, &mut y1);
        m.matvec_ref(&x, &mut y2);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a - b).abs() < 1e-14);
        }
    }

    #[test]
    fn laplacian_structure() {
        let m = Csr::laplacian_2d(4, 5);
        assert_eq!(m.nrows(), 20);
        // Symmetry.
        for r in 0..20 {
            for idx in m.row_ptr[r]..m.row_ptr[r + 1] {
                let c = m.col_idx[idx];
                assert_eq!(m.get(c, r), m.values[idx], "asymmetric at ({r},{c})");
            }
        }
        // Interior row has 5 entries, corner has 3.
        let interior = 5 + 1;
        assert_eq!(m.row_ptr[interior + 1] - m.row_ptr[interior], 5);
        assert_eq!(m.row_ptr[1] - m.row_ptr[0], 3);
        // Row sums: 0 for interior (4 - 4), positive on boundary.
        let sum: f64 = (m.row_ptr[interior]..m.row_ptr[interior + 1])
            .map(|i| m.values[i])
            .sum();
        assert_eq!(sum, 0.0);
    }

    #[test]
    fn hpccg_27pt_structure_and_spd() {
        let m = Csr::hpccg_27pt(4, 3, 5);
        let n = 4 * 3 * 5;
        assert_eq!(m.nrows(), n);
        // Interior node (1,1,1) has the full 27 entries; corner has 8.
        let interior = (3 + 1) * 4 + 1;
        assert_eq!(m.row_ptr[interior + 1] - m.row_ptr[interior], 27);
        assert_eq!(m.row_ptr[1] - m.row_ptr[0], 8);
        assert_eq!(m.get(interior, interior), 27.0);
        // Symmetric.
        for r in 0..n {
            for idx in m.row_ptr[r]..m.row_ptr[r + 1] {
                assert_eq!(m.get(m.col_idx[idx], r), m.values[idx]);
            }
        }
        // Positive definite on a few vectors (necessary condition).
        for seed in 0..3usize {
            let x: Vec<f64> = (0..n)
                .map(|i| (((i + seed) * 2654435761) % 17) as f64 - 8.0)
                .collect();
            if x.iter().all(|&v| v == 0.0) {
                continue;
            }
            let mut ax = vec![0.0; n];
            m.matvec_ref(&x, &mut ax);
            let quad: f64 = x.iter().zip(&ax).map(|(a, b)| a * b).sum();
            assert!(quad > 0.0, "seed {seed}");
        }
    }

    #[test]
    fn cg_solves_hpccg_27pt_system() {
        use crate::solver::solve;
        let ctx = racc_core::Context::new(ThreadsBackend::with_threads(4));
        let m = Csr::hpccg_27pt(8, 8, 8);
        let n = m.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) * 0.2).collect();
        let mut b = vec![0.0; n];
        m.matvec_ref(&x_true, &mut b);
        let dm = DeviceCsr::upload(&ctx, &m).unwrap();
        let db = ctx.array_from(&b).unwrap();
        let (result, ws) = solve(&ctx, &dm, &db, 1e-10, 500).unwrap();
        assert!(result.converged);
        let x = ctx.to_host(&ws.x).unwrap();
        for (g, w) in x.iter().zip(&x_true) {
            assert!((g - w).abs() < 1e-7);
        }
    }

    #[test]
    fn device_matvec_matches_reference() {
        let ctx = Context::new(ThreadsBackend::with_threads(4));
        let m = Csr::laplacian_2d(17, 13);
        let dm = DeviceCsr::upload(&ctx, &m).unwrap();
        let n = m.nrows();
        let hx: Vec<f64> = (0..n).map(|i| ((i * 7) % 11) as f64 - 5.0).collect();
        let x = ctx.array_from(&hx).unwrap();
        let y = ctx.zeros::<f64>(n).unwrap();
        dm.matvec(&x, &y);
        let mut want = vec![0.0; n];
        m.matvec_ref(&hx, &mut want);
        assert_eq!(ctx.to_host(&y).unwrap(), want);
    }

    #[test]
    fn ragged_power_law_is_deterministic_and_skewed() {
        let a = Csr::ragged_power_law(2048, 256, 7);
        let b = Csr::ragged_power_law(2048, 256, 7);
        assert_eq!(a, b, "same seed, same matrix");
        let c = Csr::ragged_power_law(2048, 256, 8);
        assert_ne!(a, c, "different seed, different matrix");
        // Every row holds its diagonal; row lengths are heavily skewed:
        // the longest row is much longer than the median.
        let mut lens: Vec<usize> = (0..a.nrows())
            .map(|r| a.row_ptr[r + 1] - a.row_ptr[r])
            .collect();
        for r in 0..a.nrows() {
            assert!(a.get(r, r) >= 1.0, "row {r} diagonal");
        }
        lens.sort_unstable();
        let median = lens[lens.len() / 2];
        let max = *lens.last().unwrap();
        assert!(
            max >= 8 * median.max(1),
            "expected heavy tail, median {median} max {max}"
        );
        // Diagonally dominant rows keep it usable as a CG operator.
        let x: Vec<f64> = (0..a.nrows()).map(|i| ((i % 13) as f64) - 6.0).collect();
        let mut y = vec![0.0; a.nrows()];
        a.matvec_ref(&x, &mut y);
    }

    #[test]
    fn empty_matrix() {
        let m = Csr::from_triplets(0, 0, &[]).unwrap();
        assert_eq!(m.nrows(), 0);
        assert_eq!(m.avg_nnz_per_row(), 0.0);
        let mut y: Vec<f64> = vec![];
        m.matvec_ref(&[], &mut y);
    }
}
