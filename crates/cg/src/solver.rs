//! The portable RACC conjugate-gradient solver (the paper's Fig. 12).

use racc_blas::portable as blas;
use racc_core::{Array1, Backend, Context, RaccError};

use crate::csr::DeviceCsr;
use crate::tridiag::DeviceTridiag;
use crate::CgResult;

/// Anything CG can invert: a square operator applied through the RACC
/// constructs.
pub trait LinearOperator<B: Backend> {
    /// Dimension of the (square) operator.
    fn n(&self) -> usize;
    /// `y = A x`.
    fn apply(&self, x: &Array1<f64>, y: &Array1<f64>);
    /// `y = A x`, returning `x·y` — the matvec-then-dot pair at the top
    /// of every CG iteration. The default runs them as two constructs;
    /// operators that can fold the dot's map into the matvec body
    /// override this with a single fused reduction (bit-identical to the
    /// pair, since the same per-row value feeds the same reduce order).
    fn apply_dot(&self, ctx: &Context<B>, x: &Array1<f64>, y: &Array1<f64>) -> f64 {
        self.apply(x, y);
        blas::dot(ctx, x, y)
    }
}

impl<B: Backend> LinearOperator<B> for DeviceTridiag<'_, B> {
    fn n(&self) -> usize {
        self.n()
    }
    fn apply(&self, x: &Array1<f64>, y: &Array1<f64>) {
        self.matvec(x, y)
    }
    fn apply_dot(&self, _ctx: &Context<B>, x: &Array1<f64>, y: &Array1<f64>) -> f64 {
        self.matvec_dot(x, y)
    }
}

impl<B: Backend> LinearOperator<B> for DeviceCsr<'_, B> {
    fn n(&self) -> usize {
        self.nrows()
    }
    fn apply(&self, x: &Array1<f64>, y: &Array1<f64>) {
        self.matvec(x, y)
    }
    fn apply_dot(&self, _ctx: &Context<B>, x: &Array1<f64>, y: &Array1<f64>) -> f64 {
        self.matvec_dot(x, y)
    }
}

/// Device workspace for CG: the vectors of the paper's Fig. 12 (`r`, `p`,
/// `s`, plus the solution), pre-allocated so iteration benchmarks measure
/// compute, not allocation.
pub struct CgWorkspace<B: Backend> {
    /// Residual.
    pub r: Array1<f64>,
    /// Search direction.
    pub p: Array1<f64>,
    /// Matvec output (`s = A p`).
    pub s: Array1<f64>,
    /// Current iterate.
    pub x: Array1<f64>,
    rr: f64,
    _backend: std::marker::PhantomData<B>,
}

impl<B: Backend> CgWorkspace<B> {
    /// Initialize for `A x = b` from the zero initial guess:
    /// `r = p = b`, `x = 0`.
    pub fn new(ctx: &Context<B>, b: &Array1<f64>) -> Result<Self, RaccError> {
        let n = b.len();
        let r = ctx.zeros::<f64>(n)?;
        let p = ctx.zeros::<f64>(n)?;
        let s = ctx.zeros::<f64>(n)?;
        let x = ctx.zeros::<f64>(n)?;
        ctx.copy_array(b, &r)?;
        ctx.copy_array(b, &p)?;
        let rr = blas::dot(ctx, &r, &r);
        Ok(CgWorkspace {
            r,
            p,
            s,
            x,
            rr,
            _backend: std::marker::PhantomData,
        })
    }

    /// Current squared residual norm `r·r`.
    pub fn rr(&self) -> f64 {
        self.rr
    }

    /// One CG iteration — the paper's measured unit (Fig. 13): one matvec,
    /// two reductions, three vector updates, one copy-shaped update.
    /// Returns the updated residual norm.
    ///
    /// When the context's fusion knob is on (`ContextBuilder::fusion` /
    /// `RACC_FUSION=1`) the same iteration runs as three constructs
    /// instead of six — [`LinearOperator::apply_dot`] folds the dot into
    /// the matvec, [`racc_blas::fused::cg_update`] folds both AXPYs into
    /// the second dot — with a bit-identical residual history.
    pub fn iterate<Op: LinearOperator<B>>(&mut self, ctx: &Context<B>, op: &Op) -> f64 {
        if ctx.fusion_enabled() {
            return self.iterate_fused(ctx, op);
        }
        // s = A p
        op.apply(&self.p, &self.s);
        // alpha = (r·r) / (p·s)
        let ps = blas::dot(ctx, &self.p, &self.s);
        let alpha = self.rr / ps;
        // x += alpha p ; r -= alpha s
        blas::axpy(ctx, alpha, &self.x, &self.p);
        blas::axpy(ctx, -alpha, &self.r, &self.s);
        // beta = (r·r)_new / (r·r)_old ; p = r + beta p
        let rr_new = blas::dot(ctx, &self.r, &self.r);
        let beta = rr_new / self.rr;
        blas::axpby(ctx, 1.0, &self.r, beta, &self.p);
        self.rr = rr_new;
        rr_new.sqrt()
    }

    /// The fused iteration: `{s = A p, p·s}` in one reduction, the
    /// α-update `{x += αp, r -= αs, r·r}` in one reduction, and the eager
    /// β-update (it reads the scalar the second reduction just produced,
    /// and its stencil neighbors forbid folding it into the next matvec).
    fn iterate_fused<Op: LinearOperator<B>>(&mut self, ctx: &Context<B>, op: &Op) -> f64 {
        let ps = op.apply_dot(ctx, &self.p, &self.s);
        let alpha = self.rr / ps;
        let rr_new = racc_blas::fused::cg_update(ctx, alpha, &self.x, &self.p, &self.r, &self.s);
        let beta = rr_new / self.rr;
        blas::axpby(ctx, 1.0, &self.r, beta, &self.p);
        self.rr = rr_new;
        rr_new.sqrt()
    }
}

/// Solve `A x = b` from the zero initial guess. Returns the result record;
/// the solution is left in the returned workspace's `x`.
pub fn solve<B: Backend, Op: LinearOperator<B>>(
    ctx: &Context<B>,
    op: &Op,
    b: &Array1<f64>,
    tol: f64,
    max_iters: usize,
) -> Result<(CgResult, CgWorkspace<B>), RaccError> {
    assert_eq!(op.n(), b.len(), "operator/rhs dimension mismatch");
    let mut ws = CgWorkspace::new(ctx, b)?;
    let mut residual = ws.rr().sqrt();
    if residual <= tol {
        return Ok((
            CgResult {
                iterations: 0,
                residual,
                converged: true,
            },
            ws,
        ));
    }
    for iter in 1..=max_iters {
        residual = ws.iterate(ctx, op);
        if residual <= tol {
            return Ok((
                CgResult {
                    iterations: iter,
                    residual,
                    converged: true,
                },
                ws,
            ));
        }
    }
    Ok((
        CgResult {
            iterations: max_iters,
            residual,
            converged: false,
        },
        ws,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use crate::tridiag::Tridiag;
    use racc_core::{SerialBackend, ThreadsBackend};

    #[test]
    fn solves_tridiagonal_system_to_thomas_accuracy() {
        let ctx = Context::new(ThreadsBackend::with_threads(4));
        let n = 2000;
        let a = Tridiag::diagonally_dominant(n);
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13) % 7) as f64 - 3.0).collect();
        let mut b_host = vec![0.0; n];
        a.matvec_ref(&x_true, &mut b_host);

        let da = DeviceTridiag::upload(&ctx, &a).unwrap();
        let b = ctx.array_from(&b_host).unwrap();
        let (result, ws) = solve(&ctx, &da, &b, 1e-10, 500).unwrap();
        assert!(result.converged, "residual {}", result.residual);
        assert!(
            result.iterations < 100,
            "well-conditioned: {}",
            result.iterations
        );

        let x = ctx.to_host(&ws.x).unwrap();
        let direct = a.thomas_solve(&b_host);
        for (got, want) in x.iter().zip(&direct) {
            assert!((got - want).abs() < 1e-7, "{got} vs {want}");
        }
    }

    #[test]
    fn solves_laplacian_system() {
        let ctx = Context::new(ThreadsBackend::with_threads(4));
        let m = Csr::laplacian_2d(20, 20);
        let n = m.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) * 0.2).collect();
        let mut b_host = vec![0.0; n];
        m.matvec_ref(&x_true, &mut b_host);
        let dm = DeviceCsr::upload(&ctx, &m).unwrap();
        let b = ctx.array_from(&b_host).unwrap();
        let (result, ws) = solve(&ctx, &dm, &b, 1e-9, 2000).unwrap();
        assert!(result.converged);
        let x = ctx.to_host(&ws.x).unwrap();
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-6);
        }
    }

    #[test]
    fn residual_decreases_monotonically_on_spd_system() {
        let ctx = Context::new(SerialBackend::new());
        let n = 500;
        let a = Tridiag::diagonally_dominant(n);
        let da = DeviceTridiag::upload(&ctx, &a).unwrap();
        let b = ctx.array_from_fn(n, |i| ((i % 9) as f64) - 4.0).unwrap();
        let mut ws = CgWorkspace::new(&ctx, &b).unwrap();
        let mut last = ws.rr().sqrt();
        for _ in 0..20 {
            let r = ws.iterate(&ctx, &da);
            assert!(r <= last * (1.0 + 1e-12), "{r} vs {last}");
            last = r;
        }
    }

    #[test]
    fn zero_rhs_converges_immediately() {
        let ctx = Context::new(SerialBackend::new());
        let a = Tridiag::diagonally_dominant(100);
        let da = DeviceTridiag::upload(&ctx, &a).unwrap();
        let b = ctx.zeros::<f64>(100).unwrap();
        let (result, ws) = solve(&ctx, &da, &b, 1e-12, 10).unwrap();
        assert!(result.converged);
        assert_eq!(result.iterations, 0);
        assert!(ctx.to_host(&ws.x).unwrap().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn iteration_budget_is_respected() {
        let ctx = Context::new(SerialBackend::new());
        let a = Tridiag::diagonally_dominant(1000);
        let da = DeviceTridiag::upload(&ctx, &a).unwrap();
        let b = ctx.array_from_fn(1000, |i| (i as f64).sin()).unwrap();
        let (result, _) = solve(&ctx, &da, &b, 0.0, 3).unwrap();
        assert!(!result.converged);
        assert_eq!(result.iterations, 3);
    }

    /// Residual history (as bits) of `iters` iterations plus the
    /// per-iteration construct counts `(parallel_fors, reductions)`.
    fn residual_history<B: racc_core::Backend, Op: LinearOperator<B>>(
        ctx: &Context<B>,
        op: &Op,
        b: &Array1<f64>,
        iters: u64,
    ) -> (Vec<u64>, u64, u64) {
        let mut ws = CgWorkspace::new(ctx, b).unwrap();
        let before = ctx.timeline();
        let mut history = Vec::new();
        for _ in 0..iters {
            history.push(ws.iterate(ctx, op).to_bits());
        }
        let after = ctx.timeline();
        (
            history,
            (after.launches - before.launches) / iters,
            (after.reductions - before.reductions) / iters,
        )
    }

    /// Fusion on vs off: the residual history must agree bit for bit, and
    /// the fused iteration must run as 3 constructs (1 for + 2 fused
    /// reductions) against the eager 6 (4 fors + 2 reductions).
    fn check_fused_iteration_bitwise<B: racc_core::Backend>(make: impl Fn() -> B) {
        let n = 400;
        let iters = 25;
        for use_csr in [false, true] {
            let eager_ctx = Context::builder(make()).fusion(false).build();
            let fused_ctx = Context::builder(make()).fusion(true).build();
            assert!(!eager_ctx.fusion_enabled() && fused_ctx.fusion_enabled());
            let run = |ctx: &Context<B>| {
                let b = ctx.array_from_fn(n, |i| ((i % 11) as f64) - 5.0).unwrap();
                if use_csr {
                    let m = crate::csr::Csr::laplacian_2d(20, 20);
                    let op = DeviceCsr::upload(ctx, &m).unwrap();
                    residual_history(ctx, &op, &b, iters)
                } else {
                    let a = Tridiag::diagonally_dominant(n);
                    let op = DeviceTridiag::upload(ctx, &a).unwrap();
                    residual_history(ctx, &op, &b, iters)
                }
            };
            let (eager_hist, eager_fors, eager_reds) = run(&eager_ctx);
            let (fused_hist, fused_fors, fused_reds) = run(&fused_ctx);
            assert_eq!(fused_hist, eager_hist, "residual history diverged");
            assert_eq!((eager_fors, eager_reds), (4, 2));
            assert_eq!((fused_fors, fused_reds), (1, 2));
        }
    }

    #[test]
    fn fused_iteration_is_bit_identical_and_three_constructs() {
        check_fused_iteration_bitwise(SerialBackend::new);
        check_fused_iteration_bitwise(|| ThreadsBackend::with_threads(4));
    }

    /// The CG loop re-issues the same fused update shape every iteration,
    /// so after the first (compiling) call the plan cache must serve every
    /// later one: steady-state hit rate ≥ 90% over a real solve.
    #[test]
    fn fused_solve_runs_hot_from_the_plan_cache() {
        let n = 400;
        let ctx = Context::builder(SerialBackend::new()).fusion(true).build();
        let da = DeviceTridiag::upload(&ctx, &Tridiag::diagonally_dominant(n)).unwrap();
        let b = ctx.array_from_fn(n, |i| ((i % 11) as f64) - 5.0).unwrap();
        let (result, _) = solve(&ctx, &da, &b, 1e-30, 25).unwrap();
        assert!(result.iterations >= 10, "want a real loop, got {result:?}");
        let pc = ctx.stats().plan_cache;
        assert!(pc.misses >= 1 && pc.hits >= 9, "{pc:?}");
        assert!(
            pc.hit_rate() >= 0.9,
            "steady-state CG should hit the cache: {pc:?}"
        );
    }

    #[test]
    fn exact_convergence_in_n_steps_for_tiny_system() {
        // CG converges in at most n iterations in exact arithmetic.
        let ctx = Context::new(SerialBackend::new());
        let a = Tridiag::new(
            vec![0.0, 1.0, 2.0],
            vec![10.0, 9.0, 8.0],
            vec![1.0, 2.0, 0.0],
        );
        let da = DeviceTridiag::upload(&ctx, &a).unwrap();
        let b = ctx.array_from(&[1.0, 2.0, 3.0]).unwrap();
        let (result, _) = solve(&ctx, &da, &b, 1e-12, 4).unwrap();
        assert!(result.converged);
        assert!(result.iterations <= 3 + 1);
    }
}
