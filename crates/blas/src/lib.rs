//! # racc-blas
//!
//! The BLAS level-1 workloads of the paper's evaluation (§V-A): AXPY and
//! DOT on 1D and 2D double-precision arrays, plus the supporting operations
//! (SCAL, COPY, NRM2, AXPBY) the CG solver builds on.
//!
//! Two parallel universes, exactly like the paper's study:
//!
//! * [`portable`] — the **RACC** implementations: one body per operation,
//!   runnable unchanged on every back end;
//! * [`vendor`] — the **device-specific** implementations, hand-written
//!   against each vendor API (`racc-cudasim`, `racc-hipsim`,
//!   `racc-oneapisim`, and the raw thread pool for the CPU), including the
//!   two-kernel shared-memory DOT of the paper's Fig. 3. These are the
//!   baselines the overhead study compares against.
//!
//! [`fused`] adds hand-fused chains of the portable operations (AXPY+DOT,
//! the CG α-update) — one construct each with the summed profile — used by
//! the CG solver when the context's fusion knob
//! (`racc::builder().fusion(true)` / `RACC_FUSION=1`) is on.
//!
//! [`mod@reference`] holds plain serial implementations used as ground truth in
//! tests.

pub mod fused;
pub mod portable;
pub mod reference;
pub mod vendor;

/// Kernel profiles for every operation in this crate, shared by the
/// portable and vendor paths so modeled costs are comparable.
pub mod profiles {
    use racc_core::KernelProfile;

    /// `x[i] += alpha * y[i]` (f64): 2 flops, read 16 B, write 8 B.
    pub const fn axpy() -> KernelProfile {
        KernelProfile::axpy()
    }

    /// `sum(x[i] * y[i])` map stage: 2 flops, read 16 B.
    pub const fn dot() -> KernelProfile {
        KernelProfile::dot()
    }

    /// `x[i] *= alpha`: 1 flop, read 8 B, write 8 B.
    pub const fn scal() -> KernelProfile {
        KernelProfile::new("scal", 1.0, 8.0, 8.0)
    }

    /// `y[i] = x[i]`.
    pub const fn copy() -> KernelProfile {
        KernelProfile::copy()
    }

    /// `sum(x[i]^2)` map stage of NRM2.
    pub const fn nrm2() -> KernelProfile {
        KernelProfile::new("nrm2", 2.0, 8.0, 0.0)
    }

    /// `y[i] = alpha * x[i] + beta * y[i]`.
    pub const fn axpby() -> KernelProfile {
        KernelProfile::new("axpby", 3.0, 16.0, 8.0)
    }
}
