//! Fused BLAS chains for the CG hot path, expressed through the
//! `racc-fuse` expression engine.
//!
//! Until the plan cache landed these were *hand*-fused closures — the
//! engine's interpreter re-walked the DAG per element, so writing the
//! bodies by hand was the only way to get closure-grade code on the hot
//! path. Now each chain is a [`Lazy`](racc_fuse::Lazy) program: the first
//! call plans, lowers, and caches a compiled plan keyed by the chain's
//! shape; every later call (each CG iteration, with its fresh `alpha`)
//! hits the cache and dispatches a specialized template executor whose
//! per-element body is exactly the closure that used to be written here.
//! One construct per call, the chain's *summed*
//! [`KernelProfile`] flagged [`KernelProfile::as_fused`] — nothing about
//! the timeline, the trace lanes, or the launch count changes.
//!
//! Every chain performs the identical f64 operations in the identical
//! order as the eager sequence it replaces (loads before stores per
//! index, reductions through the same backend primitive over the same
//! extent), so results are **bit-identical** to the eager chain — the
//! tests at the bottom pin that per backend.

use racc_core::{Array1, Backend, Context, KernelProfile};
use racc_fuse::{lit, load, LazyExt};

/// `x[i] += alpha * y[i]`, then `sum(x[i] * z[i])` — an
/// `axpy`-then-`dot` chain as one reduction, forwarding the updated
/// `x[i]` through a register instead of re-reading it.
pub fn axpy_dot<B: Backend>(
    ctx: &Context<B>,
    alpha: f64,
    x: &Array1<f64>,
    y: &Array1<f64>,
    z: &Array1<f64>,
) -> f64 {
    assert_eq!(x.len(), y.len(), "axpy_dot length mismatch");
    assert_eq!(x.len(), z.len(), "axpy_dot length mismatch");
    let mut l = ctx.lazy().named("fused-axpy-dot");
    let xv = l.assign(x, load(x) + lit(alpha) * load(y));
    l.sum(xv * load(z))
}

/// The CG α-update as one reduction: `x[i] += alpha * p[i]`,
/// `r[i] -= alpha * s[i]`, returning the new `r·r` — three constructs
/// (two AXPYs and a DOT) fused into one, with the updated `r[i]`
/// forwarded into the reduction map.
///
/// The subtraction is written `r[i] + (-alpha) * s[i]` with `-alpha`
/// negated once up front, exactly like the eager call
/// `axpy(ctx, -alpha, r, s)`, so the residual history stays
/// bit-identical.
pub fn cg_update<B: Backend>(
    ctx: &Context<B>,
    alpha: f64,
    x: &Array1<f64>,
    p: &Array1<f64>,
    r: &Array1<f64>,
    s: &Array1<f64>,
) -> f64 {
    let n = x.len();
    assert!(
        p.len() == n && r.len() == n && s.len() == n,
        "cg_update length mismatch"
    );
    let mut l = ctx.lazy().named("fused-cg-update");
    l.store(x, load(x) + lit(alpha) * load(p));
    let rv = l.assign(r, load(r) + lit(-alpha) * load(s));
    l.sum(rv.clone() * rv)
}

/// Summed profiles of the fused chains, mirroring
/// [`crate::profiles`] for the eager pieces. The engine derives exactly
/// these from the expression programs above (the tests pin it); the
/// constants remain the documented reference.
pub mod profiles {
    use super::KernelProfile;

    /// AXPY (2 flops, 16 B read, 8 B written) + DOT (2 flops, 16 B read)
    /// with the updated vector forwarded: one of the DOT's reads never
    /// touches memory.
    pub const fn axpy_dot() -> KernelProfile {
        KernelProfile::new("fused-axpy-dot", 4.0, 24.0, 8.0).as_fused()
    }

    /// Two AXPYs + DOT with `r` forwarded: 6 flops, reads of `x`, `p`,
    /// `r`, `s`, writes of `x` and `r`.
    pub const fn cg_update() -> KernelProfile {
        KernelProfile::new("fused-cg-update", 6.0, 32.0, 16.0).as_fused()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portable;
    use racc_core::{SerialBackend, ThreadsBackend};

    fn arrays<B: Backend>(ctx: &Context<B>, n: usize) -> [Array1<f64>; 4] {
        [3usize, 5, 7, 11].map(|salt| {
            ctx.array_from_fn(n, move |i| ((i * salt + 1) % 13) as f64 * 0.5 - 3.0)
                .unwrap()
        })
    }

    fn check_backend<B: Backend>(make: impl Fn() -> Context<B>) {
        let n = 4097;
        let alpha = 0.8125;

        // axpy_dot vs the eager pair.
        let ctx = make();
        let [x, y, z, _] = arrays(&ctx, n);
        let fused = axpy_dot(&ctx, alpha, &x, &y, &z);
        let fx = ctx.to_host(&x).unwrap();
        let ctx = make();
        let [x, y, z, _] = arrays(&ctx, n);
        portable::axpy(&ctx, alpha, &x, &y);
        let eager = portable::dot(&ctx, &x, &z);
        assert_eq!(fused.to_bits(), eager.to_bits());
        let ex = ctx.to_host(&x).unwrap();
        assert_eq!(
            fx.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            ex.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        // cg_update vs the eager triple.
        let ctx = make();
        let [x, p, r, s] = arrays(&ctx, n);
        let before = ctx.timeline();
        let fused = cg_update(&ctx, alpha, &x, &p, &r, &s);
        let after = ctx.timeline();
        assert_eq!(after.reductions - before.reductions, 1);
        assert_eq!(after.launches, before.launches);
        let (fx, fr) = (ctx.to_host(&x).unwrap(), ctx.to_host(&r).unwrap());
        let ctx = make();
        let [x, p, r, s] = arrays(&ctx, n);
        portable::axpy(&ctx, alpha, &x, &p);
        portable::axpy(&ctx, -alpha, &r, &s);
        let eager = portable::dot(&ctx, &r, &r);
        assert_eq!(fused.to_bits(), eager.to_bits());
        let (ex, er) = (ctx.to_host(&x).unwrap(), ctx.to_host(&r).unwrap());
        for i in 0..n {
            assert_eq!(fx[i].to_bits(), ex[i].to_bits());
            assert_eq!(fr[i].to_bits(), er[i].to_bits());
        }
    }

    #[test]
    fn fused_chains_match_eager_on_cpu_backends() {
        check_backend(|| Context::new(SerialBackend::new()));
        check_backend(|| Context::new(ThreadsBackend::with_threads(3)));
    }

    /// The engine must price the chains exactly like the documented
    /// reference profiles: one fused call charges the modeled timeline
    /// like one reduction with the summed hand profile — on the first
    /// (compiling) call and on cached re-evaluations alike.
    #[test]
    fn engine_derived_profiles_match_reference_constants() {
        let n = 2048;

        // Reference charge: one parallel_reduce with the hand profile.
        let ref_ctx = Context::new(SerialBackend::new());
        let [x, _, _, z] = arrays(&ref_ctx, n);
        let (xv, zv) = (x.view(), z.view());
        ref_ctx.parallel_reduce(n, &profiles::cg_update(), move |i| xv.get(i) * zv.get(i));
        let want = ref_ctx.timeline().modeled_ns;

        let ctx = Context::new(SerialBackend::new());
        let [x, p, r, s] = arrays(&ctx, n);
        let t0 = ctx.timeline().modeled_ns;
        cg_update(&ctx, 0.5, &x, &p, &r, &s);
        let first = ctx.timeline().modeled_ns - t0;
        assert_eq!(first, want, "derived cg_update profile diverges");

        // And the cached re-evaluation charges the same.
        let t1 = ctx.timeline().modeled_ns;
        cg_update(&ctx, 0.25, &x, &p, &r, &s);
        assert_eq!(ctx.timeline().modeled_ns - t1, want);
        assert!(ctx.stats().plan_cache.hits >= 1);
    }
}
