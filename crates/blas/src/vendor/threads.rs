//! CPU device-specific AXPY/DOT, written directly against the thread pool
//! (the Base.Threads analog codes in the paper's Fig. 8).
//!
//! Functional execution is real parallel CPU work; modeled time comes from
//! the CPU machine model so the figure harness can compare CPU and GPU
//! series on one clock.

use racc_core::cpumodel::CpuSpec;
use racc_threadpool::{Schedule, ThreadPool};

use crate::profiles;

/// `x[i] += alpha * y[i]` with block decomposition over the pool. Returns
/// modeled nanoseconds.
pub fn axpy(pool: &ThreadPool, cpu: &CpuSpec, alpha: f64, x: &mut [f64], y: &[f64]) -> u64 {
    assert_eq!(x.len(), y.len());
    pool.parallel_for_slices(x, |offset, block| {
        for (i, xi) in block.iter_mut().enumerate() {
            *xi += alpha * y[offset + i];
        }
    });
    cpu.kernel_time_ns(y.len(), &profiles::axpy()) as u64
}

/// `sum(x[i] * y[i])` with per-thread partials. Returns
/// `(result, modeled_ns)`.
pub fn dot(pool: &ThreadPool, cpu: &CpuSpec, x: &[f64], y: &[f64]) -> (f64, u64) {
    assert_eq!(x.len(), y.len());
    let result = pool.parallel_reduce(
        x.len(),
        Schedule::Static,
        0.0f64,
        |i| x[i] * y[i],
        |a, b| a + b,
    );
    (result, cpu.reduce_time_ns(x.len(), &profiles::dot()) as u64)
}

/// 2D AXPY over a column-major `m × n` buffer: the column loop is
/// distributed, rows stream sequentially (the paper's coarse-grain
/// column-wise decomposition).
pub fn axpy_2d(
    pool: &ThreadPool,
    cpu: &CpuSpec,
    alpha: f64,
    m: usize,
    n: usize,
    x: &mut [f64],
    y: &[f64],
) -> u64 {
    assert_eq!(x.len(), m * n);
    assert_eq!(y.len(), m * n);
    // Whole columns are contiguous blocks, so the slice split happens to
    // coincide with a column-aligned decomposition for m | block sizes; use
    // explicit column indexing for exactness.
    let xp = SendMutPtr(x.as_mut_ptr());
    pool.parallel_for(n, Schedule::Static, |j| {
        let base = j * m;
        for i in 0..m {
            // SAFETY: column j is written only by this task.
            unsafe { *xp.get().add(base + i) += alpha * y[base + i] };
        }
    });
    cpu.kernel_time_ns(m * n, &profiles::axpy()) as u64
}

/// 2D DOT over a column-major buffer, column-wise partials.
pub fn dot_2d(
    pool: &ThreadPool,
    cpu: &CpuSpec,
    m: usize,
    n: usize,
    x: &[f64],
    y: &[f64],
) -> (f64, u64) {
    assert_eq!(x.len(), m * n);
    assert_eq!(y.len(), m * n);
    let result = pool.parallel_reduce(
        n,
        Schedule::Static,
        0.0f64,
        |j| {
            let base = j * m;
            let mut acc = 0.0;
            for i in 0..m {
                acc += x[base + i] * y[base + i];
            }
            acc
        },
        |a, b| a + b,
    );
    (result, cpu.reduce_time_ns(m * n, &profiles::dot()) as u64)
}

struct SendMutPtr(*mut f64);
unsafe impl Send for SendMutPtr {}
unsafe impl Sync for SendMutPtr {}
impl SendMutPtr {
    fn get(&self) -> *mut f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    fn fixtures() -> (ThreadPool, CpuSpec) {
        (ThreadPool::new(4), CpuSpec::epyc_7742_rome())
    }

    #[test]
    fn axpy_matches_reference() {
        let (pool, cpu) = fixtures();
        let n = 10_001; // odd length exercises uneven blocks
        let mut x: Vec<f64> = (0..n).map(|i| (i % 8) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 6) as f64).collect();
        let mut expect = x.clone();
        let ns = axpy(&pool, &cpu, 1.25, &mut x, &y);
        assert!(ns > 0);
        reference::axpy(1.25, &mut expect, &y);
        assert_eq!(x, expect);
    }

    #[test]
    fn dot_matches_reference() {
        let (pool, cpu) = fixtures();
        let n = 54_321;
        let x: Vec<f64> = (0..n).map(|i| ((i * 13) % 31) as f64 * 0.1).collect();
        let y: Vec<f64> = (0..n).map(|i| ((i * 17) % 37) as f64 * 0.1).collect();
        let (got, ns) = dot(&pool, &cpu, &x, &y);
        assert!(ns > 0);
        let want = reference::dot(&x, &y);
        assert!((got - want).abs() < 1e-9 * want.abs());
    }

    #[test]
    fn two_d_variants_match() {
        let (pool, cpu) = fixtures();
        let (m, n) = (129, 65);
        let mut x: Vec<f64> = (0..m * n).map(|i| (i % 10) as f64).collect();
        let y: Vec<f64> = (0..m * n).map(|i| ((i + 1) % 10) as f64).collect();
        let mut expect = x.clone();
        axpy_2d(&pool, &cpu, 2.0, m, n, &mut x, &y);
        reference::axpy(2.0, &mut expect, &y);
        assert_eq!(x, expect);
        let (got, _) = dot_2d(&pool, &cpu, m, n, &x, &y);
        let want = reference::dot(&expect, &y);
        assert!((got - want).abs() < 1e-9 * want.abs());
    }
}
