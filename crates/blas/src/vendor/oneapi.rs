//! oneAPI/SYCL-specific AXPY/DOT (the oneAPI.jl analog codes).
//!
//! Uses items/groups vocabulary, SLM for the reduction tree, and — in the
//! 2D kernel — the dimension-inverted `get_global_id` indexing of the
//! paper's Fig. 7.

use racc_gpusim::{KernelCost, OpKind, PhasedKernel, SharedMem, ThreadCtx};
use racc_oneapisim::{OneApi, OneArray};

use crate::profiles;
use crate::vendor::GPU_BLOCK;

fn cost(p: &racc_core::KernelProfile) -> KernelCost {
    KernelCost::new(
        p.flops_per_iter,
        p.bytes_read_per_iter,
        p.bytes_written_per_iter,
        p.coalescing,
    )
}

/// `x[i] += alpha * y[i]` with `min(n, maxTotalGroupSize)` items per group
/// (the paper's Fig. 7 geometry).
pub fn axpy(one: &OneApi, alpha: f64, x: &OneArray<f64>, y: &OneArray<f64>) -> u64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let items = n.clamp(1, one.max_total_group_size()) as u32;
    let groups = n.div_ceil(items as usize) as u32;
    let xs = one.view_mut(x).expect("device-owned");
    let ys = one.view(y).expect("device-owned");
    let e0 = one.record_event();
    one.launch(items, groups, 0, cost(&profiles::axpy()), |item| {
        let i = item.get_global_id(0);
        if i < n {
            xs.set(i, xs.get(i) + alpha * ys.get(i));
        }
    })
    .expect("axpy launch");
    let e1 = one.record_event();
    e0.elapsed_ns(&e1)
}

/// SLM tree-reduction DOT kernel (per-group partials).
struct DotKernelSlm {
    n: usize,
    x: racc_gpusim::DeviceSlice<f64>,
    y: racc_gpusim::DeviceSlice<f64>,
    partials: racc_gpusim::DeviceSliceMut<f64>,
}

impl PhasedKernel for DotKernelSlm {
    type State = ();

    fn num_phases(&self) -> usize {
        2 + GPU_BLOCK.trailing_zeros() as usize
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _s: &mut (), slm: &SharedMem) {
        let ti = ctx.thread_linear();
        let steps = GPU_BLOCK.trailing_zeros() as usize;
        if phase == 0 {
            let i = ctx.global_id_x();
            let v = if i < self.n {
                self.x.get(i) * self.y.get(i)
            } else {
                0.0
            };
            slm.set::<f64>(ti, v);
        } else if phase <= steps {
            let half = GPU_BLOCK >> phase;
            if ti < half {
                slm.set::<f64>(ti, slm.get::<f64>(ti) + slm.get::<f64>(ti + half));
            }
        } else if ti == 0 {
            self.partials.set(ctx.block_linear(), slm.get::<f64>(0));
        }
    }
}

/// Final fold of the per-group partials.
struct FoldKernelSlm {
    len: usize,
    partials: racc_gpusim::DeviceSlice<f64>,
    out: racc_gpusim::DeviceSliceMut<f64>,
}

impl PhasedKernel for FoldKernelSlm {
    type State = ();

    fn num_phases(&self) -> usize {
        2 + GPU_BLOCK.trailing_zeros() as usize
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _s: &mut (), slm: &SharedMem) {
        let ti = ctx.thread_linear();
        let steps = GPU_BLOCK.trailing_zeros() as usize;
        if phase == 0 {
            let mut acc = 0.0;
            let mut ii = ti;
            while ii < self.len {
                acc += self.partials.get(ii);
                ii += GPU_BLOCK;
            }
            slm.set::<f64>(ti, acc);
        } else if phase <= steps {
            let half = GPU_BLOCK >> phase;
            if ti < half {
                slm.set::<f64>(ti, slm.get::<f64>(ti) + slm.get::<f64>(ti + half));
            }
        } else if ti == 0 {
            self.out.set(0, slm.get::<f64>(0));
        }
    }
}

/// Two-kernel DOT on the Intel device. Returns `(result, modeled_ns)`.
pub fn dot(one: &OneApi, x: &OneArray<f64>, y: &OneArray<f64>) -> (f64, u64) {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let groups = n.div_ceil(GPU_BLOCK).max(1);
    let e0 = one.record_event();
    let partials = one.zeros::<f64>(groups).expect("partials");
    let out = one.zeros::<f64>(1).expect("result");
    let k1 = DotKernelSlm {
        n,
        x: one.view(x).expect("device-owned"),
        y: one.view(y).expect("device-owned"),
        partials: one.view_mut(&partials).expect("device-owned"),
    };
    one.launch_cooperative(
        GPU_BLOCK as u32,
        groups as u32,
        GPU_BLOCK * 8,
        cost(&profiles::dot()),
        &k1,
    )
    .expect("dot kernel");
    let k2 = FoldKernelSlm {
        len: groups,
        partials: one.view(&partials).expect("device-owned"),
        out: one.view_mut(&out).expect("device-owned"),
    };
    one.launch_cooperative(
        GPU_BLOCK as u32,
        1,
        GPU_BLOCK * 8,
        KernelCost::memory_bound(groups as f64 * 8.0 / GPU_BLOCK as f64, 0.0),
        &k2,
    )
    .expect("fold kernel");
    let spec = one.device().spec();
    one.device().charge(
        OpKind::Sync,
        0,
        0,
        spec.link_latency_ns * (spec.reduce_sync_penalty - 1.0).max(0.0),
    );
    let result = one.read_scalar(&out, 0).expect("readback");
    let e1 = one.record_event();
    (result, e0.elapsed_ns(&e1))
}

/// 2D AXPY with the paper's inverted indexing:
/// `j = get_global_id(0); i = get_global_id(1)`.
pub fn axpy_2d(
    one: &OneApi,
    alpha: f64,
    m: usize,
    n: usize,
    x: &OneArray<f64>,
    y: &OneArray<f64>,
) -> u64 {
    assert_eq!(x.len(), m * n);
    assert_eq!(y.len(), m * n);
    let t = 16u32;
    let gx = m.div_ceil(t as usize) as u32;
    let gy = n.div_ceil(t as usize) as u32;
    let xs = one.view_mut(x).expect("device-owned");
    let ys = one.view(y).expect("device-owned");
    let e0 = one.record_event();
    one.launch_2d((t, t), (gx, gy), 0, cost(&profiles::axpy()), |item| {
        let j = item.get_global_id(0); // slow axis first (Fig. 7)
        let i = item.get_global_id(1);
        if i < m && j < n {
            let idx = j * m + i;
            xs.set(idx, xs.get(idx) + alpha * ys.get(idx));
        }
    })
    .expect("axpy_2d launch");
    let e1 = one.record_event();
    e0.elapsed_ns(&e1)
}

/// 2D DOT (flattened two-kernel reduction).
pub fn dot_2d(
    one: &OneApi,
    m: usize,
    n: usize,
    x: &OneArray<f64>,
    y: &OneArray<f64>,
) -> (f64, u64) {
    assert_eq!(x.len(), m * n);
    assert_eq!(y.len(), m * n);
    dot(one, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn axpy_and_dot_match_reference() {
        let one = OneApi::new();
        let n = 33_333;
        let hx: Vec<f64> = (0..n).map(|i| ((i * 11) % 19) as f64).collect();
        let hy: Vec<f64> = (0..n).map(|i| ((i * 5) % 29) as f64).collect();
        let dx = one.one_array(&hx).unwrap();
        let dy = one.one_array(&hy).unwrap();
        axpy(&one, -0.75, &dx, &dy);
        let mut expect = hx.clone();
        reference::axpy(-0.75, &mut expect, &hy);
        assert_eq!(one.to_host(&dx).unwrap(), expect);

        let (got, _) = dot(&one, &dx, &dy);
        let want = reference::dot(&expect, &hy);
        assert!((got - want).abs() < 1e-9 * want.abs().max(1.0));
    }

    #[test]
    fn inverted_2d_indexing_still_covers_all_elements() {
        let one = OneApi::new();
        let (m, n) = (37, 21); // deliberately tile-unaligned
        let hx = vec![0.0f64; m * n];
        let hy = vec![1.0f64; m * n];
        let dx = one.one_array(&hx).unwrap();
        let dy = one.one_array(&hy).unwrap();
        axpy_2d(&one, 3.0, m, n, &dx, &dy);
        let host = one.to_host(&dx).unwrap();
        assert!(host.iter().all(|&v| v == 3.0), "every element updated once");
    }
}
