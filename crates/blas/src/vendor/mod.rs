//! Device-specific implementations — the paper's comparison baselines.
//!
//! Each submodule is written directly against one vendor API, the way the
//! paper's device-specific benchmark codes are written against CUDA.jl /
//! AMDGPU.jl / oneAPI.jl / Base.Threads. The GPU DOTs reproduce the
//! two-kernel shared-memory structure of the paper's Fig. 3 per vendor.
//!
//! Every function returns the modeled nanoseconds of the operation
//! (measured off the vendor device clock for GPUs, computed from the CPU
//! machine model for the thread pool), which is what the figure harness
//! plots against the portable RACC timings.

pub mod cuda;
pub mod hip;
pub mod oneapi;
pub mod threads;

/// Block/workgroup size used by the device-specific GPU codes (paper
/// Fig. 3 uses 512).
pub const GPU_BLOCK: usize = 512;
