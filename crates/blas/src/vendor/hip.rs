//! HIP/AMDGPU-specific AXPY/DOT (the AMDGPU.jl analog codes).
//!
//! Workgroups are sized as multiples of the 64-lane wavefront; the DOT uses
//! 256-workitem groups (four wavefronts) with an LDS tree reduction.

use racc_gpusim::{KernelCost, OpKind, PhasedKernel, SharedMem, ThreadCtx};
use racc_hipsim::{Hip, RocArray};

use crate::profiles;

/// Workgroup size for the AMD device-specific codes (4 wavefronts).
pub const WORKGROUP: usize = 256;

fn cost(p: &racc_core::KernelProfile) -> KernelCost {
    KernelCost::new(
        p.flops_per_iter,
        p.bytes_read_per_iter,
        p.bytes_written_per_iter,
        p.coalescing,
    )
}

/// `x[i] += alpha * y[i]` with wavefront-aligned workgroups.
pub fn axpy(hip: &Hip, alpha: f64, x: &RocArray<f64>, y: &RocArray<f64>) -> u64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let groupsize = WORKGROUP.min(n.next_multiple_of(hip.wavefront_size()).max(64)) as u32;
    let groups = n.div_ceil(groupsize as usize) as u32;
    let xs = hip.view_mut(x).expect("device-owned");
    let ys = hip.view(y).expect("device-owned");
    let e0 = hip.record_event();
    hip.launch(groupsize, groups, 0, cost(&profiles::axpy()), |t| {
        let i = t.global_id_x();
        if i < n {
            xs.set(i, xs.get(i) + alpha * ys.get(i));
        }
    })
    .expect("axpy launch");
    let e1 = hip.record_event();
    e0.elapsed_ns(&e1)
}

/// LDS tree-reduction DOT kernel (per-group partials).
struct DotKernelLds {
    n: usize,
    x: racc_gpusim::DeviceSlice<f64>,
    y: racc_gpusim::DeviceSlice<f64>,
    partials: racc_gpusim::DeviceSliceMut<f64>,
}

impl PhasedKernel for DotKernelLds {
    type State = ();

    fn num_phases(&self) -> usize {
        2 + WORKGROUP.trailing_zeros() as usize
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _s: &mut (), lds: &SharedMem) {
        let ti = ctx.thread_linear();
        let steps = WORKGROUP.trailing_zeros() as usize;
        if phase == 0 {
            let i = ctx.global_id_x();
            let v = if i < self.n {
                self.x.get(i) * self.y.get(i)
            } else {
                0.0
            };
            lds.set::<f64>(ti, v);
        } else if phase <= steps {
            let half = WORKGROUP >> phase;
            if ti < half {
                lds.set::<f64>(ti, lds.get::<f64>(ti) + lds.get::<f64>(ti + half));
            }
        } else if ti == 0 {
            self.partials.set(ctx.block_linear(), lds.get::<f64>(0));
        }
    }
}

/// Final fold of the per-group partials in one workgroup.
struct FoldKernelLds {
    len: usize,
    partials: racc_gpusim::DeviceSlice<f64>,
    out: racc_gpusim::DeviceSliceMut<f64>,
}

impl PhasedKernel for FoldKernelLds {
    type State = ();

    fn num_phases(&self) -> usize {
        2 + WORKGROUP.trailing_zeros() as usize
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _s: &mut (), lds: &SharedMem) {
        let ti = ctx.thread_linear();
        let steps = WORKGROUP.trailing_zeros() as usize;
        if phase == 0 {
            let mut acc = 0.0;
            let mut ii = ti;
            while ii < self.len {
                acc += self.partials.get(ii);
                ii += WORKGROUP;
            }
            lds.set::<f64>(ti, acc);
        } else if phase <= steps {
            let half = WORKGROUP >> phase;
            if ti < half {
                lds.set::<f64>(ti, lds.get::<f64>(ti) + lds.get::<f64>(ti + half));
            }
        } else if ti == 0 {
            self.out.set(0, lds.get::<f64>(0));
        }
    }
}

/// Two-kernel DOT on the AMD device. Returns `(result, modeled_ns)`.
pub fn dot(hip: &Hip, x: &RocArray<f64>, y: &RocArray<f64>) -> (f64, u64) {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let groups = n.div_ceil(WORKGROUP).max(1);
    let e0 = hip.record_event();
    let partials = hip.zeros::<f64>(groups).expect("partials");
    let out = hip.zeros::<f64>(1).expect("result");
    let k1 = DotKernelLds {
        n,
        x: hip.view(x).expect("device-owned"),
        y: hip.view(y).expect("device-owned"),
        partials: hip.view_mut(&partials).expect("device-owned"),
    };
    hip.launch_cooperative(
        WORKGROUP as u32,
        groups as u32,
        WORKGROUP * 8,
        cost(&profiles::dot()),
        &k1,
    )
    .expect("dot kernel");
    let k2 = FoldKernelLds {
        len: groups,
        partials: hip.view(&partials).expect("device-owned"),
        out: hip.view_mut(&out).expect("device-owned"),
    };
    hip.launch_cooperative(
        WORKGROUP as u32,
        1,
        WORKGROUP * 8,
        KernelCost::memory_bound(groups as f64 * 8.0 / WORKGROUP as f64, 0.0),
        &k2,
    )
    .expect("fold kernel");
    let spec = hip.device().spec();
    hip.device().charge(
        OpKind::Sync,
        0,
        0,
        spec.link_latency_ns * (spec.reduce_sync_penalty - 1.0).max(0.0),
    );
    let result = hip.read_scalar(&out, 0).expect("readback");
    let e1 = hip.record_event();
    (result, e0.elapsed_ns(&e1))
}

/// 2D AXPY with 16×16 workitem tiles over a column-major `m × n` buffer.
pub fn axpy_2d(
    hip: &Hip,
    alpha: f64,
    m: usize,
    n: usize,
    x: &RocArray<f64>,
    y: &RocArray<f64>,
) -> u64 {
    assert_eq!(x.len(), m * n);
    assert_eq!(y.len(), m * n);
    let t = 16u32;
    let gx = m.div_ceil(t as usize) as u32;
    let gy = n.div_ceil(t as usize) as u32;
    let xs = hip.view_mut(x).expect("device-owned");
    let ys = hip.view(y).expect("device-owned");
    let e0 = hip.record_event();
    hip.launch_2d((t, t), (gx, gy), 0, cost(&profiles::axpy()), |tc| {
        let (i, j) = (tc.global_id_x(), tc.global_id_y());
        if i < m && j < n {
            let idx = j * m + i;
            xs.set(idx, xs.get(idx) + alpha * ys.get(idx));
        }
    })
    .expect("axpy_2d launch");
    let e1 = hip.record_event();
    e0.elapsed_ns(&e1)
}

/// 2D DOT (flattened two-kernel reduction).
pub fn dot_2d(hip: &Hip, m: usize, n: usize, x: &RocArray<f64>, y: &RocArray<f64>) -> (f64, u64) {
    assert_eq!(x.len(), m * n);
    assert_eq!(y.len(), m * n);
    dot(hip, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn axpy_and_dot_match_reference() {
        let hip = Hip::new();
        let n = 70_000;
        let hx: Vec<f64> = (0..n).map(|i| ((i * 3) % 17) as f64).collect();
        let hy: Vec<f64> = (0..n).map(|i| ((i * 7) % 23) as f64).collect();
        let dx = hip.roc_array(&hx).unwrap();
        let dy = hip.roc_array(&hy).unwrap();
        axpy(&hip, 0.25, &dx, &dy);
        let mut expect = hx.clone();
        reference::axpy(0.25, &mut expect, &hy);
        assert_eq!(hip.to_host(&dx).unwrap(), expect);

        let (got, ns) = dot(&hip, &dx, &dy);
        assert!(ns > 0);
        let want = reference::dot(&expect, &hy);
        assert!((got - want).abs() < 1e-9 * want.abs());
    }

    #[test]
    fn two_d_axpy_matches() {
        let hip = Hip::new();
        let (m, n) = (48, 32);
        let hx = vec![1.0f64; m * n];
        let hy: Vec<f64> = (0..m * n).map(|i| i as f64).collect();
        let dx = hip.roc_array(&hx).unwrap();
        let dy = hip.roc_array(&hy).unwrap();
        axpy_2d(&hip, 2.0, m, n, &dx, &dy);
        let host = hip.to_host(&dx).unwrap();
        for (i, v) in host.iter().enumerate() {
            assert_eq!(*v, 1.0 + 2.0 * i as f64);
        }
    }

    #[test]
    fn groupsize_is_wavefront_aligned() {
        // Tiny arrays still launch a full wavefront multiple.
        let hip = Hip::new();
        let dx = hip.roc_array(&[1.0f64; 3]).unwrap();
        let dy = hip.roc_array(&[2.0f64; 3]).unwrap();
        axpy(&hip, 1.0, &dx, &dy);
        assert_eq!(hip.to_host(&dx).unwrap(), vec![3.0, 3.0, 3.0]);
    }
}
