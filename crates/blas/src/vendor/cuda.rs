//! CUDA-specific AXPY/DOT, transcribed from the paper's Fig. 3.

use racc_cudasim::{CuArray, Cuda, DeviceAttribute};
use racc_gpusim::{KernelCost, OpKind, PhasedKernel, SharedMem, ThreadCtx};

use crate::profiles;
use crate::vendor::GPU_BLOCK;

fn cost(p: &racc_core::KernelProfile) -> KernelCost {
    KernelCost::new(
        p.flops_per_iter,
        p.bytes_read_per_iter,
        p.bytes_written_per_iter,
        p.coalescing,
    )
}

/// `x[i] += alpha * y[i]`, device-specific: one thread per element, blocks
/// of `min(n, maxThreads)` (paper Fig. 6 geometry, hand-rolled).
pub fn axpy(cuda: &Cuda, alpha: f64, x: &CuArray<f64>, y: &CuArray<f64>) -> u64 {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let threads = n.clamp(1, cuda.attribute(DeviceAttribute::MaxBlockDimX)) as u32;
    let blocks = n.div_ceil(threads as usize) as u32;
    let xs = cuda.view_mut(x).expect("device-owned");
    let ys = cuda.view(y).expect("device-owned");
    let e0 = cuda.record_event();
    cuda.launch(threads, blocks, 0, cost(&profiles::axpy()), |t| {
        let i = t.global_id_x();
        if i < n {
            xs.set(i, xs.get(i) + alpha * ys.get(i));
        }
    })
    .expect("axpy launch");
    let e1 = cuda.record_event();
    e0.elapsed_ns(&e1)
}

/// Kernel 1 of `dot_cuda` (paper Fig. 3): per-thread product into dynamic
/// shared memory, then the in-block tree reduction.
struct DotKernel {
    n: usize,
    x: racc_gpusim::DeviceSlice<f64>,
    y: racc_gpusim::DeviceSlice<f64>,
    ret: racc_gpusim::DeviceSliceMut<f64>,
}

impl PhasedKernel for DotKernel {
    type State = ();

    fn num_phases(&self) -> usize {
        2 + GPU_BLOCK.trailing_zeros() as usize
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _s: &mut (), shared: &SharedMem) {
        let ti = ctx.thread_linear();
        let steps = GPU_BLOCK.trailing_zeros() as usize;
        if phase == 0 {
            let i = ctx.global_id_x();
            let tmp = if i < self.n {
                self.x.get(i) * self.y.get(i)
            } else {
                0.0
            };
            shared.set::<f64>(ti, tmp);
        } else if phase <= steps {
            // if (ti <= 256) shared[ti] += shared[ti + 256]; sync; ... etc.
            let half = GPU_BLOCK >> phase;
            if ti < half {
                shared.set::<f64>(ti, shared.get::<f64>(ti) + shared.get::<f64>(ti + half));
            }
        } else if ti == 0 {
            self.ret.set(ctx.block_linear(), shared.get::<f64>(0));
        }
    }
}

/// Kernel 2 of `dot_cuda`: a single block strides over the partials
/// (`while ii <= SIZE ... ii += 512`) and tree-reduces them.
struct ReduceKernel {
    len: usize,
    red: racc_gpusim::DeviceSlice<f64>,
    ret: racc_gpusim::DeviceSliceMut<f64>,
}

impl PhasedKernel for ReduceKernel {
    type State = ();

    fn num_phases(&self) -> usize {
        2 + GPU_BLOCK.trailing_zeros() as usize
    }

    fn phase(&self, phase: usize, ctx: &ThreadCtx, _s: &mut (), shared: &SharedMem) {
        let ti = ctx.thread_linear();
        let steps = GPU_BLOCK.trailing_zeros() as usize;
        if phase == 0 {
            let mut tmp = 0.0;
            let mut ii = ti;
            while ii < self.len {
                tmp += self.red.get(ii);
                ii += GPU_BLOCK;
            }
            shared.set::<f64>(ti, tmp);
        } else if phase <= steps {
            let half = GPU_BLOCK >> phase;
            if ti < half {
                shared.set::<f64>(ti, shared.get::<f64>(ti) + shared.get::<f64>(ti + half));
            }
        } else if ti == 0 {
            self.ret.set(0, shared.get::<f64>(0));
        }
    }
}

/// The paper's `dot_cuda`: two kernel launches plus the scalar readback and
/// driver synchronization. Returns `(result, modeled_ns)`.
pub fn dot(cuda: &Cuda, x: &CuArray<f64>, y: &CuArray<f64>) -> (f64, u64) {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    let threads = n.min(GPU_BLOCK) as u32;
    let blocks = n.div_ceil(GPU_BLOCK).max(1);
    let e0 = cuda.record_event();
    let ret = cuda.zeros::<f64>(blocks).expect("partials");
    let rret = cuda.zeros::<f64>(1).expect("result");
    let k1 = DotKernel {
        n,
        x: cuda.view(x).expect("device-owned"),
        y: cuda.view(y).expect("device-owned"),
        ret: cuda.view_mut(&ret).expect("device-owned"),
    };
    cuda.launch_cooperative(
        GPU_BLOCK as u32,
        blocks as u32,
        GPU_BLOCK * 8,
        cost(&profiles::dot()),
        &k1,
    )
    .expect("dot kernel");
    let _ = threads;
    let k2 = ReduceKernel {
        len: blocks,
        red: cuda.view(&ret).expect("device-owned"),
        ret: cuda.view_mut(&rret).expect("device-owned"),
    };
    cuda.launch_cooperative(
        GPU_BLOCK as u32,
        1,
        GPU_BLOCK * 8,
        KernelCost::memory_bound(blocks as f64 * 8.0 / GPU_BLOCK as f64, 0.0),
        &k2,
    )
    .expect("reduce kernel");
    // Driver synchronization before the scalar readback (CUDA.@sync).
    let spec = cuda.device().spec();
    cuda.device().charge(
        OpKind::Sync,
        0,
        0,
        spec.link_latency_ns * (spec.reduce_sync_penalty - 1.0).max(0.0),
    );
    let result = cuda.read_scalar(&rret, 0).expect("readback");
    let e1 = cuda.record_event();
    (result, e0.elapsed_ns(&e1))
}

/// 2D AXPY with 16×16 thread tiles over a column-major `m × n` buffer.
pub fn axpy_2d(
    cuda: &Cuda,
    alpha: f64,
    m: usize,
    n: usize,
    x: &CuArray<f64>,
    y: &CuArray<f64>,
) -> u64 {
    assert_eq!(x.len(), m * n);
    assert_eq!(y.len(), m * n);
    let tiles = 16u32;
    let bx = m.div_ceil(tiles as usize) as u32;
    let by = n.div_ceil(tiles as usize) as u32;
    let xs = cuda.view_mut(x).expect("device-owned");
    let ys = cuda.view(y).expect("device-owned");
    let e0 = cuda.record_event();
    cuda.launch_2d((tiles, tiles), (bx, by), 0, cost(&profiles::axpy()), |t| {
        let (i, j) = (t.global_id_x(), t.global_id_y());
        if i < m && j < n {
            let idx = j * m + i;
            xs.set(idx, xs.get(idx) + alpha * ys.get(idx));
        }
    })
    .expect("axpy_2d launch");
    let e1 = cuda.record_event();
    e0.elapsed_ns(&e1)
}

/// 2D DOT: flatten to the 1D two-kernel structure (what the paper's JACC
/// multidimensional reduce lowers to as well).
pub fn dot_2d(cuda: &Cuda, m: usize, n: usize, x: &CuArray<f64>, y: &CuArray<f64>) -> (f64, u64) {
    assert_eq!(x.len(), m * n);
    assert_eq!(y.len(), m * n);
    dot(cuda, x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;

    #[test]
    fn axpy_matches_reference() {
        let cuda = Cuda::new();
        let n = 10_000;
        let hx: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let hy: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let dx = cuda.cu_array(&hx).unwrap();
        let dy = cuda.cu_array(&hy).unwrap();
        let ns = axpy(&cuda, 2.0, &dx, &dy);
        assert!(ns > 0);
        let mut expect = hx.clone();
        reference::axpy(2.0, &mut expect, &hy);
        assert_eq!(cuda.to_host(&dx).unwrap(), expect);
    }

    #[test]
    fn dot_matches_reference_across_sizes() {
        let cuda = Cuda::new();
        for n in [1usize, 511, 512, 513, 100_000] {
            let hx: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) * 0.5).collect();
            let hy: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) * 0.25).collect();
            let dx = cuda.cu_array(&hx).unwrap();
            let dy = cuda.cu_array(&hy).unwrap();
            let (got, ns) = dot(&cuda, &dx, &dy);
            assert!(ns > 0);
            let expect = reference::dot(&hx, &hy);
            assert!((got - expect).abs() < 1e-9 * expect.max(1.0), "n={n}");
        }
    }

    #[test]
    fn two_d_variants() {
        let cuda = Cuda::new();
        let (m, n) = (100, 60);
        let hx: Vec<f64> = (0..m * n).map(|i| (i % 9) as f64).collect();
        let hy: Vec<f64> = (0..m * n).map(|i| (i % 4) as f64).collect();
        let dx = cuda.cu_array(&hx).unwrap();
        let dy = cuda.cu_array(&hy).unwrap();
        axpy_2d(&cuda, 1.5, m, n, &dx, &dy);
        let mut expect = hx.clone();
        reference::axpy(1.5, &mut expect, &hy);
        assert_eq!(cuda.to_host(&dx).unwrap(), expect);
        let (got, _) = dot_2d(&cuda, m, n, &dx, &dy);
        let want = reference::dot(&expect, &hy);
        assert!((got - want).abs() < 1e-9 * want.abs());
    }

    #[test]
    fn dot_costs_more_than_axpy_at_small_sizes() {
        // The paper's observation behind Fig. 8: two kernels + sync.
        let cuda = Cuda::new();
        let n = 1024;
        let dx = cuda.cu_array(&vec![1.0; n]).unwrap();
        let dy = cuda.cu_array(&vec![1.0; n]).unwrap();
        let t_axpy = axpy(&cuda, 1.0, &dx, &dy);
        let (_, t_dot) = dot(&cuda, &dx, &dy);
        assert!(t_dot > 2 * t_axpy, "dot {t_dot} axpy {t_axpy}");
    }
}
