//! Plain serial reference implementations (test ground truth).

/// `x[i] += alpha * y[i]`.
pub fn axpy(alpha: f64, x: &mut [f64], y: &[f64]) {
    assert_eq!(x.len(), y.len());
    for (xi, yi) in x.iter_mut().zip(y) {
        *xi += alpha * yi;
    }
}

/// `sum(x[i] * y[i])`.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len());
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `x[i] *= alpha`.
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// `sqrt(sum(x[i]^2))`.
pub fn nrm2(x: &[f64]) -> f64 {
    x.iter().map(|a| a * a).sum::<f64>().sqrt()
}

/// `y[i] = alpha * x[i] + beta * y[i]`.
pub fn axpby(alpha: f64, x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * xi + beta * *yi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_basic() {
        let mut x = vec![1.0, 2.0];
        axpy(2.0, &mut x, &[10.0, 20.0]);
        assert_eq!(x, vec![21.0, 42.0]);
    }

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn scal_nrm2_axpby() {
        let mut x = vec![3.0, 4.0];
        scal(2.0, &mut x);
        assert_eq!(x, vec![6.0, 8.0]);
        assert_eq!(nrm2(&[3.0, 4.0]), 5.0);
        let mut y = vec![1.0, 1.0];
        axpby(2.0, &[1.0, 2.0], 3.0, &mut y);
        assert_eq!(y, vec![5.0, 7.0]);
    }
}
