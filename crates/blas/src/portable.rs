//! The portable RACC implementations — one body per operation, every
//! back end (the paper's Fig. 2 front-end code).

use racc_core::{Array1, Array2, Backend, Context};

use crate::profiles;

/// `x[i] += alpha * y[i]` over 1D arrays.
pub fn axpy<B: Backend>(ctx: &Context<B>, alpha: f64, x: &Array1<f64>, y: &Array1<f64>) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    let n = x.len();
    let (xv, yv) = (x.view_mut(), y.view());
    ctx.parallel_for(n, &profiles::axpy(), move |i| {
        xv.set(i, xv.get(i) + alpha * yv.get(i));
    });
}

/// `sum(x[i] * y[i])` over 1D arrays.
pub fn dot<B: Backend>(ctx: &Context<B>, x: &Array1<f64>, y: &Array1<f64>) -> f64 {
    assert_eq!(x.len(), y.len(), "dot length mismatch");
    let n = x.len();
    let (xv, yv) = (x.view(), y.view());
    ctx.parallel_reduce(n, &profiles::dot(), move |i| xv.get(i) * yv.get(i))
}

/// `x[i] *= alpha`.
pub fn scal<B: Backend>(ctx: &Context<B>, alpha: f64, x: &Array1<f64>) {
    let n = x.len();
    let xv = x.view_mut();
    ctx.parallel_for(n, &profiles::scal(), move |i| {
        xv.set(i, alpha * xv.get(i));
    });
}

/// `y[i] = x[i]`.
pub fn copy<B: Backend>(ctx: &Context<B>, x: &Array1<f64>, y: &Array1<f64>) {
    assert_eq!(x.len(), y.len(), "copy length mismatch");
    let n = x.len();
    let (xv, yv) = (x.view(), y.view_mut());
    ctx.parallel_for(n, &profiles::copy(), move |i| {
        yv.set(i, xv.get(i));
    });
}

/// `sqrt(sum(x[i]^2))`.
pub fn nrm2<B: Backend>(ctx: &Context<B>, x: &Array1<f64>) -> f64 {
    let n = x.len();
    let xv = x.view();
    let ss: f64 = ctx.parallel_reduce(n, &profiles::nrm2(), move |i| {
        let v = xv.get(i);
        v * v
    });
    ss.sqrt()
}

/// `y[i] = alpha * x[i] + beta * y[i]`.
pub fn axpby<B: Backend>(
    ctx: &Context<B>,
    alpha: f64,
    x: &Array1<f64>,
    beta: f64,
    y: &Array1<f64>,
) {
    assert_eq!(x.len(), y.len(), "axpby length mismatch");
    let n = x.len();
    let (xv, yv) = (x.view(), y.view_mut());
    ctx.parallel_for(n, &profiles::axpby(), move |i| {
        yv.set(i, alpha * xv.get(i) + beta * yv.get(i));
    });
}

/// 2D AXPY over column-major matrices (the paper's multidimensional API).
pub fn axpy_2d<B: Backend>(ctx: &Context<B>, alpha: f64, x: &Array2<f64>, y: &Array2<f64>) {
    assert_eq!(x.dims(), y.dims(), "axpy_2d shape mismatch");
    let (m, n) = x.dims();
    let (xv, yv) = (x.view_mut(), y.view());
    ctx.parallel_for_2d((m, n), &profiles::axpy(), move |i, j| {
        xv.set(i, j, xv.get(i, j) + alpha * yv.get(i, j));
    });
}

/// 2D DOT over column-major matrices.
pub fn dot_2d<B: Backend>(ctx: &Context<B>, x: &Array2<f64>, y: &Array2<f64>) -> f64 {
    assert_eq!(x.dims(), y.dims(), "dot_2d shape mismatch");
    let (m, n) = x.dims();
    let (xv, yv) = (x.view(), y.view());
    ctx.parallel_reduce_2d((m, n), &profiles::dot(), move |i, j| {
        xv.get(i, j) * yv.get(i, j)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use racc_core::{SerialBackend, ThreadsBackend};

    fn data(n: usize, seed: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (((i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed)
                    >> 33)
                    % 1000) as f64
                    / 100.0
            })
            .collect()
    }

    #[test]
    fn axpy_matches_reference() {
        let ctx = Context::new(ThreadsBackend::with_threads(4));
        let n = 10_000;
        let hx = data(n, 1);
        let hy = data(n, 2);
        let x = ctx.array_from(&hx).unwrap();
        let y = ctx.array_from(&hy).unwrap();
        axpy(&ctx, 2.5, &x, &y);
        let mut expect = hx.clone();
        reference::axpy(2.5, &mut expect, &hy);
        assert_eq!(ctx.to_host(&x).unwrap(), expect);
    }

    #[test]
    fn dot_matches_reference() {
        let ctx = Context::new(SerialBackend::new());
        let n = 5_000;
        let hx = data(n, 3);
        let hy = data(n, 4);
        let x = ctx.array_from(&hx).unwrap();
        let y = ctx.array_from(&hy).unwrap();
        let got = dot(&ctx, &x, &y);
        let expect = reference::dot(&hx, &hy);
        assert!((got - expect).abs() < 1e-9 * expect.abs().max(1.0));
    }

    #[test]
    fn scal_copy_nrm2_axpby() {
        let ctx = Context::new(ThreadsBackend::with_threads(2));
        let hx = data(1000, 5);
        let x = ctx.array_from(&hx).unwrap();
        scal(&ctx, 3.0, &x);
        let mut expect = hx.clone();
        reference::scal(3.0, &mut expect);
        assert_eq!(ctx.to_host(&x).unwrap(), expect);

        let y = ctx.zeros::<f64>(1000).unwrap();
        copy(&ctx, &x, &y);
        assert_eq!(ctx.to_host(&y).unwrap(), expect);

        let got = nrm2(&ctx, &x);
        let want = reference::nrm2(&expect);
        assert!((got - want).abs() < 1e-9 * want);

        let hy = data(1000, 6);
        let y2 = ctx.array_from(&hy).unwrap();
        axpby(&ctx, 0.5, &x, -1.5, &y2);
        let mut want_y = hy.clone();
        reference::axpby(0.5, &expect, -1.5, &mut want_y);
        assert_eq!(ctx.to_host(&y2).unwrap(), want_y);
    }

    #[test]
    fn two_d_variants_match_flattened_reference() {
        let ctx = Context::new(ThreadsBackend::with_threads(4));
        let (m, n) = (100, 80);
        let hx = data(m * n, 7);
        let hy = data(m * n, 8);
        let x = ctx.array2_from(m, n, &hx).unwrap();
        let y = ctx.array2_from(m, n, &hy).unwrap();
        axpy_2d(&ctx, 1.5, &x, &y);
        let mut expect = hx.clone();
        reference::axpy(1.5, &mut expect, &hy);
        assert_eq!(ctx.to_host2(&x).unwrap(), expect);

        let got = dot_2d(&ctx, &x, &y);
        let want = reference::dot(&expect, &hy);
        assert!((got - want).abs() < 1e-9 * want.abs());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let ctx = Context::new(SerialBackend::new());
        let x = ctx.zeros::<f64>(3).unwrap();
        let y = ctx.zeros::<f64>(4).unwrap();
        axpy(&ctx, 1.0, &x, &y);
    }
}

/// `sum(|x[i]|)` (BLAS ASUM).
pub fn asum<B: Backend>(ctx: &Context<B>, x: &Array1<f64>) -> f64 {
    let n = x.len();
    let xv = x.view();
    ctx.parallel_reduce(n, &crate::profiles::nrm2(), move |i| xv.get(i).abs())
}

/// The reduction operator behind [`iamax`]: keeps the element with the
/// largest magnitude, breaking ties toward the lower index (the BLAS
/// "first occurrence" convention). A worked example of a *custom*
/// [`racc_core::ReduceOp`] over a non-scalar accumulator type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AbsArgMax;

impl racc_core::ReduceOp<(f64, u64)> for AbsArgMax {
    fn identity(&self) -> (f64, u64) {
        (f64::NEG_INFINITY, u64::MAX)
    }
    fn combine(&self, a: (f64, u64), b: (f64, u64)) -> (f64, u64) {
        if b.0 > a.0 || (b.0 == a.0 && b.1 < a.1) {
            b
        } else {
            a
        }
    }
}

/// Index of the element with the largest magnitude (BLAS IAMAX), first
/// occurrence on ties. Returns `None` for an empty array.
pub fn iamax<B: Backend>(ctx: &Context<B>, x: &Array1<f64>) -> Option<usize> {
    let n = x.len();
    if n == 0 {
        return None;
    }
    let xv = x.view();
    let (_, idx) = ctx.parallel_reduce_with(n, &crate::profiles::nrm2(), AbsArgMax, move |i| {
        (xv.get(i).abs(), i as u64)
    });
    Some(idx as usize)
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use racc_core::{SerialBackend, ThreadsBackend};

    #[test]
    fn asum_matches_manual_sum() {
        let ctx = Context::new(ThreadsBackend::with_threads(3));
        let data: Vec<f64> = (0..5000).map(|i| ((i % 7) as f64 - 3.0) * 0.5).collect();
        let x = ctx.array_from(&data).unwrap();
        let got = asum(&ctx, &x);
        let want: f64 = data.iter().map(|v| v.abs()).sum();
        assert!((got - want).abs() < 1e-9 * want);
    }

    #[test]
    fn iamax_finds_first_largest() {
        let ctx = Context::new(SerialBackend::new());
        let x = ctx.array_from(&[1.0, -5.0, 3.0, 5.0, -2.0]).unwrap();
        // |-5| ties |5|; the lower index wins.
        assert_eq!(iamax(&ctx, &x), Some(1));
        let y = ctx.array_from(&[0.0f64; 0]).unwrap();
        assert_eq!(iamax(&ctx, &y), None);
        let z = ctx.array_from(&[0.0, 0.0, 0.0]).unwrap();
        assert_eq!(iamax(&ctx, &z), Some(0));
    }

    #[test]
    fn iamax_agrees_across_backends() {
        let data: Vec<f64> = (0..10_000)
            .map(|i| (((i * 2654435761usize) % 99991) as f64 - 49995.0) * 1e-3)
            .collect();
        let serial = {
            let ctx = Context::new(SerialBackend::new());
            let x = ctx.array_from(&data).unwrap();
            iamax(&ctx, &x)
        };
        let threads = {
            let ctx = Context::new(ThreadsBackend::with_threads(4));
            let x = ctx.array_from(&data).unwrap();
            iamax(&ctx, &x)
        };
        assert_eq!(serial, threads);
        // And it matches the obvious scan.
        let want = data
            .iter()
            .enumerate()
            .max_by(|(i, a), (j, b)| {
                a.abs().partial_cmp(&b.abs()).unwrap().then(j.cmp(i)) // lower index wins ties
            })
            .map(|(i, _)| i);
        assert_eq!(serial, want);
    }
}
