//! Launch-overhead microbenchmark: **launches per second** through each
//! simulated vendor API (cudasim / hipsim / oneapisim) and the threads
//! backend, for an empty kernel and an AXPY-shaped kernel.
//!
//! The paper's overhead claim (Figs. 8–13) assumes dispatch is cheap; in the
//! simulator the functional execution of a launch is host work, so per-block
//! allocations or per-thread div/mods show up directly as lost launches/sec.
//! This bench is the gate for the hot-path work in `racc-gpusim`: the
//! `empty/*` series isolates pure dispatch overhead (nothing but context
//! plumbing per thread), while `axpy/*` adds a realistic memory-bound body.
//!
//! Set `RACC_BENCH_QUICK=1` for a smoke-test run (small grids, few samples)
//! — used by CI to keep the bench from rotting without paying for a full
//! measurement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use racc_core::{Context, KernelProfile, ThreadsBackend};
use racc_cudasim::Cuda;
use racc_gpusim::perf::KernelCost;
use racc_hipsim::Hip;
use racc_oneapisim::OneApi;

fn quick() -> bool {
    std::env::var_os("RACC_BENCH_QUICK").is_some()
}

fn sample_size() -> usize {
    if quick() {
        3
    } else {
        10
    }
}

/// Small-block grid shape: many blocks of few threads, the worst case for
/// per-block launch overhead.
fn empty_shape() -> (u32, u32) {
    if quick() {
        (128, 32) // blocks, threads
    } else {
        (1024, 32)
    }
}

fn axpy_n() -> usize {
    if quick() {
        1 << 12
    } else {
        1 << 16
    }
}

/// An empty launch: every thread receives its context and does nothing.
/// Measures pure per-launch + per-block + per-thread harness overhead.
fn bench_empty(c: &mut Criterion) {
    let (blocks, threads) = empty_shape();
    let mut group = c.benchmark_group("launch_overhead_empty");
    group.sample_size(sample_size());
    // One launch per iteration: Melem/s in the report reads as launches/µs.
    group.throughput(Throughput::Elements(1));
    let shape = format!("{blocks}x{threads}");

    let cuda = Cuda::new();
    group.bench_with_input(BenchmarkId::new("cudasim", &shape), &(), |b, _| {
        b.iter(|| {
            cuda.launch(threads, blocks, 0, KernelCost::default(), |_| {})
                .unwrap()
        })
    });

    let hip = Hip::new();
    group.bench_with_input(BenchmarkId::new("hipsim", &shape), &(), |b, _| {
        b.iter(|| {
            hip.launch(threads, blocks, 0, KernelCost::default(), |_| {})
                .unwrap()
        })
    });

    let oneapi = OneApi::new();
    group.bench_with_input(BenchmarkId::new("oneapisim", &shape), &(), |b, _| {
        b.iter(|| {
            oneapi
                .launch(threads, blocks, 0, KernelCost::default(), |_| {})
                .unwrap()
        })
    });

    let ctx = Context::new(ThreadsBackend::new());
    let n = (blocks * threads) as usize;
    group.bench_with_input(BenchmarkId::new("threads", n), &(), |b, _| {
        b.iter(|| ctx.parallel_for(n, &KernelProfile::axpy(), |_i| {}))
    });

    // Gate for the fusion knob: a context built with fusion explicitly off
    // must dispatch exactly like the plain one — the knob lives outside the
    // launch hot path, so this series must track `threads` (~71 ns empty).
    let ctx_off = Context::builder(ThreadsBackend::new())
        .fusion(false)
        .build();
    group.bench_with_input(BenchmarkId::new("threads-fusion-off", n), &(), |b, _| {
        b.iter(|| ctx_off.parallel_for(n, &KernelProfile::axpy(), |_i| {}))
    });

    group.finish();
}

/// AXPY-shaped launch: one global read-modify-write per thread, 256-thread
/// blocks — the dispatch shape behind Fig. 8's BLAS-1 series.
fn bench_axpy(c: &mut Criterion) {
    let n = axpy_n();
    let threads = 256u32;
    let blocks = n.div_ceil(threads as usize) as u32;
    let cost = KernelCost::new(2.0, 16.0, 8.0, 1.0);

    let mut group = c.benchmark_group("launch_overhead_axpy");
    group.sample_size(sample_size());
    group.throughput(Throughput::Elements(1));

    let host_x = vec![1.0f64; n];
    let host_y = vec![2.0f64; n];

    let cuda = Cuda::new();
    let x = cuda.cu_array(&host_x).unwrap();
    let y = cuda.cu_array(&host_y).unwrap();
    let (xv, yv) = (cuda.view_mut(&x).unwrap(), cuda.view(&y).unwrap());
    group.bench_with_input(BenchmarkId::new("cudasim", n), &(), |b, _| {
        b.iter(|| {
            cuda.launch(threads, blocks, 0, cost, |t| {
                let i = t.global_id_x();
                if i < n {
                    xv.set(i, xv.get(i) + 2.5 * yv.get(i));
                }
            })
            .unwrap()
        })
    });

    let hip = Hip::new();
    let x = hip.roc_array(&host_x).unwrap();
    let y = hip.roc_array(&host_y).unwrap();
    let (xv, yv) = (hip.view_mut(&x).unwrap(), hip.view(&y).unwrap());
    group.bench_with_input(BenchmarkId::new("hipsim", n), &(), |b, _| {
        b.iter(|| {
            hip.launch(threads, blocks, 0, cost, |t| {
                let i = t.global_id_x();
                if i < n {
                    xv.set(i, xv.get(i) + 2.5 * yv.get(i));
                }
            })
            .unwrap()
        })
    });

    let oneapi = OneApi::new();
    let x = oneapi.one_array(&host_x).unwrap();
    let y = oneapi.one_array(&host_y).unwrap();
    let (xv, yv) = (oneapi.view_mut(&x).unwrap(), oneapi.view(&y).unwrap());
    group.bench_with_input(BenchmarkId::new("oneapisim", n), &(), |b, _| {
        b.iter(|| {
            oneapi
                .launch(threads, blocks, 0, cost, |t| {
                    let i = t.global_id_x();
                    if i < n {
                        xv.set(i, xv.get(i) + 2.5 * yv.get(i));
                    }
                })
                .unwrap()
        })
    });

    let ctx = Context::new(ThreadsBackend::new());
    let x = ctx.array_from(&host_x).unwrap();
    let y = ctx.array_from(&host_y).unwrap();
    group.bench_with_input(BenchmarkId::new("threads", n), &(), |b, _| {
        b.iter(|| {
            let (xv, yv) = (x.view_mut(), y.view());
            ctx.parallel_for(n, &KernelProfile::axpy(), move |i| {
                xv.set(i, xv.get(i) + 2.5 * yv.get(i));
            })
        })
    });

    group.finish();
}

criterion_group!(benches, bench_empty, bench_axpy);
criterion_main!(benches);
