//! The overhead claim, measured in **real wall-clock time** on the CPU
//! path: the portability layer (RACC Threads backend) versus hand-written
//! thread-pool code versus a plain serial loop, for AXPY and DOT.
//!
//! This is the one claim the reproduction can verify with real time (no
//! hardware model in the loop): if RACC's abstraction were expensive, the
//! `racc/*` series would sit above `direct/*`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use racc_blas::portable as pblas;
use racc_core::{Context, ThreadsBackend};
use racc_threadpool::{Schedule, ThreadPool};

fn bench_axpy(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("overhead_cpu_axpy");
    for exp in [12u32, 16, 20] {
        let n = 1usize << exp;
        group.throughput(Throughput::Elements(n as u64));

        // Plain serial loop.
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, &n| {
            let mut x = vec![1.0f64; n];
            let y = vec![2.0f64; n];
            b.iter(|| {
                for i in 0..n {
                    x[i] += 2.5 * y[i];
                }
                std::hint::black_box(&mut x);
            })
        });

        // Hand-written pool code (the "device-specific" CPU baseline).
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, &n| {
            let pool = ThreadPool::new(threads);
            let mut x = vec![1.0f64; n];
            let y = vec![2.0f64; n];
            b.iter(|| {
                pool.parallel_for_slices(&mut x, |offset, block| {
                    for (i, xi) in block.iter_mut().enumerate() {
                        *xi += 2.5 * y[offset + i];
                    }
                });
                std::hint::black_box(&mut x);
            })
        });

        // The same operation through the RACC front end.
        group.bench_with_input(BenchmarkId::new("racc", n), &n, |b, &n| {
            let ctx = Context::new(ThreadsBackend::with_threads(threads));
            let x = ctx.array_from(&vec![1.0f64; n]).unwrap();
            let y = ctx.array_from(&vec![2.0f64; n]).unwrap();
            b.iter(|| {
                pblas::axpy(&ctx, 2.5, &x, &y);
                std::hint::black_box(&x);
            })
        });
    }
    group.finish();
}

fn bench_dot(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut group = c.benchmark_group("overhead_cpu_dot");
    for exp in [12u32, 16, 20] {
        let n = 1usize << exp;
        group.throughput(Throughput::Elements(n as u64));

        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, &n| {
            let x = vec![1.5f64; n];
            let y = vec![2.0f64; n];
            b.iter(|| {
                let s: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
                std::hint::black_box(s)
            })
        });

        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, &n| {
            let pool = ThreadPool::new(threads);
            let x = vec![1.5f64; n];
            let y = vec![2.0f64; n];
            b.iter(|| {
                let s = pool.parallel_reduce(
                    n,
                    Schedule::Static,
                    0.0f64,
                    |i| x[i] * y[i],
                    |a, b| a + b,
                );
                std::hint::black_box(s)
            })
        });

        group.bench_with_input(BenchmarkId::new("racc", n), &n, |b, &n| {
            let ctx = Context::new(ThreadsBackend::with_threads(threads));
            let x = ctx.array_from(&vec![1.5f64; n]).unwrap();
            let y = ctx.array_from(&vec![2.0f64; n]).unwrap();
            b.iter(|| {
                let s = pblas::dot(&ctx, &x, &y);
                std::hint::black_box(s)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_axpy, bench_dot);
criterion_main!(benches);
