//! Work-stealing ablation (DESIGN.md §14): the Chase–Lev deque core vs a
//! recreation of the old shared-cursor dynamic-chunk dispatch, on the two
//! workloads where they differ most — a ragged power-law CSR matvec (heavy
//! rows strand a fixed-chunk split) and a skewed triangular-cost loop.
//!
//! The `figures -- bench-steal` binary measures the same pair core-vs-core
//! with interleaved wall-clock windows and emits `results/BENCH_steal.json`
//! for the CI regression gate; this criterion bench is the interactive
//! drill-down with per-schedule statistics.
//!
//! Set `RACC_BENCH_THREADS` to fix the pool width (CI boxes often report
//! `available_parallelism() == 1`). `RACC_GRAIN` overrides the deque core's
//! split grain for `Schedule::Dynamic { chunk: 0 }`; non-zero `chunk`
//! values set the grain directly.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use racc_cg::csr::Csr;
use racc_threadpool::{Schedule, ThreadPool};

fn bench_threads() -> usize {
    std::env::var("RACC_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// The pre-deque dispatch: every participant spins on one shared cursor,
/// claiming `chunk` iterations per atomic grab.
fn counter_for(pool: &ThreadPool, n: usize, chunk: usize, f: &(impl Fn(usize) + Sync)) {
    let cursor = AtomicUsize::new(0);
    pool.broadcast(|_| loop {
        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
        if start >= n {
            break;
        }
        let end = (start + chunk).min(n);
        for i in start..end {
            f(i);
        }
    });
}

fn work(units: usize) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..units {
        acc += (i as f64).sqrt();
    }
    acc
}

fn bench_steal(c: &mut Criterion) {
    let threads = bench_threads();
    let sched = Schedule::Dynamic { chunk: 0 };
    let mut group = c.benchmark_group("steal");
    group.sample_size(10);

    // Ragged power-law CSR matvec.
    {
        let n = 1 << 9;
        let a = Csr::ragged_power_law(n, 256, 42);
        let x: Vec<f64> = (0..n).map(|i| 0.25 * ((i % 9) as f64) - 1.0).collect();
        let y: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let row = |r: usize| {
            let mut acc = 0.0;
            for idx in a.row_ptr[r]..a.row_ptr[r + 1] {
                acc += a.values[idx] * x[a.col_idx[idx]];
            }
            y[r].store(acc.to_bits(), Ordering::Relaxed);
        };
        group.bench_with_input(BenchmarkId::new("ragged-csr", "chunk-core"), &n, |b, &n| {
            let pool = ThreadPool::new(threads);
            let chunk = sched.dynamic_chunk(n, pool.num_threads());
            b.iter(|| counter_for(&pool, n, chunk, &row));
        });
        group.bench_with_input(BenchmarkId::new("ragged-csr", "deque-core"), &n, |b, &n| {
            let pool = ThreadPool::new(threads);
            b.iter(|| pool.parallel_for(n, sched, row));
        });
    }

    // Skewed triangular cost (iteration i costs ~i).
    {
        let n = 1 << 11;
        let out: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        let body = |i: usize| {
            out[i].store(work(i / 8).to_bits(), Ordering::Relaxed);
        };
        group.bench_with_input(BenchmarkId::new("skewed", "chunk-core"), &n, |b, &n| {
            let pool = ThreadPool::new(threads);
            let chunk = sched.dynamic_chunk(n, pool.num_threads());
            b.iter(|| counter_for(&pool, n, chunk, &body));
        });
        group.bench_with_input(BenchmarkId::new("skewed", "deque-core"), &n, |b, &n| {
            let pool = ThreadPool::new(threads);
            b.iter(|| pool.parallel_for(n, sched, body));
        });
    }

    group.finish();
}

criterion_group!(benches, bench_steal);
criterion_main!(benches);
