//! Criterion companion to Fig. 13 (one CG iteration); modeled-time figure
//! via `figures -- fig13`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use racc_bench::{runners, Arch};

fn bench_fig13(c: &mut Criterion) {
    let n = 1 << 16;
    let mut group = c.benchmark_group("fig13_cg");
    group.sample_size(10);
    for arch in Arch::all() {
        group.bench_with_input(BenchmarkId::new("iteration", arch.label()), &n, |b, &n| {
            b.iter(|| std::hint::black_box(runners::cg_iteration(arch, n)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig13);
criterion_main!(benches);
