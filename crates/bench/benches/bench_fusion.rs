//! Fusion microbenchmark: wall-clock time per CG iteration and per
//! expression-chain round — **eager vs fused** for CG, and **eager vs
//! interpreted vs compiled** for the expression chain — on the CPU
//! backends and the three simulated vendor APIs.
//!
//! This is the wall-clock companion of `figures -- bench-fusion` (which
//! also records construct counts, the modeled timeline, and plan-cache
//! counters, and writes `results/BENCH_fusion.json`). The interesting
//! comparisons are within a backend: `eager/*` vs `compiled/*` is the
//! full fusion win (fewer launches *and* a cached specialized executor),
//! while `interpreted/*` vs `compiled/*` isolates what compiling the
//! plan buys over re-walking the expression DAG per element.
//!
//! Set `RACC_BENCH_QUICK=1` for a smoke-test run (small vectors, few
//! samples) — used by CI to keep the bench from rotting.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use racc_cg::solver::CgWorkspace;
use racc_cg::tridiag::{DeviceTridiag, Tridiag};
use racc_fuse::{lit, load, LazyExt};

const BACKENDS: [&str; 5] = ["serial", "threads", "cudasim", "hipsim", "oneapisim"];

fn quick() -> bool {
    std::env::var_os("RACC_BENCH_QUICK").is_some()
}

fn sample_size() -> usize {
    if quick() {
        3
    } else {
        10
    }
}

fn problem_n() -> usize {
    if quick() {
        1 << 12
    } else {
        1 << 16
    }
}

fn context(key: &str, fused: bool) -> racc::Ctx {
    let mut b = racc::builder().backend(key).fusion(fused);
    if key == "threads" {
        // Fixed worker count: on a small CI box the default pool can
        // degenerate to one participant, which measures the serial fold
        // instead of the threaded runtime that fusion halves.
        b = b.threads(4);
    }
    b.build().expect("context")
}

/// One CG iteration on the tridiagonal operator — the fig13 inner loop.
fn bench_cg_iteration(c: &mut Criterion) {
    let n = problem_n();
    let a = Tridiag::diagonally_dominant(n);
    let b: Vec<f64> = (0..n).map(|i| 0.5 + ((i % 7) as f64) * 0.1).collect();

    let mut group = c.benchmark_group("fusion_cg_iteration");
    group.sample_size(sample_size());
    group.throughput(Throughput::Elements(1));

    for key in BACKENDS {
        for (mode, fused) in [("eager", false), ("fused", true)] {
            let ctx = context(key, fused);
            let da = DeviceTridiag::upload(&ctx, &a).expect("upload matrix");
            let db = ctx.array_from(&b).expect("upload rhs");
            let mut ws = CgWorkspace::new(&ctx, &db).expect("workspace");
            group.bench_with_input(
                BenchmarkId::new(format!("{mode}/{key}"), n),
                &(),
                |bch, _| bch.iter(|| ws.iterate(&ctx, &da)),
            );
        }
    }

    group.finish();
}

/// The expression-engine chain (two maps + a sum): three constructs eager,
/// one fused launch — interpreted per element, or replayed as a cached
/// compiled plan.
fn bench_expr_chain(c: &mut Criterion) {
    let n = problem_n();

    let mut group = c.benchmark_group("fusion_expr_chain");
    group.sample_size(sample_size());
    group.throughput(Throughput::Elements(1));

    for key in BACKENDS {
        for mode in ["eager", "interpreted", "compiled"] {
            let ctx = context(key, mode != "eager");
            let x = ctx
                .array_from_fn(n, |i| 0.25 * ((i % 9) as f64) - 1.0)
                .expect("x");
            let y = ctx
                .array_from_fn(n, |i| 0.125 * ((i % 5) as f64) + 0.5)
                .expect("y");
            let z = ctx.zeros::<f64>(n).expect("z");
            group.bench_with_input(
                BenchmarkId::new(format!("{mode}/{key}"), n),
                &(),
                |bch, _| {
                    bch.iter(|| {
                        let mut l = match mode {
                            "eager" => ctx.lazy().eager(),
                            "interpreted" => ctx.lazy().interpreted(),
                            _ => ctx.lazy(),
                        };
                        let xn = l.assign(&x, load(&x) * 0.999 + 0.001 * load(&y));
                        let zn = l.assign(&z, (xn - load(&y)).abs());
                        l.sum(zn * lit(2.0))
                    })
                },
            );
        }
    }

    group.finish();
}

criterion_group!(benches, bench_cg_iteration, bench_expr_chain);
criterion_main!(benches);
