//! Criterion companion to Fig. 11 (LBM D2Q9 step); modeled-time figure via
//! `figures -- fig11`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use racc_bench::{runners, Arch};

fn bench_fig11(c: &mut Criterion) {
    let s = 1 << 6;
    let mut group = c.benchmark_group("fig11_lbm");
    group.sample_size(10);
    for arch in Arch::all() {
        group.bench_with_input(BenchmarkId::new("step", arch.label()), &s, |b, &s| {
            b.iter(|| std::hint::black_box(runners::lbm_step(arch, s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
