//! Criterion companion to Fig. 9 (2D AXPY/DOT); modeled-time figure via
//! `figures -- fig9`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use racc_bench::{runners, Arch};

fn bench_fig09(c: &mut Criterion) {
    let s = 1 << 7;
    let mut group = c.benchmark_group("fig09_blas2d");
    group.sample_size(10);
    for arch in Arch::all() {
        group.bench_with_input(BenchmarkId::new("axpy2d", arch.label()), &s, |b, &s| {
            b.iter(|| std::hint::black_box(runners::axpy_2d(arch, s)))
        });
        group.bench_with_input(BenchmarkId::new("dot2d", arch.label()), &s, |b, &s| {
            b.iter(|| std::hint::black_box(runners::dot_2d(arch, s)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig09);
criterion_main!(benches);
