//! Ablation (DESIGN.md §7, §14): static block scheduling vs dynamic
//! work-stealing on the thread pool, real wall time, for a uniform, a
//! skewed (triangular-cost), and a block-loop-shaped workload.
//!
//! Since the deque rework, `Schedule::Dynamic { chunk }` sets the
//! work-stealing *grain* — the smallest tile the binary splitter produces,
//! i.e. the unit of theft — rather than a shared-cursor claim size. The
//! sweep (`dynamic-1` … `dynamic-256`) is what the `chunk: 0` auto-grain
//! heuristic (`n / 8·participants`, clamped) is tuned against: too fine
//! and split/steal traffic dominates, too coarse and skewed workloads
//! lose load balance to the tail tiles. `RACC_GRAIN` overrides the
//! auto-grain at run time without touching call sites.
//!
//! Set `RACC_BENCH_THREADS` to measure a fixed pool width (useful on
//! constrained CI machines where `available_parallelism()` is 1 and every
//! schedule degenerates to the serial path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use racc_threadpool::{Schedule, ThreadPool};

fn work(units: usize) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..units {
        acc += (i as f64).sqrt();
    }
    acc
}

fn bench_threads() -> usize {
    std::env::var("RACC_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn bench_sched(c: &mut Criterion) {
    let threads = bench_threads();
    let n = 4096usize;
    let mut group = c.benchmark_group("ablate_sched");
    group.sample_size(10);

    let schedules: [(&str, Schedule); 6] = [
        ("static", Schedule::Static),
        ("dynamic-auto", Schedule::Dynamic { chunk: 0 }),
        ("dynamic-1", Schedule::Dynamic { chunk: 1 }),
        ("dynamic-16", Schedule::Dynamic { chunk: 16 }),
        ("dynamic-64", Schedule::Dynamic { chunk: 64 }),
        ("dynamic-256", Schedule::Dynamic { chunk: 256 }),
    ];

    for (name, sched) in schedules {
        // Uniform iteration cost: static should win (no stealing traffic).
        group.bench_with_input(BenchmarkId::new("uniform", name), &n, |b, &n| {
            let pool = ThreadPool::new(threads);
            b.iter(|| {
                let s = pool.parallel_reduce(n, sched, 0.0, |_| work(200), |a, b| a + b);
                std::hint::black_box(s)
            })
        });
        // Triangular cost (iteration i costs ~i): dynamic should win.
        group.bench_with_input(BenchmarkId::new("skewed", name), &n, |b, &n| {
            let pool = ThreadPool::new(threads);
            b.iter(|| {
                let s = pool.parallel_reduce(n, sched, 0.0, |i| work(i / 8), |a, b| a + b);
                std::hint::black_box(s)
            })
        });
        // Block-loop shape: each index is one simulated 64-thread block, the
        // iteration profile of `racc-gpusim`'s `execute_grid` block loop.
        group.bench_with_input(BenchmarkId::new("blockloop", name), &n, |b, &n| {
            let pool = ThreadPool::new(threads);
            b.iter(|| {
                let s = pool.parallel_reduce(n, sched, 0.0, |_| work(64), |a, b| a + b);
                std::hint::black_box(s)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
