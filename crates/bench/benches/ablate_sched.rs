//! Ablation (DESIGN.md §6): static block scheduling vs dynamic
//! chunk-stealing on the thread pool, real wall time, for a uniform and a
//! skewed (triangular-cost) workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use racc_threadpool::{Schedule, ThreadPool};

fn work(units: usize) -> f64 {
    let mut acc = 0.0f64;
    for i in 0..units {
        acc += (i as f64).sqrt();
    }
    acc
}

fn bench_sched(c: &mut Criterion) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n = 4096usize;
    let mut group = c.benchmark_group("ablate_sched");
    group.sample_size(10);

    let schedules: [(&str, Schedule); 3] = [
        ("static", Schedule::Static),
        ("dynamic-auto", Schedule::Dynamic { chunk: 0 }),
        ("dynamic-16", Schedule::Dynamic { chunk: 16 }),
    ];

    for (name, sched) in schedules {
        // Uniform iteration cost: static should win (no stealing traffic).
        group.bench_with_input(BenchmarkId::new("uniform", name), &n, |b, &n| {
            let pool = ThreadPool::new(threads);
            b.iter(|| {
                let s = pool.parallel_reduce(n, sched, 0.0, |_| work(200), |a, b| a + b);
                std::hint::black_box(s)
            })
        });
        // Triangular cost (iteration i costs ~i): dynamic should win.
        group.bench_with_input(BenchmarkId::new("skewed", name), &n, |b, &n| {
            let pool = ThreadPool::new(threads);
            b.iter(|| {
                let s = pool.parallel_reduce(n, sched, 0.0, |i| work(i / 8), |a, b| a + b);
                std::hint::black_box(s)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
