//! Shared harness for the paper-reproduction benchmarks.
//!
//! The unit of measurement is **modeled nanoseconds** (see `DESIGN.md` §1):
//! RACC timings come from the backend [`racc_core::Timeline`]; the
//! device-specific timings come from the vendor device clocks (events), the
//! same way the paper's device-specific codes time themselves.

pub mod arch;
pub mod runners;
pub mod table;

pub use arch::Arch;
pub use table::Table;

/// Geometric size sweep `start, start*2, ... <= end`.
pub fn pow2_sizes(start: usize, end: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut n = start;
    while n <= end {
        sizes.push(n);
        n *= 2;
    }
    sizes
}

/// Format nanoseconds with an adaptive unit, aligned for tables.
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.2}us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3}ms", ns / 1e6)
    } else {
        format!("{:.3}s", ns / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_geometric() {
        assert_eq!(pow2_sizes(4, 32), vec![4, 8, 16, 32]);
        assert_eq!(pow2_sizes(5, 4), Vec::<usize>::new());
        assert_eq!(pow2_sizes(7, 7), vec![7]);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500.0), "500ns");
        assert_eq!(fmt_ns(1_500.0), "1.50us");
        assert_eq!(fmt_ns(2_500_000.0), "2.500ms");
        assert_eq!(fmt_ns(3.2e9), "3.200s");
    }
}
