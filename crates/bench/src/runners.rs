//! Per-experiment measurement runners: each returns the device-specific and
//! the RACC modeled time for one architecture at one size.

use racc_blas::{portable as pblas, vendor as vblas};
use racc_cg::solver::CgWorkspace;
use racc_cg::tridiag::{DeviceTridiag, Tridiag};
use racc_cg::vendor as vcg;
use racc_core::cpumodel::CpuSpec;
use racc_lbm::portable::LbmSim;
use racc_lbm::vendor as vlbm;
use racc_threadpool::ThreadPool;

use crate::arch::Arch;

/// One (device-specific, RACC) timing pair, modeled nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// The hand-written vendor-API implementation.
    pub dev_ns: f64,
    /// The portable RACC implementation.
    pub racc_ns: f64,
}

impl Measurement {
    /// RACC time over device-specific time (1.0 = no overhead).
    pub fn overhead(&self) -> f64 {
        self.racc_ns / self.dev_ns
    }
}

fn host_pool() -> ThreadPool {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    ThreadPool::new(threads)
}

fn vec_a(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 1103515245 + 12345) % 1000) as f64 / 100.0)
        .collect()
}

fn vec_b(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i * 69069 + 1) % 1000) as f64 / 100.0)
        .collect()
}

const ALPHA: f64 = 2.5;

/// Fig. 8 (left): 1D AXPY time at size `n` on `arch`.
pub fn axpy_1d(arch: Arch, n: usize) -> Measurement {
    let dev_ns = match arch {
        Arch::CpuRome => {
            let pool = host_pool();
            let cpu = CpuSpec::epyc_7742_rome();
            let mut x = vec_a(n);
            vblas::threads::axpy(&pool, &cpu, ALPHA, &mut x, &vec_b(n)) as f64
        }
        Arch::A100 => {
            let cuda = racc_cudasim::Cuda::new();
            let dx = cuda.cu_array(&vec_a(n)).expect("alloc x");
            let dy = cuda.cu_array(&vec_b(n)).expect("alloc y");
            vblas::cuda::axpy(&cuda, ALPHA, &dx, &dy) as f64
        }
        Arch::Mi100 => {
            let hip = racc_hipsim::Hip::new();
            let dx = hip.roc_array(&vec_a(n)).expect("alloc x");
            let dy = hip.roc_array(&vec_b(n)).expect("alloc y");
            vblas::hip::axpy(&hip, ALPHA, &dx, &dy) as f64
        }
        Arch::Max1550 => {
            let one = racc_oneapisim::OneApi::new();
            let dx = one.one_array(&vec_a(n)).expect("alloc x");
            let dy = one.one_array(&vec_b(n)).expect("alloc y");
            vblas::oneapi::axpy(&one, ALPHA, &dx, &dy) as f64
        }
    };
    let ctx = arch.context();
    let x = ctx.array_from(&vec_a(n)).expect("alloc x");
    let y = ctx.array_from(&vec_b(n)).expect("alloc y");
    ctx.reset_timeline();
    pblas::axpy(&ctx, ALPHA, &x, &y);
    Measurement {
        dev_ns,
        racc_ns: ctx.modeled_ns() as f64,
    }
}

/// Fig. 8 (right): 1D DOT time at size `n` on `arch`.
pub fn dot_1d(arch: Arch, n: usize) -> Measurement {
    let dev_ns = match arch {
        Arch::CpuRome => {
            let pool = host_pool();
            let cpu = CpuSpec::epyc_7742_rome();
            vblas::threads::dot(&pool, &cpu, &vec_a(n), &vec_b(n)).1 as f64
        }
        Arch::A100 => {
            let cuda = racc_cudasim::Cuda::new();
            let dx = cuda.cu_array(&vec_a(n)).expect("alloc x");
            let dy = cuda.cu_array(&vec_b(n)).expect("alloc y");
            vblas::cuda::dot(&cuda, &dx, &dy).1 as f64
        }
        Arch::Mi100 => {
            let hip = racc_hipsim::Hip::new();
            let dx = hip.roc_array(&vec_a(n)).expect("alloc x");
            let dy = hip.roc_array(&vec_b(n)).expect("alloc y");
            vblas::hip::dot(&hip, &dx, &dy).1 as f64
        }
        Arch::Max1550 => {
            let one = racc_oneapisim::OneApi::new();
            let dx = one.one_array(&vec_a(n)).expect("alloc x");
            let dy = one.one_array(&vec_b(n)).expect("alloc y");
            vblas::oneapi::dot(&one, &dx, &dy).1 as f64
        }
    };
    let ctx = arch.context();
    let x = ctx.array_from(&vec_a(n)).expect("alloc x");
    let y = ctx.array_from(&vec_b(n)).expect("alloc y");
    ctx.reset_timeline();
    let _ = pblas::dot(&ctx, &x, &y);
    Measurement {
        dev_ns,
        racc_ns: ctx.modeled_ns() as f64,
    }
}

/// Fig. 9 (left): 2D AXPY time on an `s × s` array.
pub fn axpy_2d(arch: Arch, s: usize) -> Measurement {
    let n = s * s;
    let dev_ns = match arch {
        Arch::CpuRome => {
            let pool = host_pool();
            let cpu = CpuSpec::epyc_7742_rome();
            let mut x = vec_a(n);
            vblas::threads::axpy_2d(&pool, &cpu, ALPHA, s, s, &mut x, &vec_b(n)) as f64
        }
        Arch::A100 => {
            let cuda = racc_cudasim::Cuda::new();
            let dx = cuda.cu_array(&vec_a(n)).expect("alloc x");
            let dy = cuda.cu_array(&vec_b(n)).expect("alloc y");
            vblas::cuda::axpy_2d(&cuda, ALPHA, s, s, &dx, &dy) as f64
        }
        Arch::Mi100 => {
            let hip = racc_hipsim::Hip::new();
            let dx = hip.roc_array(&vec_a(n)).expect("alloc x");
            let dy = hip.roc_array(&vec_b(n)).expect("alloc y");
            vblas::hip::axpy_2d(&hip, ALPHA, s, s, &dx, &dy) as f64
        }
        Arch::Max1550 => {
            let one = racc_oneapisim::OneApi::new();
            let dx = one.one_array(&vec_a(n)).expect("alloc x");
            let dy = one.one_array(&vec_b(n)).expect("alloc y");
            vblas::oneapi::axpy_2d(&one, ALPHA, s, s, &dx, &dy) as f64
        }
    };
    let ctx = arch.context();
    let x = ctx.array2_from(s, s, &vec_a(n)).expect("alloc x");
    let y = ctx.array2_from(s, s, &vec_b(n)).expect("alloc y");
    ctx.reset_timeline();
    pblas::axpy_2d(&ctx, ALPHA, &x, &y);
    Measurement {
        dev_ns,
        racc_ns: ctx.modeled_ns() as f64,
    }
}

/// Fig. 9 (right): 2D DOT time on an `s × s` array.
pub fn dot_2d(arch: Arch, s: usize) -> Measurement {
    let n = s * s;
    let dev_ns = match arch {
        Arch::CpuRome => {
            let pool = host_pool();
            let cpu = CpuSpec::epyc_7742_rome();
            vblas::threads::dot_2d(&pool, &cpu, s, s, &vec_a(n), &vec_b(n)).1 as f64
        }
        Arch::A100 => {
            let cuda = racc_cudasim::Cuda::new();
            let dx = cuda.cu_array(&vec_a(n)).expect("alloc x");
            let dy = cuda.cu_array(&vec_b(n)).expect("alloc y");
            vblas::cuda::dot_2d(&cuda, s, s, &dx, &dy).1 as f64
        }
        Arch::Mi100 => {
            let hip = racc_hipsim::Hip::new();
            let dx = hip.roc_array(&vec_a(n)).expect("alloc x");
            let dy = hip.roc_array(&vec_b(n)).expect("alloc y");
            vblas::hip::dot_2d(&hip, s, s, &dx, &dy).1 as f64
        }
        Arch::Max1550 => {
            let one = racc_oneapisim::OneApi::new();
            let dx = one.one_array(&vec_a(n)).expect("alloc x");
            let dy = one.one_array(&vec_b(n)).expect("alloc y");
            vblas::oneapi::dot_2d(&one, s, s, &dx, &dy).1 as f64
        }
    };
    let ctx = arch.context();
    let x = ctx.array2_from(s, s, &vec_a(n)).expect("alloc x");
    let y = ctx.array2_from(s, s, &vec_b(n)).expect("alloc y");
    ctx.reset_timeline();
    let _ = pblas::dot_2d(&ctx, &x, &y);
    Measurement {
        dev_ns,
        racc_ns: ctx.modeled_ns() as f64,
    }
}

const LBM_TAU: f64 = 0.8;

/// Fig. 11: one LBM D2Q9 time step on an `s × s` grid.
pub fn lbm_step(arch: Arch, s: usize) -> Measurement {
    let init = vlbm::uniform_init(s, 1.0, 0.02, 0.0);
    let dev_ns = match arch {
        Arch::CpuRome => {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let mut sim = vlbm::ThreadsLbm::new(threads, s, LBM_TAU, &init);
            sim.step() as f64
        }
        Arch::A100 => {
            let mut sim = vlbm::CudaLbm::new(s, LBM_TAU, &init);
            sim.step() as f64
        }
        Arch::Mi100 => {
            let mut sim = vlbm::HipLbm::new(s, LBM_TAU, &init);
            sim.step() as f64
        }
        Arch::Max1550 => {
            let mut sim = vlbm::OneApiLbm::new(s, LBM_TAU, &init);
            sim.step() as f64
        }
    };
    let ctx = arch.context();
    let mut sim = LbmSim::uniform(&ctx, s, LBM_TAU, 1.0, 0.02, 0.0).expect("alloc lattices");
    ctx.reset_timeline();
    sim.step();
    Measurement {
        dev_ns,
        racc_ns: ctx.modeled_ns() as f64,
    }
}

/// Fig. 13: one CG iteration on the diagonally dominant tridiagonal system
/// of dimension `n`.
pub fn cg_iteration(arch: Arch, n: usize) -> Measurement {
    let a = Tridiag::diagonally_dominant(n);
    let b: Vec<f64> = (0..n).map(|i| 0.5 + ((i % 7) as f64) * 0.1).collect();
    let dev_ns = match arch {
        Arch::CpuRome => {
            let threads = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let mut cg = vcg::ThreadsCg::new(threads, a.clone(), &b);
            cg.iterate().1 as f64
        }
        Arch::A100 => {
            let mut cg = vcg::CudaCg::new(&a, &b);
            cg.iterate().1 as f64
        }
        Arch::Mi100 => {
            let mut cg = vcg::HipCg::new(&a, &b);
            cg.iterate().1 as f64
        }
        Arch::Max1550 => {
            let mut cg = vcg::OneApiCg::new(&a, &b);
            cg.iterate().1 as f64
        }
    };
    let ctx = arch.context();
    let da = DeviceTridiag::upload(&ctx, &a).expect("upload matrix");
    let db = ctx.array_from(&b).expect("upload rhs");
    let mut ws = CgWorkspace::new(&ctx, &db).expect("workspace");
    ctx.reset_timeline();
    let _ = ws.iterate(&ctx, &da);
    Measurement {
        dev_ns,
        racc_ns: ctx.modeled_ns() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_runners_produce_positive_pairs() {
        for arch in Arch::all() {
            for m in [
                axpy_1d(arch, 4096),
                dot_1d(arch, 4096),
                axpy_2d(arch, 64),
                dot_2d(arch, 64),
                lbm_step(arch, 32),
                cg_iteration(arch, 4096),
            ] {
                assert!(m.dev_ns > 0.0, "{arch:?}: {m:?}");
                assert!(m.racc_ns > 0.0, "{arch:?}: {m:?}");
                assert!(m.overhead() > 0.0);
            }
        }
    }

    #[test]
    fn racc_overhead_is_bounded_at_large_sizes() {
        // The headline claim: near the bandwidth-bound regime the RACC time
        // is within a few percent of the device-specific time.
        let n = 1 << 22;
        for arch in Arch::all() {
            let m = axpy_1d(arch, n);
            assert!(
                m.overhead() < 1.10,
                "{arch:?}: axpy overhead {:.3}",
                m.overhead()
            );
        }
    }

    #[test]
    fn gpus_win_large_axpy_cpu_wins_small_dot() {
        // Shape anchors of Fig. 8.
        let large = 1 << 22;
        let cpu = axpy_1d(Arch::CpuRome, large);
        // Calibrated floors: MI100/A100 win big; the Max 1550 (calibrated to
        // the paper's weak Intel results) still wins clearly.
        for (gpu, factor) in [
            (Arch::Mi100, 10.0),
            (Arch::A100, 10.0),
            (Arch::Max1550, 3.0),
        ] {
            let g = axpy_1d(gpu, large);
            assert!(
                g.racc_ns * factor < cpu.racc_ns,
                "{gpu:?} must beat CPU by >{factor}x at {large}: {} vs {}",
                g.racc_ns,
                cpu.racc_ns
            );
        }
        let small = 1 << 12;
        let cpu = dot_1d(Arch::CpuRome, small);
        let gpu = dot_1d(Arch::Mi100, small);
        assert!(
            cpu.racc_ns < gpu.racc_ns,
            "CPU wins small DOT: {} vs {}",
            cpu.racc_ns,
            gpu.racc_ns
        );
    }
}
