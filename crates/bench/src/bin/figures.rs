//! Regenerate every figure/table of the paper's evaluation (JACC, SC'24).
//!
//! ```text
//! cargo run --release -p racc-bench --bin figures -- all
//! cargo run --release -p racc-bench --bin figures -- fig8 [--full]
//! ```
//!
//! Commands: `fig8`, `fig9`, `fig11`, `fig13`, `speedups`, `overhead`,
//! `ablate-coalescing`, `ablate-reduce`, `all`. `--full` uses the paper's
//! larger problem sizes (slower; needs several GB of RAM).
//!
//! `trace <experiment>` decomposes one experiment launch-by-launch on all
//! four architectures: per-kernel roofline summaries on stdout, and a
//! combined chrome://tracing JSON under `results/`.
//!
//! Times are **modeled nanoseconds** from the analytic machine models (see
//! `DESIGN.md` §1 and `EXPERIMENTS.md`); `dev` columns are the
//! device-specific implementations, `racc` columns the portable ones.

use racc_bench::runners::{self, Measurement};
use racc_bench::{fmt_ns, pow2_sizes, Arch, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    match cmd {
        "fig8" => fig8(full),
        "fig9" => fig9(full),
        "fig11" => fig11(full),
        "fig13" => fig13(full),
        "speedups" => speedups(full),
        "overhead" => overhead(full),
        "ablate-coalescing" => ablate_coalescing(),
        "ablate-reduce" => ablate_reduce(full),
        "ablate-lbm-launch" => ablate_lbm_launch(),
        "trace" => {
            let experiment = args
                .iter()
                .filter(|a| !a.starts_with("--"))
                .nth(1)
                .map(String::as_str)
                .unwrap_or("fig8");
            trace_experiment(experiment, full);
        }
        "all" => {
            fig8(full);
            fig9(full);
            fig11(full);
            fig13(full);
            speedups(full);
            overhead(full);
            ablate_coalescing();
            ablate_reduce(full);
            ablate_lbm_launch();
        }
        other => {
            eprintln!(
                "unknown command {other:?}; expected fig8|fig9|fig11|fig13|speedups|overhead|ablate-coalescing|ablate-reduce|ablate-lbm-launch|trace|all"
            );
            std::process::exit(2);
        }
    }
}

/// Device peak rates for the roofline column of the kernel summary.
fn peaks(arch: Arch) -> racc::trace::summary::RooflinePeaks {
    use racc_core::cpumodel::CpuSpec;
    use racc_gpusim::profiles;
    let (flops, bytes) = match arch {
        Arch::CpuRome => {
            let cpu = CpuSpec::epyc_7742_rome();
            (cpu.achieved_flops_per_sec, cpu.achieved_bw_bytes_per_sec)
        }
        Arch::Mi100 => {
            let d = profiles::amd_mi100();
            (d.fp64_flops_per_sec, d.mem_bw_bytes_per_sec)
        }
        Arch::A100 => {
            let d = profiles::nvidia_a100();
            (d.fp64_flops_per_sec, d.mem_bw_bytes_per_sec)
        }
        Arch::Max1550 => {
            let d = profiles::intel_max1550();
            (d.fp64_flops_per_sec, d.mem_bw_bytes_per_sec)
        }
    };
    racc::trace::summary::RooflinePeaks {
        gflops: flops / 1e9,
        gbs: bytes / 1e9,
    }
}

/// Run one experiment's RACC path on a traced context (uploads included —
/// the recorder and the timeline both start at context creation, so their
/// totals must reconcile exactly).
fn traced_workload(ctx: &racc::Ctx, experiment: &str, full: bool) {
    use racc_blas::portable as pblas;
    use racc_cg::solver::CgWorkspace;
    use racc_cg::tridiag::{DeviceTridiag, Tridiag};
    use racc_lbm::portable::LbmSim;
    const ALPHA: f64 = 2.5;
    match experiment {
        "fig8" => {
            let n = if full { 1 << 26 } else { 1 << 20 };
            let x = ctx
                .array_from_fn(n, |i| ((i % 1000) as f64) * 0.01)
                .expect("alloc x");
            let y = ctx
                .array_from_fn(n, |i| (((i + 7) % 1000) as f64) * 0.01)
                .expect("alloc y");
            pblas::axpy(ctx, ALPHA, &x, &y);
            let _ = pblas::dot(ctx, &x, &y);
        }
        "fig9" => {
            let s = if full { 1 << 11 } else { 1 << 9 };
            let host: Vec<f64> = (0..s * s).map(|i| ((i % 1000) as f64) * 0.01).collect();
            let x = ctx.array2_from(s, s, &host).expect("alloc x");
            let y = ctx.array2_from(s, s, &host).expect("alloc y");
            pblas::axpy_2d(ctx, ALPHA, &x, &y);
            let _ = pblas::dot_2d(ctx, &x, &y);
        }
        "fig11" => {
            let s = if full { 1 << 10 } else { 256 };
            let mut sim = LbmSim::uniform(ctx, s, 0.8, 1.0, 0.02, 0.0).expect("alloc lattices");
            sim.step();
        }
        "fig13" => {
            let n = if full { 1 << 24 } else { 1 << 20 };
            let a = Tridiag::diagonally_dominant(n);
            let b: Vec<f64> = (0..n).map(|i| 0.5 + ((i % 7) as f64) * 0.1).collect();
            let da = DeviceTridiag::upload(ctx, &a).expect("upload A");
            let db = ctx.array_from(&b).expect("upload b");
            let mut ws = CgWorkspace::new(ctx, &db).expect("workspace");
            let _ = ws.iterate(ctx, &da);
        }
        other => {
            eprintln!("unknown trace experiment {other:?}; expected fig8|fig9|fig11|fig13");
            std::process::exit(2);
        }
    }
}

/// `trace <experiment>`: per-launch decomposition on all four
/// architectures, with a reconciliation check against the timeline.
fn trace_experiment(experiment: &str, full: bool) {
    let mut groups: Vec<(&'static str, Vec<racc::trace::Span>)> = Vec::new();
    for arch in Arch::all() {
        let ctx = racc::builder()
            .backend(arch.backend_key())
            .trace(true)
            .trace_capacity(1 << 16)
            .build()
            .expect("backend compiled in");
        traced_workload(&ctx, experiment, full);

        let spans = ctx.trace_spans();
        let recorder = ctx.tracer().expect("traced context has a recorder");
        assert_eq!(recorder.dropped(), 0, "trace ring buffer overflowed");
        let span_ns = racc::trace::total_modeled_ns(&spans);
        let timeline_ns = ctx.modeled_ns();
        println!(
            "\n=== {experiment} on {} ({} spans) ===",
            arch.label(),
            spans.len()
        );
        print!(
            "{}",
            racc::trace::summary::kernel_summary(&spans, Some(peaks(arch)))
        );
        println!(
            "span modeled total {} vs timeline {} — {}",
            fmt_ns(span_ns as f64),
            fmt_ns(timeline_ns as f64),
            if span_ns == timeline_ns {
                "exact match"
            } else {
                "MISMATCH"
            }
        );
        assert_eq!(
            span_ns,
            timeline_ns,
            "span sum must reconcile with the timeline on {}",
            arch.label()
        );
        groups.push((arch.label(), spans));
    }

    let refs: Vec<(&str, &[racc::trace::Span])> = groups
        .iter()
        .map(|(label, spans)| (*label, spans.as_slice()))
        .collect();
    let json = racc::trace::chrome::chrome_trace(&refs);
    racc::trace::json::validate(&json).expect("chrome trace must be valid JSON");
    std::fs::create_dir_all("results").expect("create results/");
    let path = format!("results/trace_{experiment}.json");
    std::fs::write(&path, json).expect("write chrome trace");
    println!("\nchrome://tracing JSON written to {path} (open via chrome://tracing or Perfetto)");
}

fn header() -> Vec<&'static str> {
    let mut h = vec!["size"];
    for arch in Arch::all() {
        h.push(match arch {
            Arch::CpuRome => "rome:dev",
            Arch::Mi100 => "mi100:dev",
            Arch::A100 => "a100:dev",
            Arch::Max1550 => "max1550:dev",
        });
        h.push(match arch {
            Arch::CpuRome => "rome:racc",
            Arch::Mi100 => "mi100:racc",
            Arch::A100 => "a100:racc",
            Arch::Max1550 => "max1550:racc",
        });
    }
    h
}

fn sweep_table(title: &str, sizes: &[usize], run: impl Fn(Arch, usize) -> Measurement) -> Table {
    let h = header();
    let mut t = Table::new(title, &h);
    for &n in sizes {
        let mut cells = vec![n.to_string()];
        for arch in Arch::all() {
            let m = run(arch, n);
            cells.push(fmt_ns(m.dev_ns));
            cells.push(fmt_ns(m.racc_ns));
        }
        t.row(cells);
    }
    t
}

fn fig8(full: bool) {
    let max = if full { 1 << 27 } else { 1 << 22 };
    let sizes = pow2_sizes(1 << 10, max);
    sweep_table(
        "Fig. 8 — 1D AXPY time (device-specific vs RACC, modeled)",
        &sizes,
        runners::axpy_1d,
    )
    .print();
    sweep_table(
        "Fig. 8 — 1D DOT time (device-specific vs RACC, modeled)",
        &sizes,
        runners::dot_1d,
    )
    .print();
}

fn fig9(full: bool) {
    let max = if full { 1 << 12 } else { 1 << 10 };
    let sizes = pow2_sizes(1 << 5, max);
    sweep_table(
        "Fig. 9 — 2D AXPY time on s x s arrays (device-specific vs RACC, modeled)",
        &sizes,
        runners::axpy_2d,
    )
    .print();
    sweep_table(
        "Fig. 9 — 2D DOT time on s x s arrays (device-specific vs RACC, modeled)",
        &sizes,
        runners::dot_2d,
    )
    .print();
}

fn fig11(full: bool) {
    let max = if full { 1 << 11 } else { 1 << 9 };
    let sizes = pow2_sizes(1 << 5, max);
    sweep_table(
        "Fig. 11 — LBM D2Q9 time per step on s x s grids (device-specific vs RACC, modeled)",
        &sizes,
        runners::lbm_step,
    )
    .print();
}

fn fig13(full: bool) {
    // The paper reports one CG iteration at N = 100M; the default harness
    // sweeps up to 4M (the model is linear in N past saturation).
    let max = if full { 100_000_000 } else { 1 << 22 };
    let mut sizes = pow2_sizes(1 << 16, max.min(1 << 26));
    if full {
        sizes.push(100_000_000);
    }
    sweep_table(
        "Fig. 13 — CG time per iteration, tridiagonal N (device-specific vs RACC, modeled)",
        &sizes,
        runners::cg_iteration,
    )
    .print();
}

/// The speedup factors quoted in the paper's text (§V-A/B/C), measured on
/// the RACC path at a large size, with the paper's reported values beside.
fn speedups(full: bool) {
    let n1 = if full { 1 << 26 } else { 1 << 22 };
    let s_lbm = if full { 1 << 11 } else { 1 << 9 };
    let n_cg = if full { 100_000_000 } else { 1 << 22 };

    let mut t = Table::new(
        "Speedup of RACC code on each GPU vs the same RACC code on the CPU (paper values in [])",
        &["workload", "mi100", "a100", "max1550"],
    );
    let ratios = |run: &dyn Fn(Arch, usize) -> Measurement, n: usize| -> [f64; 3] {
        let cpu = run(Arch::CpuRome, n).racc_ns;
        [
            cpu / run(Arch::Mi100, n).racc_ns,
            cpu / run(Arch::A100, n).racc_ns,
            cpu / run(Arch::Max1550, n).racc_ns,
        ]
    };
    let row = |t: &mut Table, name: &str, r: [f64; 3], paper: [&str; 3]| {
        t.row(vec![
            name.to_string(),
            format!("{:.1}x {}", r[0], paper[0]),
            format!("{:.1}x {}", r[1], paper[1]),
            format!("{:.1}x {}", r[2], paper[2]),
        ]);
    };
    row(
        &mut t,
        "axpy-1d",
        ratios(&runners::axpy_1d, n1),
        ["[~70x]", "[-]", "[-]"],
    );
    row(
        &mut t,
        "lbm",
        ratios(&runners::lbm_step, s_lbm),
        ["[~14x]", "[~20x]", "[~6.5x]"],
    );
    row(
        &mut t,
        "cg",
        ratios(&runners::cg_iteration, n_cg),
        ["[~17x]", "[~68x]", "[~4x]"],
    );
    t.print();

    // The small-DOT inversion: CPU beats GPU (paper: ~2x on small arrays).
    let small = 1 << 12;
    let cpu = runners::dot_1d(Arch::CpuRome, small).racc_ns;
    let gpu = runners::dot_1d(Arch::Mi100, small).racc_ns;
    let mut t = Table::new(
        "Small-array DOT: CPU over GPU speedup (paper: ~2x)",
        &["size", "cpu-over-mi100"],
    );
    t.row(vec![small.to_string(), format!("{:.1}x", gpu / cpu)]);
    t.print();
}

/// Per-workload RACC-vs-device-specific overhead (the paper's "negligible
/// overhead" claim, plus the Intel DOT ~+35% observation).
fn overhead(full: bool) {
    let n_small = 1 << 12;
    let n_large = if full { 1 << 26 } else { 1 << 22 };
    let mut t = Table::new(
        "RACC overhead vs device-specific (racc/dev time ratio; 1.00 = none)",
        &["workload", "size", "rome", "mi100", "a100", "max1550"],
    );
    let mut row = |name: &str, n: usize, run: &dyn Fn(Arch, usize) -> Measurement| {
        let mut cells = vec![name.to_string(), n.to_string()];
        for arch in Arch::all() {
            cells.push(format!("{:.2}", run(arch, n).overhead()));
        }
        t.row(cells);
    };
    row("axpy-1d", n_small, &runners::axpy_1d);
    row("axpy-1d", n_large, &runners::axpy_1d);
    row("dot-1d", n_small, &runners::dot_1d);
    row("dot-1d", n_large, &runners::dot_1d);
    row("lbm", 1 << 8, &runners::lbm_step);
    row("cg", 1 << 20, &runners::cg_iteration);
    t.print();
}

/// Ablation: the coalescing factor's effect on a streaming kernel (why the
/// LBM's strided layout costs GPUs so much).
fn ablate_coalescing() {
    use racc_core::{Backend, KernelProfile};
    let n = 1 << 22;
    let mut t = Table::new(
        "Ablation — modeled AXPY time, coalesced vs strided access",
        &["arch", "coalesced", "strided", "slowdown"],
    );
    for arch in [Arch::Mi100, Arch::A100, Arch::Max1550] {
        let ctx = arch.context();
        let x = ctx.array_from(&vec![1.0f64; n]).expect("alloc");
        let y = ctx.array_from(&vec![2.0f64; n]).expect("alloc");
        let time_with = |coalescing: f64| -> f64 {
            ctx.reset_timeline();
            let profile = KernelProfile::axpy().with_coalescing(coalescing);
            let (xv, yv) = (x.view_mut(), y.view());
            ctx.backend().parallel_for_1d(n, &profile, move |i| {
                xv.set(i, xv.get(i) + 2.5 * yv.get(i));
            });
            ctx.modeled_ns() as f64
        };
        let coalesced = time_with(1.0);
        let strided = time_with(0.0);
        t.row(vec![
            arch.label().to_string(),
            fmt_ns(coalesced),
            fmt_ns(strided),
            format!("{:.1}x", strided / coalesced),
        ]);
    }
    t.print();
}

/// Ablation: the two-kernel GPU reduction vs downloading the per-block
/// partials and folding on the host.
fn ablate_reduce(full: bool) {
    let sizes = pow2_sizes(1 << 12, if full { 1 << 26 } else { 1 << 22 });
    let mut t = Table::new(
        "Ablation — DOT on the A100: two-kernel reduce vs host-folded partials",
        &["size", "two-kernel", "host-fold", "host-fold/two-kernel"],
    );
    for n in sizes {
        let cuda = racc_cudasim::Cuda::new();
        let dx = cuda.cu_array(&vec![1.0f64; n]).expect("alloc");
        let dy = cuda.cu_array(&vec![1.0f64; n]).expect("alloc");
        let (_, two_kernel) = racc_blas::vendor::cuda::dot(&cuda, &dx, &dy);
        let host_fold = host_folded_dot(&cuda, &dx, &dy);
        t.row(vec![
            n.to_string(),
            fmt_ns(two_kernel as f64),
            fmt_ns(host_fold as f64),
            format!("{:.2}", host_fold as f64 / two_kernel as f64),
        ]);
    }
    t.print();
}

/// The naive reduction strategy: kernel 1 computes per-block partials, then
/// the host downloads the whole partial array and folds it.
fn host_folded_dot(
    cuda: &racc_cudasim::Cuda,
    x: &racc_cudasim::CuArray<f64>,
    y: &racc_cudasim::CuArray<f64>,
) -> u64 {
    use racc_gpusim::KernelCost;
    let n = x.len();
    let block = 512usize;
    let blocks = n.div_ceil(block).max(1);
    let e0 = cuda.record_event();
    let partials = cuda.zeros::<f64>(blocks).expect("partials");
    // Reuse kernel 1 shape: a plain (non-cooperative) kernel where thread 0
    // of each block serially sums its block's range — cheaper to express,
    // same bytes touched.
    let xs = cuda.view(x).expect("own");
    let ys = cuda.view(y).expect("own");
    let ps = cuda.view_mut(&partials).expect("own");
    cuda.launch(
        block as u32,
        blocks as u32,
        0,
        KernelCost::new(2.0, 16.0, 8.0 / block as f64, 1.0),
        move |t| {
            if t.thread_linear() == 0 {
                let b = t.block_linear();
                let start = b * block;
                let end = (start + block).min(n);
                let mut acc = 0.0;
                for i in start..end {
                    acc += xs.get(i) * ys.get(i);
                }
                ps.set(b, acc);
            }
        },
    )
    .expect("partials kernel");
    let host = cuda.to_host(&partials).expect("download partials");
    let _sum: f64 = host.iter().sum();
    let e1 = cuda.record_event();
    e0.elapsed_ns(&e1)
}

/// Ablation: native 2D tiled launch vs flattened 1D launch for the LBM
/// step (same work, different launch geometry and block shape).
fn ablate_lbm_launch() {
    use racc_lbm::portable::LbmSim;
    let mut t = Table::new(
        "Ablation — LBM step: native 2D (16x16 tiles) vs flattened 1D launch, modeled",
        &["arch", "size", "2d-launch", "1d-flat", "flat/2d"],
    );
    for arch in [Arch::Mi100, Arch::A100, Arch::Max1550] {
        for s in [64usize, 256] {
            let ctx = arch.context();
            let mut sim = LbmSim::uniform(&ctx, s, 0.8, 1.0, 0.02, 0.0).expect("setup");
            ctx.reset_timeline();
            sim.step();
            let t2d = ctx.modeled_ns() as f64;
            ctx.reset_timeline();
            sim.step_flat();
            let t1d = ctx.modeled_ns() as f64;
            t.row(vec![
                arch.label().to_string(),
                s.to_string(),
                fmt_ns(t2d),
                fmt_ns(t1d),
                format!("{:.2}", t1d / t2d),
            ]);
        }
    }
    t.print();
}
