//! Regenerate every figure/table of the paper's evaluation (JACC, SC'24).
//!
//! ```text
//! cargo run --release -p racc-bench --bin figures -- all
//! cargo run --release -p racc-bench --bin figures -- fig8 [--full]
//! ```
//!
//! Commands: `fig8`, `fig9`, `fig11`, `fig13`, `speedups`, `overhead`,
//! `ablate-coalescing`, `ablate-reduce`, `all`. `--full` uses the paper's
//! larger problem sizes (slower; needs several GB of RAM).
//!
//! `trace <experiment>` decomposes one experiment launch-by-launch on all
//! four architectures: per-kernel roofline summaries on stdout, and a
//! combined chrome://tracing JSON under `results/`.
//!
//! Times are **modeled nanoseconds** from the analytic machine models (see
//! `DESIGN.md` §1 and `EXPERIMENTS.md`); `dev` columns are the
//! device-specific implementations, `racc` columns the portable ones.

use racc_bench::runners::{self, Measurement};
use racc_bench::{fmt_ns, pow2_sizes, Arch, Table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    match cmd {
        "fig8" => fig8(full),
        "fig9" => fig9(full),
        "fig11" => fig11(full),
        "fig13" => fig13(full),
        "speedups" => speedups(full),
        "overhead" => overhead(full),
        "ablate-coalescing" => ablate_coalescing(),
        "ablate-reduce" => ablate_reduce(full),
        "ablate-lbm-launch" => ablate_lbm_launch(),
        "bench-launch-overhead" => bench_launch_overhead(),
        "bench-fusion" => bench_fusion(),
        "bench-steal" => bench_steal(),
        "bench-prim" => bench_prim(),
        "bench-shard" => bench_shard(),
        "bench-serve" => bench_serve(),
        "trace" => {
            let experiment = args
                .iter()
                .filter(|a| !a.starts_with("--"))
                .nth(1)
                .map(String::as_str)
                .unwrap_or("fig8");
            trace_experiment(experiment, full);
        }
        "sancheck" => {
            let experiment = args
                .iter()
                .filter(|a| !a.starts_with("--"))
                .nth(1)
                .map(String::as_str)
                .unwrap_or("fig8");
            sancheck(experiment);
        }
        "all" => {
            fig8(full);
            fig9(full);
            fig11(full);
            fig13(full);
            speedups(full);
            overhead(full);
            ablate_coalescing();
            ablate_reduce(full);
            ablate_lbm_launch();
        }
        other => {
            eprintln!(
                "unknown command {other:?}; expected fig8|fig9|fig11|fig13|speedups|overhead|ablate-coalescing|ablate-reduce|ablate-lbm-launch|bench-launch-overhead|bench-fusion|bench-steal|bench-prim|bench-shard|bench-serve|trace|sancheck|all"
            );
            std::process::exit(2);
        }
    }
}

/// Device peak rates for the roofline column of the kernel summary.
fn peaks(arch: Arch) -> racc::trace::summary::RooflinePeaks {
    use racc_core::cpumodel::CpuSpec;
    use racc_gpusim::profiles;
    let (flops, bytes) = match arch {
        Arch::CpuRome => {
            let cpu = CpuSpec::epyc_7742_rome();
            (cpu.achieved_flops_per_sec, cpu.achieved_bw_bytes_per_sec)
        }
        Arch::Mi100 => {
            let d = profiles::amd_mi100();
            (d.fp64_flops_per_sec, d.mem_bw_bytes_per_sec)
        }
        Arch::A100 => {
            let d = profiles::nvidia_a100();
            (d.fp64_flops_per_sec, d.mem_bw_bytes_per_sec)
        }
        Arch::Max1550 => {
            let d = profiles::intel_max1550();
            (d.fp64_flops_per_sec, d.mem_bw_bytes_per_sec)
        }
    };
    racc::trace::summary::RooflinePeaks {
        gflops: flops / 1e9,
        gbs: bytes / 1e9,
    }
}

/// Run one experiment's RACC path on a traced context (uploads included —
/// the recorder and the timeline both start at context creation, so their
/// totals must reconcile exactly).
fn traced_workload(ctx: &racc::Ctx, experiment: &str, full: bool) {
    use racc_blas::portable as pblas;
    use racc_cg::solver::CgWorkspace;
    use racc_cg::tridiag::{DeviceTridiag, Tridiag};
    use racc_lbm::portable::LbmSim;
    const ALPHA: f64 = 2.5;
    match experiment {
        "fig8" => {
            let n = if full { 1 << 26 } else { 1 << 20 };
            let x = ctx
                .array_from_fn(n, |i| ((i % 1000) as f64) * 0.01)
                .expect("alloc x");
            let y = ctx
                .array_from_fn(n, |i| (((i + 7) % 1000) as f64) * 0.01)
                .expect("alloc y");
            pblas::axpy(ctx, ALPHA, &x, &y);
            let _ = pblas::dot(ctx, &x, &y);
        }
        "fig9" => {
            let s = if full { 1 << 11 } else { 1 << 9 };
            let host: Vec<f64> = (0..s * s).map(|i| ((i % 1000) as f64) * 0.01).collect();
            let x = ctx.array2_from(s, s, &host).expect("alloc x");
            let y = ctx.array2_from(s, s, &host).expect("alloc y");
            pblas::axpy_2d(ctx, ALPHA, &x, &y);
            let _ = pblas::dot_2d(ctx, &x, &y);
        }
        "fig11" => {
            let s = if full { 1 << 10 } else { 256 };
            let mut sim = LbmSim::uniform(ctx, s, 0.8, 1.0, 0.02, 0.0).expect("alloc lattices");
            sim.step();
        }
        "fig13" => {
            let n = if full { 1 << 24 } else { 1 << 20 };
            let a = Tridiag::diagonally_dominant(n);
            let b: Vec<f64> = (0..n).map(|i| 0.5 + ((i % 7) as f64) * 0.1).collect();
            let da = DeviceTridiag::upload(ctx, &a).expect("upload A");
            let db = ctx.array_from(&b).expect("upload b");
            let mut ws = CgWorkspace::new(ctx, &db).expect("workspace");
            let _ = ws.iterate(ctx, &da);
        }
        other => {
            eprintln!("unknown trace experiment {other:?}; expected fig8|fig9|fig11|fig13");
            std::process::exit(2);
        }
    }
}

/// `sancheck <experiment>`: run one experiment's RACC path under the
/// `simsan` sanitizer on every architecture and print each backend's
/// report (checks performed, leaks outstanding). Always uses the small
/// problem sizes — read tracking makes every element access pay hash-table
/// work, which is the point of an opt-in checker.
fn sancheck(experiment: &str) {
    for arch in Arch::all() {
        let ctx = racc::builder()
            .backend(arch.backend_key())
            .sanitizer(true)
            .build()
            .expect("backend compiled in");
        traced_workload(&ctx, experiment, false);
        println!("\n=== sancheck: {experiment} on {} ===", arch.label());
        match racc_core::Backend::sanitizer_report(ctx.backend()) {
            Some(report) => print!("{report}"),
            None => println!(
                "sanitizer unsupported on this backend \
                 (CPU back ends need the `racecheck` feature)"
            ),
        }
    }
    println!();
}

/// `trace <experiment>`: per-launch decomposition on all four
/// architectures, with a reconciliation check against the timeline.
fn trace_experiment(experiment: &str, full: bool) {
    let mut groups: Vec<(&'static str, Vec<racc::trace::Span>)> = Vec::new();
    for arch in Arch::all() {
        let ctx = racc::builder()
            .backend(arch.backend_key())
            .trace(true)
            .trace_capacity(1 << 16)
            .build()
            .expect("backend compiled in");
        traced_workload(&ctx, experiment, full);

        let spans = ctx.trace_spans();
        let recorder = ctx.tracer().expect("traced context has a recorder");
        assert_eq!(recorder.dropped(), 0, "trace ring buffer overflowed");
        let span_ns = racc::trace::total_modeled_ns(&spans);
        let timeline_ns = ctx.modeled_ns();
        println!(
            "\n=== {experiment} on {} ({} spans) ===",
            arch.label(),
            spans.len()
        );
        print!(
            "{}",
            racc::trace::summary::kernel_summary(&spans, Some(peaks(arch)))
        );
        println!(
            "span modeled total {} vs timeline {} — {}",
            fmt_ns(span_ns as f64),
            fmt_ns(timeline_ns as f64),
            if span_ns == timeline_ns {
                "exact match"
            } else {
                "MISMATCH"
            }
        );
        assert_eq!(
            span_ns,
            timeline_ns,
            "span sum must reconcile with the timeline on {}",
            arch.label()
        );
        groups.push((arch.label(), spans));
    }

    let refs: Vec<(&str, &[racc::trace::Span])> = groups
        .iter()
        .map(|(label, spans)| (*label, spans.as_slice()))
        .collect();
    let json = racc::trace::chrome::chrome_trace(&refs);
    racc::trace::json::validate(&json).expect("chrome trace must be valid JSON");
    std::fs::create_dir_all("results").expect("create results/");
    let path = format!("results/trace_{experiment}.json");
    std::fs::write(&path, json).expect("write chrome trace");
    println!("\nchrome://tracing JSON written to {path} (open via chrome://tracing or Perfetto)");
}

fn header() -> Vec<&'static str> {
    let mut h = vec!["size"];
    for arch in Arch::all() {
        h.push(match arch {
            Arch::CpuRome => "rome:dev",
            Arch::Mi100 => "mi100:dev",
            Arch::A100 => "a100:dev",
            Arch::Max1550 => "max1550:dev",
        });
        h.push(match arch {
            Arch::CpuRome => "rome:racc",
            Arch::Mi100 => "mi100:racc",
            Arch::A100 => "a100:racc",
            Arch::Max1550 => "max1550:racc",
        });
    }
    h
}

fn sweep_table(title: &str, sizes: &[usize], run: impl Fn(Arch, usize) -> Measurement) -> Table {
    let h = header();
    let mut t = Table::new(title, &h);
    for &n in sizes {
        let mut cells = vec![n.to_string()];
        for arch in Arch::all() {
            let m = run(arch, n);
            cells.push(fmt_ns(m.dev_ns));
            cells.push(fmt_ns(m.racc_ns));
        }
        t.row(cells);
    }
    t
}

fn fig8(full: bool) {
    let max = if full { 1 << 27 } else { 1 << 22 };
    let sizes = pow2_sizes(1 << 10, max);
    sweep_table(
        "Fig. 8 — 1D AXPY time (device-specific vs RACC, modeled)",
        &sizes,
        runners::axpy_1d,
    )
    .print();
    sweep_table(
        "Fig. 8 — 1D DOT time (device-specific vs RACC, modeled)",
        &sizes,
        runners::dot_1d,
    )
    .print();
}

fn fig9(full: bool) {
    let max = if full { 1 << 12 } else { 1 << 10 };
    let sizes = pow2_sizes(1 << 5, max);
    sweep_table(
        "Fig. 9 — 2D AXPY time on s x s arrays (device-specific vs RACC, modeled)",
        &sizes,
        runners::axpy_2d,
    )
    .print();
    sweep_table(
        "Fig. 9 — 2D DOT time on s x s arrays (device-specific vs RACC, modeled)",
        &sizes,
        runners::dot_2d,
    )
    .print();
}

fn fig11(full: bool) {
    let max = if full { 1 << 11 } else { 1 << 9 };
    let sizes = pow2_sizes(1 << 5, max);
    sweep_table(
        "Fig. 11 — LBM D2Q9 time per step on s x s grids (device-specific vs RACC, modeled)",
        &sizes,
        runners::lbm_step,
    )
    .print();
}

fn fig13(full: bool) {
    // The paper reports one CG iteration at N = 100M; the default harness
    // sweeps up to 4M (the model is linear in N past saturation).
    let max = if full { 100_000_000 } else { 1 << 22 };
    let mut sizes = pow2_sizes(1 << 16, max.min(1 << 26));
    if full {
        sizes.push(100_000_000);
    }
    sweep_table(
        "Fig. 13 — CG time per iteration, tridiagonal N (device-specific vs RACC, modeled)",
        &sizes,
        runners::cg_iteration,
    )
    .print();
}

/// The speedup factors quoted in the paper's text (§V-A/B/C), measured on
/// the RACC path at a large size, with the paper's reported values beside.
fn speedups(full: bool) {
    let n1 = if full { 1 << 26 } else { 1 << 22 };
    let s_lbm = if full { 1 << 11 } else { 1 << 9 };
    let n_cg = if full { 100_000_000 } else { 1 << 22 };

    let mut t = Table::new(
        "Speedup of RACC code on each GPU vs the same RACC code on the CPU (paper values in [])",
        &["workload", "mi100", "a100", "max1550"],
    );
    let ratios = |run: &dyn Fn(Arch, usize) -> Measurement, n: usize| -> [f64; 3] {
        let cpu = run(Arch::CpuRome, n).racc_ns;
        [
            cpu / run(Arch::Mi100, n).racc_ns,
            cpu / run(Arch::A100, n).racc_ns,
            cpu / run(Arch::Max1550, n).racc_ns,
        ]
    };
    let row = |t: &mut Table, name: &str, r: [f64; 3], paper: [&str; 3]| {
        t.row(vec![
            name.to_string(),
            format!("{:.1}x {}", r[0], paper[0]),
            format!("{:.1}x {}", r[1], paper[1]),
            format!("{:.1}x {}", r[2], paper[2]),
        ]);
    };
    row(
        &mut t,
        "axpy-1d",
        ratios(&runners::axpy_1d, n1),
        ["[~70x]", "[-]", "[-]"],
    );
    row(
        &mut t,
        "lbm",
        ratios(&runners::lbm_step, s_lbm),
        ["[~14x]", "[~20x]", "[~6.5x]"],
    );
    row(
        &mut t,
        "cg",
        ratios(&runners::cg_iteration, n_cg),
        ["[~17x]", "[~68x]", "[~4x]"],
    );
    t.print();

    // The small-DOT inversion: CPU beats GPU (paper: ~2x on small arrays).
    let small = 1 << 12;
    let cpu = runners::dot_1d(Arch::CpuRome, small).racc_ns;
    let gpu = runners::dot_1d(Arch::Mi100, small).racc_ns;
    let mut t = Table::new(
        "Small-array DOT: CPU over GPU speedup (paper: ~2x)",
        &["size", "cpu-over-mi100"],
    );
    t.row(vec![small.to_string(), format!("{:.1}x", gpu / cpu)]);
    t.print();
}

/// Per-workload RACC-vs-device-specific overhead (the paper's "negligible
/// overhead" claim, plus the Intel DOT ~+35% observation).
fn overhead(full: bool) {
    let n_small = 1 << 12;
    let n_large = if full { 1 << 26 } else { 1 << 22 };
    let mut t = Table::new(
        "RACC overhead vs device-specific (racc/dev time ratio; 1.00 = none)",
        &["workload", "size", "rome", "mi100", "a100", "max1550"],
    );
    let mut row = |name: &str, n: usize, run: &dyn Fn(Arch, usize) -> Measurement| {
        let mut cells = vec![name.to_string(), n.to_string()];
        for arch in Arch::all() {
            cells.push(format!("{:.2}", run(arch, n).overhead()));
        }
        t.row(cells);
    };
    row("axpy-1d", n_small, &runners::axpy_1d);
    row("axpy-1d", n_large, &runners::axpy_1d);
    row("dot-1d", n_small, &runners::dot_1d);
    row("dot-1d", n_large, &runners::dot_1d);
    row("lbm", 1 << 8, &runners::lbm_step);
    row("cg", 1 << 20, &runners::cg_iteration);
    t.print();
}

/// Ablation: the coalescing factor's effect on a streaming kernel (why the
/// LBM's strided layout costs GPUs so much).
fn ablate_coalescing() {
    use racc_core::{Backend, KernelProfile};
    let n = 1 << 22;
    let mut t = Table::new(
        "Ablation — modeled AXPY time, coalesced vs strided access",
        &["arch", "coalesced", "strided", "slowdown"],
    );
    for arch in [Arch::Mi100, Arch::A100, Arch::Max1550] {
        let ctx = arch.context();
        let x = ctx.array_from(&vec![1.0f64; n]).expect("alloc");
        let y = ctx.array_from(&vec![2.0f64; n]).expect("alloc");
        let time_with = |coalescing: f64| -> f64 {
            ctx.reset_timeline();
            let profile = KernelProfile::axpy().with_coalescing(coalescing);
            let (xv, yv) = (x.view_mut(), y.view());
            ctx.backend().parallel_for_1d(n, &profile, move |i| {
                xv.set(i, xv.get(i) + 2.5 * yv.get(i));
            });
            ctx.modeled_ns() as f64
        };
        let coalesced = time_with(1.0);
        let strided = time_with(0.0);
        t.row(vec![
            arch.label().to_string(),
            fmt_ns(coalesced),
            fmt_ns(strided),
            format!("{:.1}x", strided / coalesced),
        ]);
    }
    t.print();
}

/// Ablation: the two-kernel GPU reduction vs downloading the per-block
/// partials and folding on the host.
fn ablate_reduce(full: bool) {
    let sizes = pow2_sizes(1 << 12, if full { 1 << 26 } else { 1 << 22 });
    let mut t = Table::new(
        "Ablation — DOT on the A100: two-kernel reduce vs host-folded partials",
        &["size", "two-kernel", "host-fold", "host-fold/two-kernel"],
    );
    for n in sizes {
        let cuda = racc_cudasim::Cuda::new();
        let dx = cuda.cu_array(&vec![1.0f64; n]).expect("alloc");
        let dy = cuda.cu_array(&vec![1.0f64; n]).expect("alloc");
        let (_, two_kernel) = racc_blas::vendor::cuda::dot(&cuda, &dx, &dy);
        let host_fold = host_folded_dot(&cuda, &dx, &dy);
        t.row(vec![
            n.to_string(),
            fmt_ns(two_kernel as f64),
            fmt_ns(host_fold as f64),
            format!("{:.2}", host_fold as f64 / two_kernel as f64),
        ]);
    }
    t.print();
}

/// The naive reduction strategy: kernel 1 computes per-block partials, then
/// the host downloads the whole partial array and folds it.
fn host_folded_dot(
    cuda: &racc_cudasim::Cuda,
    x: &racc_cudasim::CuArray<f64>,
    y: &racc_cudasim::CuArray<f64>,
) -> u64 {
    use racc_gpusim::KernelCost;
    let n = x.len();
    let block = 512usize;
    let blocks = n.div_ceil(block).max(1);
    let e0 = cuda.record_event();
    let partials = cuda.zeros::<f64>(blocks).expect("partials");
    // Reuse kernel 1 shape: a plain (non-cooperative) kernel where thread 0
    // of each block serially sums its block's range — cheaper to express,
    // same bytes touched.
    let xs = cuda.view(x).expect("own");
    let ys = cuda.view(y).expect("own");
    let ps = cuda.view_mut(&partials).expect("own");
    cuda.launch(
        block as u32,
        blocks as u32,
        0,
        KernelCost::new(2.0, 16.0, 8.0 / block as f64, 1.0),
        move |t| {
            if t.thread_linear() == 0 {
                let b = t.block_linear();
                let start = b * block;
                let end = (start + block).min(n);
                let mut acc = 0.0;
                for i in start..end {
                    acc += xs.get(i) * ys.get(i);
                }
                ps.set(b, acc);
            }
        },
    )
    .expect("partials kernel");
    let host = cuda.to_host(&partials).expect("download partials");
    let _sum: f64 = host.iter().sum();
    let e1 = cuda.record_event();
    e0.elapsed_ns(&e1)
}

/// Launch-overhead gate: **wall-clock** launches/sec through each simulated
/// vendor API plus the threads backend, for an empty kernel (pure dispatch)
/// and an AXPY-shaped kernel. The same workloads as the
/// `launch_overhead` criterion bench, packaged for CI: prints a table and
/// writes `results/BENCH_launch_overhead.json`. `RACC_BENCH_QUICK=1`
/// shrinks shapes and iteration counts to smoke-test scale.
fn bench_launch_overhead() {
    use racc_core::{Context, KernelProfile, ThreadsBackend};
    use racc_cudasim::Cuda;
    use racc_gpusim::KernelCost;
    use racc_hipsim::Hip;
    use racc_oneapisim::OneApi;
    use std::time::Instant;

    let quick = std::env::var_os("RACC_BENCH_QUICK").is_some();
    let (blocks, threads) = if quick {
        (128u32, 32u32)
    } else {
        (1024u32, 32u32)
    };
    let n: usize = if quick { 1 << 12 } else { 1 << 16 };
    let iters: u32 = if quick { 50 } else { 400 };

    /// Warm up (arena growth, op-log fill), then time `iters` launches.
    fn measure(iters: u32, mut launch: impl FnMut()) -> f64 {
        for _ in 0..(iters / 4).max(4) {
            launch();
        }
        let t0 = Instant::now();
        for _ in 0..iters {
            launch();
        }
        t0.elapsed().as_nanos() as f64 / f64::from(iters)
    }

    // (workload, backend, shape, ns-per-launch)
    let mut rows: Vec<(&'static str, &'static str, String, f64)> = Vec::new();
    let empty_shape = format!("{blocks}x{threads}");

    let cuda = Cuda::new();
    let hip = Hip::new();
    let oneapi = OneApi::new();
    let ctx = Context::new(ThreadsBackend::new());

    rows.push((
        "empty",
        "cudasim",
        empty_shape.clone(),
        measure(iters, || {
            cuda.launch(threads, blocks, 0, KernelCost::default(), |_| {})
                .unwrap();
        }),
    ));
    rows.push((
        "empty",
        "hipsim",
        empty_shape.clone(),
        measure(iters, || {
            hip.launch(threads, blocks, 0, KernelCost::default(), |_| {})
                .unwrap();
        }),
    ));
    rows.push((
        "empty",
        "oneapisim",
        empty_shape.clone(),
        measure(iters, || {
            oneapi
                .launch(threads, blocks, 0, KernelCost::default(), |_| {})
                .unwrap();
        }),
    ));
    let flat = (blocks * threads) as usize;
    rows.push((
        "empty",
        "threads",
        empty_shape.clone(),
        measure(iters, || {
            ctx.parallel_for(flat, &KernelProfile::axpy(), |_i| {});
        }),
    ));

    let axpy_threads = 256u32;
    let axpy_blocks = n.div_ceil(axpy_threads as usize) as u32;
    let cost = KernelCost::new(2.0, 16.0, 8.0, 1.0);
    let axpy_shape = format!("n={n}");
    let host_x = vec![1.0f64; n];
    let host_y = vec![2.0f64; n];

    {
        let x = cuda.cu_array(&host_x).unwrap();
        let y = cuda.cu_array(&host_y).unwrap();
        let (xv, yv) = (cuda.view_mut(&x).unwrap(), cuda.view(&y).unwrap());
        rows.push((
            "axpy",
            "cudasim",
            axpy_shape.clone(),
            measure(iters, || {
                cuda.launch(axpy_threads, axpy_blocks, 0, cost, |t| {
                    let i = t.global_id_x();
                    if i < n {
                        xv.set(i, xv.get(i) + 2.5 * yv.get(i));
                    }
                })
                .unwrap();
            }),
        ));
    }
    {
        let x = hip.roc_array(&host_x).unwrap();
        let y = hip.roc_array(&host_y).unwrap();
        let (xv, yv) = (hip.view_mut(&x).unwrap(), hip.view(&y).unwrap());
        rows.push((
            "axpy",
            "hipsim",
            axpy_shape.clone(),
            measure(iters, || {
                hip.launch(axpy_threads, axpy_blocks, 0, cost, |t| {
                    let i = t.global_id_x();
                    if i < n {
                        xv.set(i, xv.get(i) + 2.5 * yv.get(i));
                    }
                })
                .unwrap();
            }),
        ));
    }
    {
        let x = oneapi.one_array(&host_x).unwrap();
        let y = oneapi.one_array(&host_y).unwrap();
        let (xv, yv) = (oneapi.view_mut(&x).unwrap(), oneapi.view(&y).unwrap());
        rows.push((
            "axpy",
            "oneapisim",
            axpy_shape.clone(),
            measure(iters, || {
                oneapi
                    .launch(axpy_threads, axpy_blocks, 0, cost, |t| {
                        let i = t.global_id_x();
                        if i < n {
                            xv.set(i, xv.get(i) + 2.5 * yv.get(i));
                        }
                    })
                    .unwrap();
            }),
        ));
    }
    {
        let x = ctx.array_from(&host_x).unwrap();
        let y = ctx.array_from(&host_y).unwrap();
        rows.push((
            "axpy",
            "threads",
            axpy_shape.clone(),
            measure(iters, || {
                let (xv, yv) = (x.view_mut(), y.view());
                ctx.parallel_for(n, &KernelProfile::axpy(), move |i| {
                    xv.set(i, xv.get(i) + 2.5 * yv.get(i));
                });
            }),
        ));
    }

    let mut t = Table::new(
        "Launch overhead — wall-clock dispatch rate per backend",
        &["workload", "backend", "shape", "ns/launch", "launches/sec"],
    );
    let mut entries = Vec::new();
    for (workload, backend, shape, ns) in &rows {
        let per_sec = 1e9 / ns;
        t.row(vec![
            (*workload).to_string(),
            (*backend).to_string(),
            shape.clone(),
            format!("{ns:.0}"),
            format!("{per_sec:.0}"),
        ]);
        entries.push(format!(
            "    {{\"workload\": \"{workload}\", \"backend\": \"{backend}\", \"shape\": \"{shape}\", \
             \"iters\": {iters}, \"ns_per_launch\": {ns:.1}, \"launches_per_sec\": {per_sec:.1}}}"
        ));
    }
    t.print();

    let json = format!(
        "{{\n  \"bench\": \"launch_overhead\",\n  \"quick\": {quick},\n  \"series\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    racc::trace::json::validate(&json).expect("bench JSON must be valid");
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_launch_overhead.json";
    std::fs::write(path, json).expect("write bench JSON");
    println!("\nlaunch-overhead series written to {path}");
}

/// Fusion benchmark: the fig13 CG iteration (eager vs fused, the fused
/// path now replaying compiled plans from the cache) and a standalone
/// expression chain in all three engine modes — eager, interpreted, and
/// compiled — on every backend. Result histories are asserted
/// bit-identical across modes before anything is reported. Prints tables
/// and writes `results/BENCH_fusion.json` (launch counts per iteration,
/// modeled and wall-clock time, and plan-cache counters).
/// `RACC_BENCH_QUICK=1` shrinks sizes and iteration counts.
fn bench_fusion() {
    use racc_cg::solver::CgWorkspace;
    use racc_cg::tridiag::{DeviceTridiag, Tridiag};
    use racc_fuse::{lit, load, LazyExt};
    use std::time::Instant;

    let quick = std::env::var_os("RACC_BENCH_QUICK").is_some();
    let n: usize = if quick { 1 << 12 } else { 1 << 14 };
    let iters: u32 = if quick { 10 } else { 60 };
    // Fixed worker count for the threads backend: on a small CI box the
    // default pool can degenerate to one participant, which measures the
    // serial fold instead of the threaded runtime (broadcast, partials,
    // latch) that fusion actually halves.
    const THREADS_WORKERS: usize = 4;

    const BACKENDS: [&str; 5] = ["serial", "threads", "cudasim", "hipsim", "oneapisim"];

    /// One timed CG run: residual-history bits plus per-iteration counters.
    struct CgRun {
        hist: Vec<u64>,
        launches: u64,
        reductions: u64,
        modeled_ns: f64,
        wall_ns: f64,
    }

    fn run_cg(ctx: &racc::Ctx, n: usize, iters: u32) -> CgRun {
        let a = Tridiag::diagonally_dominant(n);
        let b: Vec<f64> = (0..n).map(|i| 0.5 + ((i % 7) as f64) * 0.1).collect();
        let da = DeviceTridiag::upload(ctx, &a).expect("upload matrix");
        let db = ctx.array_from(&b).expect("upload rhs");
        let mut hist = Vec::new();
        let mut wall_ns = f64::INFINITY;
        let (mut launches, mut reductions, mut modeled) = (0u64, 0u64, 0.0f64);
        for _rep in 0..5 {
            // Fresh workspace per rep: repeating the same iteration window
            // keeps every compared residual far from exact convergence —
            // past breakdown (rr = 0) the 0/0 NaN bit patterns are
            // codegen-defined, not algorithm-defined, so they cannot be
            // part of the bit-identity contract. The plan cache is keyed
            // by program shape, not array identity, so the fresh arrays
            // must still hit (asserted below). The first few iterations
            // per rep warm the pool/arenas and are excluded from timing
            // but still part of the compared history.
            let mut ws = CgWorkspace::new(ctx, &db).expect("workspace");
            for _ in 0..(iters / 4).max(2) {
                hist.push(ws.iterate(ctx, &da).to_bits());
            }
            let before = ctx.timeline();
            let t0 = Instant::now();
            for _ in 0..iters {
                hist.push(ws.iterate(ctx, &da).to_bits());
            }
            wall_ns = wall_ns.min(t0.elapsed().as_nanos() as f64 / f64::from(iters));
            let after = ctx.timeline();
            launches += after.launches - before.launches;
            reductions += after.reductions - before.reductions;
            modeled += (after.modeled_ns - before.modeled_ns) as f64;
        }
        let total = u64::from(5 * iters);
        CgRun {
            hist,
            launches: launches / total,
            reductions: reductions / total,
            modeled_ns: modeled / total as f64,
            wall_ns,
        }
    }

    #[derive(Clone, Copy)]
    enum ExprMode {
        Eager,
        Interpreted,
        Compiled,
    }

    /// The expression-engine chain (two maps + a sum), returning result
    /// bits (per-round sums plus the final vector), constructs per round
    /// and wall time per round.
    fn run_expr(ctx: &racc::Ctx, n: usize, iters: u32, mode: ExprMode) -> (Vec<u64>, usize, f64) {
        let x = ctx
            .array_from_fn(n, |i| 0.25 * ((i % 9) as f64) - 1.0)
            .expect("x");
        let y = ctx
            .array_from_fn(n, |i| 0.125 * ((i % 5) as f64) + 0.5)
            .expect("y");
        let z = ctx.zeros::<f64>(n).expect("z");
        let mut bits = Vec::with_capacity(iters as usize + n);
        let mut launches = 0usize;
        let mut round = |bits: &mut Vec<u64>| {
            let mut f = match mode {
                ExprMode::Eager => ctx.lazy().eager(),
                ExprMode::Interpreted => ctx.lazy().interpreted(),
                ExprMode::Compiled => ctx.lazy(),
            };
            let xn = f.assign(&x, load(&x) * 0.999 + 0.001 * load(&y));
            let zn = f.assign(&z, (xn - load(&y)).abs());
            bits.push(f.sum(zn * lit(2.0)).to_bits());
            launches = f.count_launches();
        };
        for _ in 0..(iters / 4).max(2) {
            round(&mut bits);
        }
        let mut wall_ns = f64::INFINITY;
        for _rep in 0..5 {
            let t0 = Instant::now();
            for _ in 0..iters {
                round(&mut bits);
            }
            wall_ns = wall_ns.min(t0.elapsed().as_nanos() as f64 / f64::from(iters));
        }
        let xs = ctx.to_host(&x).expect("readback");
        bits.extend(xs.iter().map(|v| v.to_bits()));
        (bits, launches, wall_ns)
    }

    let mut cg_table = Table::new(
        "Fusion — fig13 CG iteration, eager vs fused (constructs = for+reduce launches)",
        &[
            "backend",
            "constructs e→f",
            "device kernels e→f",
            "modeled e/f",
            "wall e/f (ns)",
            "speedup",
        ],
    );
    let mut expr_table = Table::new(
        "Fusion — expression chain (2 maps + sum), eager vs interpreted vs compiled",
        &[
            "backend",
            "constructs e→c",
            "wall e/i/c (ns)",
            "interp speedup",
            "compiled speedup",
        ],
    );
    let mut cg_entries = Vec::new();
    let mut expr_entries = Vec::new();

    for key in BACKENDS {
        let is_sim = matches!(key, "cudasim" | "hipsim" | "oneapisim");
        let build = |fused: bool| {
            let mut b = racc::builder().backend(key).fusion(fused);
            if key == "threads" {
                b = b.threads(THREADS_WORKERS);
            }
            b.build().expect("context")
        };
        let eager_ctx = build(false);
        let fused_ctx = build(true);

        let e = run_cg(&eager_ctx, n, iters);
        let f = run_cg(&fused_ctx, n, iters);
        assert_eq!(
            e.hist, f.hist,
            "fused CG residual history must be bit-identical to eager on {key}"
        );
        // On the simulated devices each reduction is a two-kernel tree plus
        // a readback; on the CPU backends a construct is one launch.
        let kernels = |r: &CgRun| {
            if is_sim {
                r.launches + 2 * r.reductions
            } else {
                r.launches + r.reductions
            }
        };
        let ops = |r: &CgRun| kernels(r) + if is_sim { r.reductions } else { 0 };
        let (ec, fc) = (e.launches + e.reductions, f.launches + f.reductions);
        let speedup = e.wall_ns / f.wall_ns;
        // The fused CG loop replays one compiled plan from the cache: a
        // steady stream of hits after the single compiling miss.
        let pc = fused_ctx.stats().plan_cache;
        assert!(
            pc.hit_rate() >= 0.9,
            "CG loop should run hot from the plan cache on {key}: {pc:?}"
        );
        cg_table.row(vec![
            key.to_string(),
            format!("{ec} -> {fc}"),
            format!("{} -> {}", kernels(&e), kernels(&f)),
            format!("{} / {}", fmt_ns(e.modeled_ns), fmt_ns(f.modeled_ns)),
            format!("{:.0} / {:.0}", e.wall_ns, f.wall_ns),
            format!("{speedup:.2}x"),
        ]);
        cg_entries.push(format!(
            "    {{\"backend\": \"{key}\", \"n\": {n}, \"iters\": {iters}, \
             \"eager_constructs_per_iter\": {ec}, \"fused_constructs_per_iter\": {fc}, \
             \"eager_device_kernels_per_iter\": {}, \"fused_device_kernels_per_iter\": {}, \
             \"eager_device_ops_per_iter\": {}, \"fused_device_ops_per_iter\": {}, \
             \"eager_modeled_ns_per_iter\": {:.1}, \"fused_modeled_ns_per_iter\": {:.1}, \
             \"eager_wall_ns_per_iter\": {:.1}, \"fused_wall_ns_per_iter\": {:.1}, \
             \"wall_speedup\": {speedup:.3}, \
             \"plan_cache_hits\": {}, \"plan_cache_misses\": {}, \
             \"plan_cache_hit_rate\": {:.3}, \"bit_identical\": true}}",
            kernels(&e),
            kernels(&f),
            ops(&e),
            ops(&f),
            e.modeled_ns,
            f.modeled_ns,
            e.wall_ns,
            f.wall_ns,
            pc.hits,
            pc.misses,
            pc.hit_rate(),
        ));

        let (ebits, elaunch, ewall) = run_expr(&eager_ctx, n, iters, ExprMode::Eager);
        let (ibits, ilaunch, iwall) = run_expr(&fused_ctx, n, iters, ExprMode::Interpreted);
        let (cbits, claunch, cwall) = run_expr(&fused_ctx, n, iters, ExprMode::Compiled);
        assert_eq!(
            ebits, ibits,
            "interpreted expression chain must be bit-identical to eager on {key}"
        );
        assert_eq!(
            ebits, cbits,
            "compiled expression chain must be bit-identical to eager on {key}"
        );
        assert_eq!(ilaunch, claunch, "both fused modes plan the same groups");
        let ispeed = ewall / iwall;
        let cspeed = ewall / cwall;
        expr_table.row(vec![
            key.to_string(),
            format!("{elaunch} -> {claunch}"),
            format!("{ewall:.0} / {iwall:.0} / {cwall:.0}"),
            format!("{ispeed:.2}x"),
            format!("{cspeed:.2}x"),
        ]);
        expr_entries.push(format!(
            "    {{\"backend\": \"{key}\", \"n\": {n}, \"iters\": {iters}, \
             \"eager_constructs\": {elaunch}, \"fused_constructs\": {claunch}, \
             \"eager_wall_ns\": {ewall:.1}, \"interpreted_wall_ns\": {iwall:.1}, \
             \"compiled_wall_ns\": {cwall:.1}, \"interpreted_speedup\": {ispeed:.3}, \
             \"wall_speedup\": {cspeed:.3}, \"bit_identical\": true}}"
        ));
    }

    cg_table.print();
    expr_table.print();

    let json = format!(
        "{{\n  \"bench\": \"fusion\",\n  \"quick\": {quick},\n  \"threads_workers\": {THREADS_WORKERS},\n  \"cg\": [\n{}\n  ],\n  \"expr\": [\n{}\n  ]\n}}\n",
        cg_entries.join(",\n"),
        expr_entries.join(",\n")
    );
    racc::trace::json::validate(&json).expect("bench JSON must be valid");
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_fusion.json";
    std::fs::write(path, json).expect("write bench JSON");
    println!("\nfusion series written to {path}");
}

/// Work-stealing benchmark: the deque-based pool core against the
/// pre-deque dynamic-chunk core (re-created here: one `broadcast` per
/// construct, every participant claiming fixed chunks from one shared
/// atomic cursor) on three thread-pool workloads — a ragged power-law
/// CSR matvec (the load-balance stress case), a skewed triangular-cost
/// loop, and a uniform loop (the no-regression case). Results are
/// asserted bit-identical between cores before anything is reported.
/// Prints a table and writes `results/BENCH_steal.json` with wall
/// speedups and the pool's steal telemetry. `RACC_BENCH_QUICK=1`
/// shrinks sizes and iteration counts.
fn bench_steal() {
    use racc_cg::csr::Csr;
    use racc_threadpool::{Schedule, ThreadPool};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Instant;

    let quick = std::env::var_os("RACC_BENCH_QUICK").is_some();
    // Fixed worker count, as in bench-fusion: on a small CI box the
    // default pool degenerates to one participant and measures nothing.
    const THREADS_WORKERS: usize = 4;
    let iters: u32 = if quick { 20 } else { 200 };
    let reps = if quick { 3 } else { 11 };

    let pool = ThreadPool::new(THREADS_WORKERS);
    let participants = pool.num_threads();

    /// The old core's dispatch: every participant spins on one shared
    /// cursor, claiming `chunk` iterations per atomic grab.
    fn counter_for(pool: &ThreadPool, n: usize, chunk: usize, f: &(impl Fn(usize) + Sync)) {
        let cursor = AtomicUsize::new(0);
        pool.broadcast(|_| loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            for i in start..end {
                f(i);
            }
        });
    }

    /// Minimum wall ns per construct for each of two launchers, measured in
    /// *interleaved* windows (a,b,a,b,…) so ambient load on a shared box
    /// lands on both sides instead of biasing whichever ran second.
    fn measure_pair(
        iters: u32,
        reps: usize,
        mut a: impl FnMut(),
        mut b: impl FnMut(),
    ) -> (f64, f64) {
        for _ in 0..(iters / 4).max(2) {
            a();
            b();
        }
        let window = |launch: &mut dyn FnMut()| {
            let t0 = Instant::now();
            for _ in 0..iters {
                launch();
            }
            t0.elapsed().as_nanos() as f64 / f64::from(iters)
        };
        let (mut best_a, mut best_b) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            best_a = best_a.min(window(&mut a));
            best_b = best_b.min(window(&mut b));
        }
        (best_a, best_b)
    }

    struct Workload {
        name: &'static str,
        n: usize,
        baseline_ns: f64,
        steal_ns: f64,
    }
    let mut rows: Vec<Workload> = Vec::new();
    let sched = Schedule::Dynamic { chunk: 0 };

    // 1. Ragged power-law CSR matvec: a static or fixed-chunk row split
    //    leaves the heavy rows on one participant.
    {
        // Sized so dispatch and load imbalance are a real fraction of the
        // construct (~tens of µs): at much larger n the matvec is
        // memory-bound compute on both cores and the scheduler can't show.
        let n = if quick { 1 << 10 } else { 1 << 9 };
        let max_nnz = if quick { 128 } else { 256 };
        let a = Csr::ragged_power_law(n, max_nnz, 42);
        let x: Vec<f64> = (0..n).map(|i| 0.25 * ((i % 9) as f64) - 1.0).collect();
        let chunk = sched.dynamic_chunk(n, participants);
        let y: Vec<std::sync::atomic::AtomicU64> = (0..n)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        let row = |r: usize| {
            let mut acc = 0.0;
            for idx in a.row_ptr[r]..a.row_ptr[r + 1] {
                acc += a.values[idx] * x[a.col_idx[idx]];
            }
            y[r].store(acc.to_bits(), Ordering::Relaxed);
        };
        let (baseline_ns, steal_ns) = measure_pair(
            iters,
            reps,
            || counter_for(&pool, n, chunk, &row),
            || pool.parallel_for(n, sched, row),
        );
        counter_for(&pool, n, chunk, &row);
        let y_base: Vec<u64> = y.iter().map(|v| v.load(Ordering::Relaxed)).collect();
        pool.parallel_for(n, sched, row);
        let y_steal: Vec<u64> = y.iter().map(|v| v.load(Ordering::Relaxed)).collect();
        assert_eq!(
            y_base, y_steal,
            "stealing core must produce bit-identical matvec results"
        );
        rows.push(Workload {
            name: "ragged-csr",
            n,
            baseline_ns,
            steal_ns,
        });
    }

    // 2. Skewed triangular cost (iteration i costs ~i) and 3. uniform
    //    cost — the `ablate_sched` shapes, measured core-vs-core.
    fn work(units: usize) -> f64 {
        let mut acc = 0.0f64;
        for i in 0..units {
            acc += (i as f64).sqrt();
        }
        acc
    }
    type CostFn = fn(usize) -> usize;
    let shapes: [(&'static str, CostFn); 2] = [("skewed", |i| i / 8), ("uniform", |_| 64)];
    for (name, unit_of) in shapes {
        let n = if quick { 1 << 10 } else { 1 << 11 };
        let chunk = sched.dynamic_chunk(n, participants);
        let out: Vec<std::sync::atomic::AtomicU64> = (0..n)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        let body = |i: usize| {
            out[i].store(work(unit_of(i)).to_bits(), Ordering::Relaxed);
        };
        let (baseline_ns, steal_ns) = measure_pair(
            iters,
            reps,
            || counter_for(&pool, n, chunk, &body),
            || pool.parallel_for(n, sched, body),
        );
        counter_for(&pool, n, chunk, &body);
        let base_bits: Vec<u64> = out.iter().map(|v| v.load(Ordering::Relaxed)).collect();
        pool.parallel_for(n, sched, body);
        let steal_bits: Vec<u64> = out.iter().map(|v| v.load(Ordering::Relaxed)).collect();
        assert_eq!(base_bits, steal_bits, "same loop, same bits ({name})");
        rows.push(Workload {
            name,
            n,
            baseline_ns,
            steal_ns,
        });
    }

    let stats = pool.steal_stats();
    let total = stats.total();
    let mut t = Table::new(
        "Work stealing — deque core vs dynamic-chunk core (threads, wall-clock)",
        &[
            "workload",
            "n",
            "chunk-core (ns)",
            "deque-core (ns)",
            "speedup",
        ],
    );
    let mut entries = Vec::new();
    for w in &rows {
        let speedup = w.baseline_ns / w.steal_ns;
        t.row(vec![
            w.name.to_string(),
            w.n.to_string(),
            format!("{:.0}", w.baseline_ns),
            format!("{:.0}", w.steal_ns),
            format!("{speedup:.2}x"),
        ]);
        entries.push(format!(
            "    {{\"workload\": \"{}\", \"backend\": \"threads\", \"n\": {}, \"iters\": {iters}, \
             \"baseline_wall_ns\": {:.1}, \"steal_wall_ns\": {:.1}, \
             \"wall_speedup\": {speedup:.3}, \"bit_identical\": true}}",
            w.name, w.n, w.baseline_ns, w.steal_ns
        ));
    }
    t.print();
    println!("{stats}");

    let json = format!(
        "{{\n  \"bench\": \"steal\",\n  \"quick\": {quick},\n  \"threads_workers\": {THREADS_WORKERS},\n  \
         \"telemetry\": {{\"executed\": {}, \"stolen\": {}, \"injected\": {}, \"splits\": {}, \
         \"wakes\": {}, \"parks\": {}}},\n  \"series\": [\n{}\n  ]\n}}\n",
        total.executed,
        total.stolen,
        total.injected,
        total.splits,
        total.wakes,
        total.parks,
        entries.join(",\n")
    );
    racc::trace::json::validate(&json).expect("bench JSON must be valid");
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_steal.json";
    std::fs::write(path, json).expect("write bench JSON");
    println!("\nsteal series written to {path}");
}

/// Device-primitives benchmark: the particle-binning pipeline (histogram
/// of cell keys → exclusive scan to cell offsets → sort_by_key to bin the
/// particles → scan-compacted frontier of occupied cells) on every
/// compiled-in backend. Every stage's output is asserted **bit-identical**
/// to the serial reference before anything is reported — including the
/// `f32` payloads. Times are modeled nanoseconds on the simulated GPUs and
/// wall-clock on the CPU back ends. Prints a table and writes
/// `results/BENCH_prim.json`. `RACC_BENCH_QUICK=1` shrinks sizes.
fn bench_prim() {
    use racc::prim::PrimExt;
    use std::time::Instant;

    let quick = std::env::var_os("RACC_BENCH_QUICK").is_some();
    let sizes: &[usize] = if quick {
        &[1 << 10]
    } else {
        &[1 << 14, 1 << 17]
    };
    let reps = if quick { 2 } else { 5 };

    /// One particle-binning step, every stage on the device primitives.
    /// Returns the host bits of each stage so callers can compare
    /// backends exactly: (cell counts, cell offsets, binned keys, binned
    /// value bits, compacted occupied-cell frontier).
    #[allow(clippy::type_complexity)]
    fn particle_binning(
        ctx: &racc::Ctx,
        n: usize,
        cells: usize,
    ) -> (Vec<u64>, Vec<u64>, Vec<u32>, Vec<u32>, Vec<u64>) {
        // Pseudo-random cell per particle (a hashed position), plus an
        // f32 payload that must survive the binning bitwise.
        let keys = ctx
            .array_from_fn(n, move |i| {
                ((i as u32).wrapping_mul(2_654_435_761) >> 7) % cells as u32
            })
            .unwrap();
        let values = ctx
            .array_from_fn(n, |i| ((i * 37) % 1009) as f32 * 0.125 - 63.0)
            .unwrap();

        let counts = ctx.histogram(&keys, cells).expect("keys are in range");
        let offsets = ctx.exclusive_scan(&counts).unwrap();
        let (binned_keys, binned_values) = ctx.sort_by_key(&keys, &values).unwrap();

        // Scan-compacted frontier: occupied cells, densely packed in
        // ascending cell order via an exclusive scan of occupancy marks.
        let cv = counts.view();
        let marks = ctx
            .array_from_fn(cells, move |c| u64::from(cv.get(c) > 0))
            .unwrap();
        let pos = ctx.exclusive_scan(&marks).unwrap();
        let (mh, ph) = (ctx.to_host(&marks).unwrap(), ctx.to_host(&pos).unwrap());
        let active = (ph.last().copied().unwrap_or(0) + mh.last().copied().unwrap_or(0)) as usize;
        let frontier = ctx.zeros::<u64>(active).unwrap();
        let (mv, pv, fv) = (marks.view(), pos.view(), frontier.view_mut());
        ctx.parallel_for(cells, &racc::KernelProfile::unknown(), move |c| {
            if mv.get(c) == 1 {
                fv.set(pv.get(c) as usize, c as u64);
            }
        });

        (
            ctx.to_host(&counts).unwrap(),
            ctx.to_host(&offsets).unwrap(),
            ctx.to_host(&binned_keys).unwrap(),
            ctx.to_host(&binned_values)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect(),
            ctx.to_host(&frontier).unwrap(),
        )
    }

    let mut t = Table::new(
        "Device primitives — particle binning (histogram + scan + sort_by_key)",
        &["backend", "n", "cells", "modeled", "wall", "bit-identical"],
    );
    let mut entries = Vec::new();
    for &n in sizes {
        let cells = (n / 16).max(8);
        let reference = {
            let ctx = racc::context_for("serial").unwrap();
            particle_binning(&ctx, n, cells)
        };
        for key in racc::available_backends() {
            let ctx = racc::context_for(key).unwrap();
            ctx.reset_timeline();
            let out = particle_binning(&ctx, n, cells);
            let modeled = ctx.modeled_ns();
            let mut wall = f64::INFINITY;
            for _ in 0..reps {
                let t0 = Instant::now();
                let _ = particle_binning(&ctx, n, cells);
                wall = wall.min(t0.elapsed().as_nanos() as f64);
            }
            assert_eq!(
                out, reference,
                "{key}: particle binning must be bit-identical to the serial reference"
            );
            let accel = ctx.is_accelerator();
            t.row(vec![
                key.to_string(),
                n.to_string(),
                cells.to_string(),
                if accel {
                    fmt_ns(modeled as f64)
                } else {
                    "-".into()
                },
                fmt_ns(wall),
                "yes".into(),
            ]);
            // Simulated GPUs report the deterministic modeled time (drift-
            // gated by check_bench.py); CPU back ends report wall-clock
            // only, which is informational — too noisy on shared CI to
            // gate.
            let metric = if accel {
                format!("\"modeled_ns\": {modeled}")
            } else {
                format!("\"wall_ns\": {wall:.0}")
            };
            entries.push(format!(
                "    {{\"workload\": \"particle-binning\", \"backend\": \"{key}\", \
                 \"shape\": \"n{n}\", \"n\": {n}, \"cells\": {cells}, {metric}, \
                 \"bit_identical\": true}}"
            ));
        }
    }
    t.print();

    let json = format!(
        "{{\n  \"bench\": \"prim\",\n  \"quick\": {quick},\n  \"series\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    racc::trace::json::validate(&json).expect("bench JSON must be valid");
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_prim.json";
    std::fs::write(path, json).expect("write bench JSON");
    println!("\nprim series written to {path}");
}

/// Multi-device sharding benchmark: 1→8 simulated-device scaling curves
/// for the sharded heat3d stencil, the sharded D2Q9 LBM, and the
/// pipelined distributed CG, with halo/interior overlap on vs off. Every
/// multi-device field is asserted bit-identical to the single-device run
/// before anything is reported. Times are **modeled makespans** (the max
/// per-shard clock; the comm substrate itself is unclocked — pack/unpack
/// kernels and staging transfers are the device-visible exchange cost).
/// Prints a table and writes `results/BENCH_shard.json`.
/// `RACC_BENCH_QUICK=1` shrinks problem sizes and the device sweep.
fn bench_shard() {
    use racc_cg::pipelined::PipelinedCg;
    use racc_lbm::sharded::ShardedLbm;
    use racc_shard::{run_sharded, ShardApp, ShardOptions, ShardOutcome};
    use racc_stencil::ShardedHeat3;
    use std::sync::Arc;

    let quick = std::env::var_os("RACC_BENCH_QUICK").is_some();
    let device_counts: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    fn factory(_rank: usize) -> racc::Ctx {
        racc::builder()
            .backend("cudasim")
            .build()
            .expect("cudasim backend compiled in")
    }

    fn drive<A>(app: Arc<A>, devices: usize, overlap: bool) -> ShardOutcome
    where
        A: ShardApp<racc::AnyBackend>,
    {
        run_sharded(
            app,
            ShardOptions::devices(devices)
                .overlap(overlap)
                .checkpoint_every(0),
            factory,
        )
    }

    // Interior-dominated sizes: large enough that the per-step interior
    // launch outweighs the fixed pack/unpack launch + staging-transfer
    // cost of the exchange (at toy sizes every curve is halo-bound).
    let heat = Arc::new(if quick {
        ShardedHeat3 { n: 32, sweeps: 4 }
    } else {
        ShardedHeat3 { n: 160, sweeps: 8 }
    });
    let lbm = Arc::new(if quick {
        ShardedLbm {
            s: 64,
            tau: 0.8,
            steps: 3,
        }
    } else {
        ShardedLbm {
            s: 512,
            tau: 0.8,
            steps: 6,
        }
    });
    let cg = Arc::new(if quick {
        PipelinedCg {
            tiles: 16,
            tile: 64,
            steps: 10,
        }
    } else {
        PipelinedCg {
            tiles: 64,
            tile: 4096,
            steps: 20,
        }
    });

    struct Row {
        workload: &'static str,
        devices: usize,
        overlap: bool,
        makespan_ns: u64,
        speedup: f64,
        overlap_gain: Option<f64>,
        halo_exchanges: u64,
    }
    let mut all_rows: Vec<Row> = Vec::new();

    type Runner = Box<dyn Fn(usize, bool) -> ShardOutcome>;
    let workloads: Vec<(&'static str, Runner)> = vec![
        (
            "heat3d",
            Box::new(move |d, ov| drive(Arc::clone(&heat), d, ov)),
        ),
        ("lbm", Box::new(move |d, ov| drive(Arc::clone(&lbm), d, ov))),
        ("cg", Box::new(move |d, ov| drive(Arc::clone(&cg), d, ov))),
    ];

    for (name, run) in &workloads {
        let base = run(1, true);
        let base_ns = base.makespan_ns();
        for &d in device_counts {
            let on = run(d, true);
            assert_eq!(
                on.field, base.field,
                "{name} on {d} devices must be bit-identical to one device"
            );
            let exchanges: u64 = on
                .reports
                .iter()
                .flatten()
                .map(|r| r.stats.halo_exchanges)
                .sum();
            let overlap_gain = (d > 1).then(|| {
                let off = run(d, false);
                assert_eq!(
                    off.field, base.field,
                    "{name} without overlap must still be bit-identical"
                );
                all_rows.push(Row {
                    workload: name,
                    devices: d,
                    overlap: false,
                    makespan_ns: off.makespan_ns(),
                    speedup: base_ns as f64 / off.makespan_ns() as f64,
                    overlap_gain: None,
                    halo_exchanges: exchanges,
                });
                off.makespan_ns() as f64 / on.makespan_ns() as f64
            });
            all_rows.push(Row {
                workload: name,
                devices: d,
                overlap: true,
                makespan_ns: on.makespan_ns(),
                speedup: base_ns as f64 / on.makespan_ns() as f64,
                overlap_gain,
                halo_exchanges: exchanges,
            });
        }
    }

    let mut t = Table::new(
        "Sharded multi-device scaling — modeled makespan on simulated A100s",
        &[
            "workload",
            "devices",
            "overlap",
            "makespan",
            "speedup",
            "overlap-gain",
            "halo-ex",
        ],
    );
    let mut entries = Vec::new();
    for r in &all_rows {
        t.row(vec![
            r.workload.to_string(),
            r.devices.to_string(),
            if r.overlap { "on" } else { "off" }.to_string(),
            fmt_ns(r.makespan_ns as f64),
            format!("{:.2}x", r.speedup),
            r.overlap_gain
                .map_or_else(|| "-".to_string(), |g| format!("{g:.2}x")),
            r.halo_exchanges.to_string(),
        ]);
        let gain = r
            .overlap_gain
            .map_or_else(|| "null".to_string(), |g| format!("{g:.3}"));
        entries.push(format!(
            "    {{\"workload\": \"{}\", \"backend\": \"cudasim\", \"shape\": \"d{}-overlap-{}\", \
             \"devices\": {}, \"overlap\": {}, \"makespan_ns\": {}, \
             \"modeled_speedup\": {:.3}, \"overlap_gain\": {gain}, \
             \"halo_exchanges\": {}, \"bit_identical\": true}}",
            r.workload,
            r.devices,
            if r.overlap { "on" } else { "off" },
            r.devices,
            r.overlap,
            r.makespan_ns,
            r.speedup,
            r.halo_exchanges,
        ));
    }
    t.print();

    let json = format!(
        "{{\n  \"bench\": \"shard\",\n  \"quick\": {quick},\n  \"series\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    racc::trace::json::validate(&json).expect("bench JSON must be valid");
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_shard.json";
    std::fs::write(path, json).expect("write bench JSON");
    println!("\nshard scaling series written to {path}");
}

/// Serving-layer benchmark: a deterministic open-loop synthetic load —
/// three tenants with fixed weights, arrival rates, and job mixes — driven
/// through a `racc_serve::Server` over 1/2/4 simulated devices. The
/// server's hold/release valve stages the whole schedule and replays it in
/// pure modeled-time order, so admission, fairness, batching, and the
/// reported makespan are a function of the load alone (identical across
/// runs and under the CI's `RACC_CHAOS` soak). Every completed job's value
/// is asserted bit-identical to running the same job alone on a fresh
/// context before anything is reported. Prints a table and writes
/// `results/BENCH_serve.json` (modeled throughput, p50/p99 latency,
/// admission and batching counters). `RACC_BENCH_QUICK=1` shrinks the
/// load; `RACC_SERVE_LOAD=<k>` scales the job counts.
fn bench_serve() {
    use racc_backend_cuda::CudaBackend;
    use racc_core::{Backend, Context, RaccError, RetryPolicy};
    use racc_fuse::{lit, load, LazyExt};
    use racc_serve::{job_fn, JobCtx, Server, ServerOptions, TenantConfig};

    let quick = std::env::var_os("RACC_BENCH_QUICK").is_some();
    let chaos = std::env::var_os("RACC_CHAOS").is_some();
    let scale: u64 = std::env::var("RACC_SERVE_LOAD")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1);
    let device_counts: [usize; 3] = [1, 2, 4];

    let (n_small, n_large) = if quick {
        (1 << 12, 1 << 14)
    } else {
        (1 << 14, 1 << 16)
    };

    /// The canonical served job: fresh arrays and a fused CG-like update,
    /// so every execution is independent and the serve-layer value must
    /// be bit-identical to a solo fresh context.
    fn cg_value<B: Backend>(
        ctx: &Context<B>,
        marks: Option<&JobCtx<'_, B>>,
        n: usize,
        alpha: f64,
    ) -> Result<f64, RaccError> {
        let mk = |k: usize| ctx.array_from_fn(n, move |i| ((i * k) % 13) as f64 * 0.5 - 3.0);
        let (x, p, r, s) = (mk(3)?, mk(5)?, mk(7)?, mk(11)?);
        if let Some(job) = marks {
            job.uploaded();
        }
        let mut l = ctx.lazy();
        l.store(&x, load(&x) + lit(alpha) * load(&p));
        let rv = l.assign(&r, load(&r) + lit(-alpha) * load(&s));
        let v = l.sum(rv.clone() * rv);
        if let Some(job) = marks {
            job.computed();
        }
        let _ = ctx.to_host(&x)?;
        Ok(v)
    }

    // The tenant mix: an interactive tenant (heavy weight, small jobs, the
    // fastest arrival rate), a batch tenant (unit weight, 4x the work per
    // job), and a best-effort tenant whose jobs share the interactive
    // shape — the cross-tenant batching case. (tenant, weight, n, alpha,
    // shape, jobs, inter-arrival ns).
    type Mix = (
        &'static str,
        u32,
        usize,
        f64,
        Option<&'static str>,
        u64,
        u64,
    );
    let mix: [Mix; 3] = [
        (
            "interactive",
            4,
            n_small,
            0.8125,
            Some("cg-small"),
            scale * if quick { 16 } else { 48 },
            20_000,
        ),
        (
            "batch",
            1,
            n_large,
            0.5,
            None,
            scale * if quick { 8 } else { 24 },
            50_000,
        ),
        (
            "best-effort",
            1,
            n_small,
            0.25,
            Some("cg-small"),
            scale * if quick { 8 } else { 24 },
            40_000,
        ),
    ];
    let total_jobs: u64 = mix.iter().map(|m| m.5).sum();

    // Solo references, one fresh context per distinct job kind.
    let reference: Vec<u64> = mix
        .iter()
        .map(|&(_, _, n, alpha, _, _, _)| {
            let ctx = Context::new(CudaBackend::new());
            cg_value(&ctx, None, n, alpha)
                .expect("solo reference")
                .to_bits()
        })
        .collect();

    struct Row {
        devices: usize,
        makespan_ns: u64,
        throughput: f64,
        speedup: f64,
        p50_ns: u64,
        p99_ns: u64,
        admitted: u64,
        completed: u64,
        rejected: u64,
        batched_jobs: u64,
        retried: u64,
        fallbacks: u64,
    }
    let mut rows: Vec<Row> = Vec::new();
    let mut base_makespan = 0u64;

    for &devices in &device_counts {
        let mut options = ServerOptions::default()
            .devices(devices)
            .batch_limit(8)
            .overlap(true)
            .fallback(true)
            .retry(RetryPolicy {
                max_attempts: 3,
                base_backoff_ns: 1_000,
                multiplier: 2,
            })
            .hold(true);
        for &(tenant, weight, ..) in &mix {
            options = options.tenant(
                tenant,
                TenantConfig {
                    weight,
                    ..TenantConfig::default()
                },
            );
        }
        let server = Server::start(options, |_device| Context::new(CudaBackend::new()));

        let mut handles = Vec::new();
        for (kind, &(tenant, _, n, alpha, shape, jobs, rate_ns)) in mix.iter().enumerate() {
            for i in 0..jobs {
                let mut job = job_fn(move |job: &JobCtx<CudaBackend>| {
                    cg_value(job.ctx(), Some(job), n, alpha)
                });
                if let Some(s) = shape {
                    job = job.with_shape(s);
                }
                handles.push((kind, server.submit_at(tenant, i * rate_ns, job)));
            }
        }
        server.release();

        let mut latencies: Vec<u64> = Vec::new();
        let mut violations = 0u64;
        for (kind, handle) in handles {
            match handle.wait() {
                Ok(done) => {
                    if done.output.to_bits() != reference[kind] {
                        violations += 1;
                    }
                    latencies.push(done.report.latency_ns());
                }
                // Typed admission sheds are load policy, not violations —
                // but this load fits every queue, so any error is a bug.
                Err(err) => {
                    eprintln!("job failed on {devices} device(s): {err}");
                    violations += 1;
                }
            }
        }
        assert_eq!(
            violations, 0,
            "every served job must complete bit-identical to a solo context"
        );
        latencies.sort_unstable();
        let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
        let (p50_ns, p99_ns) = (pct(0.5), pct(0.99));

        let snap = server.shutdown();
        assert_eq!(snap.totals.admitted, total_jobs);
        assert_eq!(snap.totals.completed, total_jobs);
        if devices == 1 {
            base_makespan = snap.makespan_ns;
        }
        rows.push(Row {
            devices,
            makespan_ns: snap.makespan_ns,
            throughput: snap.totals.completed as f64 / (snap.makespan_ns as f64 / 1e9),
            speedup: base_makespan as f64 / snap.makespan_ns as f64,
            p50_ns,
            p99_ns,
            admitted: snap.totals.admitted,
            completed: snap.totals.completed,
            rejected: snap.totals.rejected,
            batched_jobs: snap.totals.batched_jobs,
            retried: snap.totals.retried,
            fallbacks: snap.totals.fallbacks,
        });
    }

    let mut t = Table::new(
        "Serving — open-loop tenant mix on 1/2/4 simulated A100s (modeled)",
        &[
            "devices", "makespan", "jobs/s", "speedup", "p50", "p99", "batched", "retried",
        ],
    );
    let mut entries = Vec::new();
    for r in &rows {
        t.row(vec![
            r.devices.to_string(),
            fmt_ns(r.makespan_ns as f64),
            format!("{:.0}", r.throughput),
            format!("{:.2}x", r.speedup),
            fmt_ns(r.p50_ns as f64),
            fmt_ns(r.p99_ns as f64),
            r.batched_jobs.to_string(),
            r.retried.to_string(),
        ]);
        entries.push(format!(
            "    {{\"workload\": \"serve-mix\", \"backend\": \"cudasim\", \"shape\": \"d{}\", \
             \"devices\": {}, \"jobs\": {total_jobs}, \"makespan_ns\": {}, \
             \"throughput_jobs_per_s\": {:.1}, \"modeled_speedup\": {:.3}, \
             \"p50_ns\": {}, \"p99_ns\": {}, \"admitted\": {}, \"completed\": {}, \
             \"rejected\": {}, \"batched_jobs\": {}, \"retried\": {}, \"fallbacks\": {}, \
             \"dropped_violations\": 0, \"bit_identical\": true}}",
            r.devices,
            r.devices,
            r.makespan_ns,
            r.throughput,
            r.speedup,
            r.p50_ns,
            r.p99_ns,
            r.admitted,
            r.completed,
            r.rejected,
            r.batched_jobs,
            r.retried,
            r.fallbacks,
        ));
    }
    t.print();

    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"quick\": {quick},\n  \"chaos\": {chaos},\n  \"series\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    racc::trace::json::validate(&json).expect("bench JSON must be valid");
    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/BENCH_serve.json";
    std::fs::write(path, json).expect("write bench JSON");
    println!("\nserve series written to {path}");
}

/// Ablation: native 2D tiled launch vs flattened 1D launch for the LBM
/// step (same work, different launch geometry and block shape).
fn ablate_lbm_launch() {
    use racc_lbm::portable::LbmSim;
    let mut t = Table::new(
        "Ablation — LBM step: native 2D (16x16 tiles) vs flattened 1D launch, modeled",
        &["arch", "size", "2d-launch", "1d-flat", "flat/2d"],
    );
    for arch in [Arch::Mi100, Arch::A100, Arch::Max1550] {
        for s in [64usize, 256] {
            let ctx = arch.context();
            let mut sim = LbmSim::uniform(&ctx, s, 0.8, 1.0, 0.02, 0.0).expect("setup");
            ctx.reset_timeline();
            sim.step();
            let t2d = ctx.modeled_ns() as f64;
            ctx.reset_timeline();
            sim.step_flat();
            let t1d = ctx.modeled_ns() as f64;
            t.row(vec![
                arch.label().to_string(),
                s.to_string(),
                fmt_ns(t2d),
                fmt_ns(t1d),
                format!("{:.2}", t1d / t2d),
            ]);
        }
    }
    t.print();
}
