//! The four architectures of the paper's study.

use racc_core::Context;

/// One of the four platforms the paper evaluates (its §V hardware table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arch {
    /// AMD EPYC 7742 Rome, 64 cores (`Base.Threads` back end).
    CpuRome,
    /// AMD MI100 (AMDGPU back end).
    Mi100,
    /// NVIDIA A100 (CUDA back end).
    A100,
    /// Intel Data Center Max 1550 (oneAPI back end).
    Max1550,
}

impl Arch {
    /// All four, in the paper's presentation order.
    pub fn all() -> [Arch; 4] {
        [Arch::CpuRome, Arch::Mi100, Arch::A100, Arch::Max1550]
    }

    /// Short column label.
    pub fn label(&self) -> &'static str {
        match self {
            Arch::CpuRome => "rome-cpu",
            Arch::Mi100 => "mi100",
            Arch::A100 => "a100",
            Arch::Max1550 => "max1550",
        }
    }

    /// The RACC backend key for this architecture.
    pub fn backend_key(&self) -> &'static str {
        match self {
            Arch::CpuRome => "threads",
            Arch::Mi100 => "hipsim",
            Arch::A100 => "cudasim",
            Arch::Max1550 => "oneapisim",
        }
    }

    /// Build a RACC context on this architecture.
    pub fn context(&self) -> Context<racc::AnyBackend> {
        racc::context_for(self.backend_key()).expect("backend compiled in")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_keys_are_consistent() {
        for arch in Arch::all() {
            let ctx = arch.context();
            assert_eq!(ctx.key(), arch.backend_key());
            assert!(!arch.label().is_empty());
        }
    }

    #[test]
    fn gpu_archs_are_accelerators() {
        assert!(!Arch::CpuRome.context().is_accelerator());
        assert!(Arch::Mi100.context().is_accelerator());
        assert!(Arch::A100.context().is_accelerator());
        assert!(Arch::Max1550.context().is_accelerator());
    }
}
