//! Minimal aligned-text table printer for the figure harness.

/// A column-aligned text table with a title and header row.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:>width$}", cells[c], width = widths[c]));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["size", "time"]);
        t.row(vec!["16".into(), "1.5us".into()]);
        t.row(vec!["1024".into(), "12.25ms".into()]);
        let s = t.render();
        assert!(s.contains("# Demo"));
        assert!(s.contains("size"));
        let lines: Vec<&str> = s.lines().collect();
        // header + rule + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
