//! Raw element storage backing RACC arrays.
//!
//! Storage is a manually managed, 64-byte-aligned allocation accessed only
//! through raw pointers — no `&`/`&mut` references to the buffer ever exist,
//! which is what makes the shared-write view model (`ViewMut*`) sound under
//! the disjoint-writes kernel contract.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::marker::PhantomData;

use crate::scalar::AccScalar;

/// A fixed-size, heap-allocated element buffer.
pub(crate) struct RawStorage<T: AccScalar> {
    ptr: *mut T,
    len: usize,
    layout: Layout,
    _marker: PhantomData<T>,
}

// SAFETY: all access goes through raw pointers under the kernel contract;
// the pointer itself may move between threads freely.
unsafe impl<T: AccScalar> Send for RawStorage<T> {}
unsafe impl<T: AccScalar> Sync for RawStorage<T> {}

impl<T: AccScalar> RawStorage<T> {
    /// Allocate `len` zero-initialized elements.
    pub(crate) fn zeroed(len: usize) -> Self {
        let bytes = len * std::mem::size_of::<T>();
        let layout = Layout::from_size_align(bytes.max(1), 64).expect("valid layout");
        // SAFETY: non-zero-size layout.
        let ptr = unsafe { alloc_zeroed(layout) } as *mut T;
        assert!(!ptr.is_null(), "array allocation failed");
        RawStorage {
            ptr,
            len,
            layout,
            _marker: PhantomData,
        }
    }

    /// Allocate and fill from a host slice.
    pub(crate) fn from_slice(data: &[T]) -> Self {
        let storage = Self::zeroed(data.len());
        // SAFETY: freshly allocated with exactly data.len() elements.
        unsafe { std::ptr::copy_nonoverlapping(data.as_ptr(), storage.ptr, data.len()) };
        storage
    }

    pub(crate) fn ptr(&self) -> *mut T {
        self.ptr
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Copy the contents out to a `Vec`.
    pub(crate) fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        // SAFETY: storage holds exactly `len` initialized elements.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr as *const T, out.as_mut_ptr(), self.len);
            out.set_len(self.len);
        }
        out
    }

    /// Overwrite the contents from a slice of the same length.
    pub(crate) fn copy_from_slice(&self, data: &[T]) {
        assert_eq!(data.len(), self.len, "copy_from_slice length mismatch");
        // SAFETY: lengths equal; caller must not run kernels concurrently.
        unsafe { std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr, self.len) };
    }
}

impl<T: AccScalar> Drop for RawStorage<T> {
    fn drop(&mut self) {
        // SAFETY: allocated with this layout in `zeroed`.
        unsafe { dealloc(self.ptr as *mut u8, self.layout) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_round_trip() {
        let s = RawStorage::<f64>::zeroed(100);
        assert_eq!(s.len(), 100);
        assert!(s.to_vec().iter().all(|&x| x == 0.0));
        let data: Vec<f64> = (0..50).map(f64::from).collect();
        let s = RawStorage::from_slice(&data);
        assert_eq!(s.to_vec(), data);
    }

    #[test]
    fn copy_from_slice_overwrites() {
        let s = RawStorage::<u32>::zeroed(4);
        s.copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(s.to_vec(), vec![1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn copy_from_slice_checks_length() {
        let s = RawStorage::<u32>::zeroed(4);
        s.copy_from_slice(&[1, 2, 3]);
    }

    #[test]
    fn zero_length_storage() {
        let s = RawStorage::<f64>::zeroed(0);
        assert_eq!(s.len(), 0);
        assert!(s.to_vec().is_empty());
    }
}
