//! Canonical reference algorithms for the portable device primitives
//! (`scan`, `histogram`, `sort_by_key`) shipped by `racc-prim`.
//!
//! Every backend implements [`crate::Backend::prim_scan_1d`] /
//! [`crate::Backend::prim_histogram_1d`] / [`crate::Backend::prim_sort_pairs_1d`]
//! against the *same* specification, defined here as plain sequential code.
//! The specification fixes not just the values but the **association** of
//! every combine, so floating-point results are bit-identical on all five
//! backends and run-to-run under work stealing:
//!
//! * **Scan** uses a fixed two-level tiling with [`PRIM_TILE`]-wide tiles
//!   (independent of backend, device geometry and thread count). Within a
//!   tile the combine is a left fold seeded from the tile's *first element*
//!   (no identity combine); tile totals are left-folded in ascending tile
//!   order into exclusive tile offsets; element `i` in tile `t > 0` is
//!   `combine(offset[t], local[i])`. Tile 0 uses its local fold directly,
//!   so `inclusive_scan(x)[0] == x[0]` bitwise. This association differs
//!   from a naive one-pass sequential scan for non-associative float ops —
//!   the two-level form *is* the contract, and this module is its
//!   executable definition.
//! * **Histogram** counts are `u64`, so addition is exactly associative and
//!   any combine order gives bit-identical bins. Every bin in `0..bins` is
//!   written (zero counts included). Callers guarantee `key(i) < bins`;
//!   `racc-prim` offers a validated wrapper that turns violations into a
//!   typed error before any backend sees them.
//! * **Sort** is a stable ascending sort of `(key_bits, original_index)`
//!   pairs: ties between equal keys break toward the smaller original
//!   index, which makes the output permutation unique — so every backend
//!   (LSD radix on the simulators, tiled merge on threads) agrees exactly.

use crate::scalar::ReduceOp;
use crate::AccScalar;

/// Fixed scan tile width. Part of the determinism contract: tile boundaries
/// are a pure function of `n`, never of the backend or device geometry.
pub const PRIM_TILE: usize = 256;

/// Cap on CPU-side tiles for histogram/sort so per-tile scratch stays
/// bounded on huge inputs (mirrors the threadpool's `REDUCE_MAX_TILES`).
pub const PRIM_MAX_CPU_TILES: usize = 1024;

/// Number of scan tiles covering `n` elements.
#[inline]
pub fn scan_tiles(n: usize) -> usize {
    n.div_ceil(PRIM_TILE)
}

/// Half-open element range of scan tile `t`.
#[inline]
pub fn tile_bounds(t: usize, n: usize) -> (usize, usize) {
    let start = t * PRIM_TILE;
    (start, (start + PRIM_TILE).min(n))
}

/// CPU tile width for histogram/sort: at least [`PRIM_TILE`], growing so no
/// more than [`PRIM_MAX_CPU_TILES`] tiles exist. Pure function of `n`.
#[inline]
pub fn cpu_tile_width(n: usize) -> usize {
    PRIM_TILE.max(n.div_ceil(PRIM_MAX_CPU_TILES))
}

/// The tile-local fold of tile `t`: a left fold seeded from the tile's
/// first element. Tiles are never empty (`t < scan_tiles(n)`).
#[inline]
pub fn tile_total<T, O, F>(t: usize, n: usize, read: &F, op: O) -> T
where
    T: AccScalar,
    O: ReduceOp<T>,
    F: Fn(usize) -> T,
{
    let (start, end) = tile_bounds(t, n);
    let mut acc = read(start);
    for i in start + 1..end {
        acc = op.combine(acc, read(i));
    }
    acc
}

/// Exclusive left fold over the tile totals: `offsets[0]` is the identity
/// (by definition — it is never combined into tile 0's outputs), and
/// `offsets[t] = total[0] ⊕ total[1] ⊕ … ⊕ total[t-1]` left-associated
/// with no identity seed.
pub fn tile_offsets<T, O>(totals: &[T], op: O) -> Vec<T>
where
    T: AccScalar,
    O: ReduceOp<T>,
{
    let mut offsets = Vec::with_capacity(totals.len());
    let mut running: Option<T> = None;
    for &total in totals {
        offsets.push(running.unwrap_or_else(|| op.identity()));
        running = Some(match running {
            None => total,
            Some(r) => op.combine(r, total),
        });
    }
    offsets
}

/// Write the scan outputs for tile `t` given its exclusive offset. Tile 0
/// ignores `offset` and uses its local fold directly (exclusive scan's
/// first element is the identity — the only identity value in the output).
pub fn scan_tile_write<T, O, F, W>(
    t: usize,
    n: usize,
    inclusive: bool,
    offset: T,
    read: &F,
    write: &W,
    op: O,
) where
    T: AccScalar,
    O: ReduceOp<T>,
    F: Fn(usize) -> T,
    W: Fn(usize, T),
{
    let (start, end) = tile_bounds(t, n);
    let mut local: Option<T> = None;
    for i in start..end {
        let prev = local;
        local = Some(match prev {
            None => read(i),
            Some(l) => op.combine(l, read(i)),
        });
        let value = if inclusive { local } else { prev };
        let out = match value {
            // Exclusive scan, first element of the tile: the bare offset
            // (identity for tile 0).
            None => {
                if t == 0 {
                    op.identity()
                } else {
                    offset
                }
            }
            Some(v) => {
                if t == 0 {
                    v
                } else {
                    op.combine(offset, v)
                }
            }
        };
        write(i, out);
    }
}

/// The canonical scan: sequential composition of the three tile passes.
/// This is the executable specification every backend must match bitwise.
pub fn scan_canonical<T, O, F, W>(n: usize, inclusive: bool, read: &F, write: &W, op: O)
where
    T: AccScalar,
    O: ReduceOp<T>,
    F: Fn(usize) -> T,
    W: Fn(usize, T),
{
    let tiles = scan_tiles(n);
    let totals: Vec<T> = (0..tiles).map(|t| tile_total(t, n, read, op)).collect();
    let offsets = tile_offsets(&totals, op);
    for (t, &offset) in offsets.iter().enumerate() {
        scan_tile_write(t, n, inclusive, offset, read, write, op);
    }
}

/// The canonical histogram: count keys into `bins` buckets and write every
/// bin (zeros included). Caller guarantees `key(i) < bins` for all `i`.
pub fn histogram_canonical<F, W>(n: usize, bins: usize, key: &F, write: &W)
where
    F: Fn(usize) -> usize,
    W: Fn(usize, u64),
{
    let mut counts = vec![0u64; bins];
    for i in 0..n {
        counts[key(i)] += 1;
    }
    for (bin, &c) in counts.iter().enumerate() {
        write(bin, c);
    }
}

/// The canonical stable sort of `(key_bits, index)` pairs: ascending by
/// bits, ties toward the smaller original index. `write(rank, index)` is
/// called once per rank in `0..n`.
pub fn sort_pairs_canonical<F, W>(n: usize, key: &F, write: &W)
where
    F: Fn(usize) -> u64,
    W: Fn(usize, usize),
{
    let mut pairs: Vec<(u64, usize)> = (0..n).map(|i| (key(i), i)).collect();
    // Tuples order by (bits, index), so an unstable sort is stable by bits.
    pairs.sort_unstable();
    for (rank, &(_, idx)) in pairs.iter().enumerate() {
        write(rank, idx);
    }
}

/// A fixed-size slot vector writable from many threads, where the caller
/// guarantees each index is written by exactly one task (disjoint tiles).
/// Used by the CPU backends to collect per-tile partials deterministically.
pub struct SlotVec<T> {
    slots: Vec<std::cell::UnsafeCell<T>>,
}

// Safety: the contract above — disjoint indices per task — makes concurrent
// `set` calls race-free; reads only happen after the parallel phase joins.
unsafe impl<T: Send> Sync for SlotVec<T> {}

impl<T: Copy> SlotVec<T> {
    pub fn new(len: usize, fill: T) -> Self {
        SlotVec {
            slots: (0..len).map(|_| std::cell::UnsafeCell::new(fill)).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Store `v` at `i`. Caller guarantees no other task touches `i`
    /// during the parallel phase.
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        unsafe { *self.slots[i].get() = v }
    }

    #[inline]
    pub fn get(&self, i: usize) -> T {
        unsafe { *self.slots[i].get() }
    }

    /// Exclusive view of the half-open slot range `[start, end)`. Caller
    /// guarantees no other task overlaps the range during the parallel
    /// phase.
    ///
    /// # Safety
    /// Ranges handed out concurrently must be disjoint.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, start: usize, end: usize) -> &mut [T] {
        assert!(start <= end && end <= self.slots.len());
        // UnsafeCell<T> is layout-identical to T.
        let base = self.slots.as_ptr() as *mut T;
        std::slice::from_raw_parts_mut(base.add(start), end - start)
    }

    pub fn into_vec(self) -> Vec<T> {
        self.slots.into_iter().map(|c| c.into_inner()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{Max, Sum};

    fn naive_inclusive(xs: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        let mut acc: Option<f64> = None;
        for &x in xs {
            acc = Some(match acc {
                None => x,
                Some(a) => a + x,
            });
            out.push(acc.unwrap());
        }
        out
    }

    #[test]
    fn scan_matches_naive_for_exact_values() {
        // Integers-in-floats are exact, so the two-level association must
        // equal the naive scan value-for-value.
        let xs: Vec<f64> = (0..1000).map(|i| (i % 7) as f64).collect();
        let mut got = vec![0.0; xs.len()];
        {
            let g = std::cell::RefCell::new(&mut got);
            scan_canonical(
                xs.len(),
                true,
                &|i| xs[i],
                &|i, v| g.borrow_mut()[i] = v,
                Sum,
            );
        }
        assert_eq!(got, naive_inclusive(&xs));
    }

    #[test]
    fn exclusive_shifts_inclusive_by_one() {
        let xs: Vec<u64> = (0..523).map(|i| i * 3 + 1).collect();
        let mut inc = vec![0u64; xs.len()];
        let mut exc = vec![0u64; xs.len()];
        {
            let gi = std::cell::RefCell::new(&mut inc);
            scan_canonical(
                xs.len(),
                true,
                &|i| xs[i],
                &|i, v| gi.borrow_mut()[i] = v,
                Sum,
            );
        }
        {
            let ge = std::cell::RefCell::new(&mut exc);
            scan_canonical(
                xs.len(),
                false,
                &|i| xs[i],
                &|i, v| ge.borrow_mut()[i] = v,
                Sum,
            );
        }
        assert_eq!(exc[0], 0);
        for i in 1..xs.len() {
            assert_eq!(exc[i], inc[i - 1]);
        }
    }

    #[test]
    fn scan_first_element_is_bitwise_input() {
        // Tile 0 never combines with the identity: -0.0 survives.
        let xs = [-0.0f64, 1.0];
        let mut got = vec![0.0; 2];
        {
            let g = std::cell::RefCell::new(&mut got);
            scan_canonical(2, true, &|i| xs[i], &|i, v| g.borrow_mut()[i] = v, Sum);
        }
        assert_eq!(got[0].to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn scan_max_over_singleton_tiles() {
        let xs: Vec<f32> = (0..300).map(|i| ((i * 37) % 91) as f32 - 45.0).collect();
        let mut got = vec![0.0f32; xs.len()];
        {
            let g = std::cell::RefCell::new(&mut got);
            scan_canonical(
                xs.len(),
                true,
                &|i| xs[i],
                &|i, v| g.borrow_mut()[i] = v,
                Max,
            );
        }
        let mut m = f32::NEG_INFINITY;
        for (i, &x) in xs.iter().enumerate() {
            m = m.max(x);
            assert_eq!(got[i], m);
        }
    }

    #[test]
    fn histogram_counts_every_bin() {
        let keys = [3usize, 1, 3, 3, 0];
        let counts = std::cell::RefCell::new(vec![u64::MAX; 5]);
        histogram_canonical(keys.len(), 5, &|i| keys[i], &|b, c| {
            counts.borrow_mut()[b] = c
        });
        assert_eq!(*counts.borrow(), vec![1, 1, 0, 3, 0]);
    }

    #[test]
    fn sort_is_stable_on_ties() {
        let keys = [2u64, 1, 2, 1, 0];
        let order = std::cell::RefCell::new(vec![usize::MAX; 5]);
        sort_pairs_canonical(keys.len(), &|i| keys[i], &|rank, idx| {
            order.borrow_mut()[rank] = idx
        });
        assert_eq!(*order.borrow(), vec![4, 1, 3, 0, 2]);
    }

    #[test]
    fn empty_inputs_write_nothing_but_zero_bins() {
        scan_canonical::<f64, _, _, _>(0, true, &|_| 0.0, &|_, _| panic!("no writes"), Sum);
        sort_pairs_canonical(0, &|_| 0, &|_, _| panic!("no writes"));
        let counts = std::cell::RefCell::new(vec![u64::MAX; 3]);
        histogram_canonical(0, 3, &|_| 0, &|b, c| counts.borrow_mut()[b] = c);
        assert_eq!(*counts.borrow(), vec![0, 0, 0]);
    }
}
