//! Element and reduction-operator traits.

/// Types storable in RACC arrays and reducible by the constructs.
pub trait AccScalar: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {}
impl<T: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static> AccScalar for T {}

/// Arithmetic needed by the built-in reduction operators. Implemented for
/// the primitive numeric types.
pub trait Numeric: AccScalar + PartialOrd {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Identity of `max` (the smallest representable value, `-inf` for
    /// floats).
    const MIN_ID: Self;
    /// Identity of `min`.
    const MAX_ID: Self;
    /// Addition.
    fn add(self, other: Self) -> Self;
    /// Multiplication.
    fn mul(self, other: Self) -> Self;
    /// Maximum (for floats: IEEE `max`, NaN-propagating-free).
    fn max_of(self, other: Self) -> Self;
    /// Minimum.
    fn min_of(self, other: Self) -> Self;
}

macro_rules! impl_numeric_int {
    ($($t:ty),*) => {$(
        impl Numeric for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const MIN_ID: Self = <$t>::MIN;
            const MAX_ID: Self = <$t>::MAX;
            #[inline] fn add(self, other: Self) -> Self { self.wrapping_add(other) }
            #[inline] fn mul(self, other: Self) -> Self { self.wrapping_mul(other) }
            #[inline] fn max_of(self, other: Self) -> Self { self.max(other) }
            #[inline] fn min_of(self, other: Self) -> Self { self.min(other) }
        }
    )*};
}

macro_rules! impl_numeric_float {
    ($($t:ty),*) => {$(
        impl Numeric for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const MIN_ID: Self = <$t>::NEG_INFINITY;
            const MAX_ID: Self = <$t>::INFINITY;
            #[inline] fn add(self, other: Self) -> Self { self + other }
            #[inline] fn mul(self, other: Self) -> Self { self * other }
            #[inline] fn max_of(self, other: Self) -> Self { self.max(other) }
            #[inline] fn min_of(self, other: Self) -> Self { self.min(other) }
        }
    )*};
}

impl_numeric_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);
impl_numeric_float!(f32, f64);

/// A reduction monoid: an identity plus an associative combiner. The unit
/// structs [`Sum`], [`Prod`], [`Max`], [`Min`] cover the common cases; the
/// paper's `parallel_reduce` is the `Sum` instance.
pub trait ReduceOp<T>: Copy + Send + Sync + 'static {
    /// The identity element of the monoid.
    fn identity(&self) -> T;
    /// The associative combiner.
    fn combine(&self, a: T, b: T) -> T;
}

/// Summation (JACC's reduction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sum;

impl<T: Numeric> ReduceOp<T> for Sum {
    #[inline]
    fn identity(&self) -> T {
        T::ZERO
    }
    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a.add(b)
    }
}

/// Product reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Prod;

impl<T: Numeric> ReduceOp<T> for Prod {
    #[inline]
    fn identity(&self) -> T {
        T::ONE
    }
    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a.mul(b)
    }
}

/// Maximum reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Max;

impl<T: Numeric> ReduceOp<T> for Max {
    #[inline]
    fn identity(&self) -> T {
        T::MIN_ID
    }
    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a.max_of(b)
    }
}

/// Minimum reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Min;

impl<T: Numeric> ReduceOp<T> for Min {
    #[inline]
    fn identity(&self) -> T {
        T::MAX_ID
    }
    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a.min_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold<T, O: ReduceOp<T>>(op: O, items: &[T]) -> T
    where
        T: Copy,
    {
        items.iter().fold(op.identity(), |a, &b| op.combine(a, b))
    }

    #[test]
    fn sum_and_prod() {
        assert_eq!(fold(Sum, &[1i64, 2, 3, 4]), 10);
        assert_eq!(fold(Prod, &[1i64, 2, 3, 4]), 24);
        assert_eq!(fold(Sum, &[1.5f64, 2.5]), 4.0);
        assert_eq!(fold::<f64, _>(Sum, &[]), 0.0);
        assert_eq!(fold::<f64, _>(Prod, &[]), 1.0);
    }

    #[test]
    fn max_and_min_with_identities() {
        assert_eq!(fold(Max, &[3i32, -7, 5]), 5);
        assert_eq!(fold(Min, &[3i32, -7, 5]), -7);
        assert_eq!(fold::<f64, _>(Max, &[]), f64::NEG_INFINITY);
        assert_eq!(fold::<f64, _>(Min, &[]), f64::INFINITY);
        assert_eq!(fold(Max, &[-1.0f64, -2.0]), -1.0);
        assert_eq!(fold::<i32, _>(Max, &[]), i32::MIN);
        assert_eq!(fold::<u32, _>(Min, &[]), u32::MAX);
    }

    #[test]
    fn integer_sum_wraps_instead_of_panicking() {
        // Reductions over user data must not abort on overflow.
        assert_eq!(fold(Sum, &[i64::MAX, 1]), i64::MIN);
    }
}
