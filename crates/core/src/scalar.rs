//! Element and reduction-operator traits.

/// Types storable in RACC arrays and reducible by the constructs.
pub trait AccScalar: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static {}
impl<T: Copy + Send + Sync + PartialEq + std::fmt::Debug + 'static> AccScalar for T {}

/// Arithmetic needed by the built-in reduction operators. Implemented for
/// the primitive numeric types.
pub trait Numeric: AccScalar + PartialOrd {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Identity of `max` (the smallest representable value, `-inf` for
    /// floats).
    const MIN_ID: Self;
    /// Identity of `min`.
    const MAX_ID: Self;
    /// Addition.
    fn add(self, other: Self) -> Self;
    /// Multiplication.
    fn mul(self, other: Self) -> Self;
    /// Maximum. For floats this is IEEE-754 `maximumNumber` (Rust's
    /// [`f64::max`]): **NaN-dropping** — if exactly one operand is NaN the
    /// other is returned, and only `NaN.max_of(NaN)` is NaN. See
    /// [`ReduceOp`] for why this makes `Max`/`Min` reductions
    /// association-invariant in the presence of NaN.
    fn max_of(self, other: Self) -> Self;
    /// Minimum, with the same NaN-dropping contract as [`Numeric::max_of`].
    fn min_of(self, other: Self) -> Self;
}

macro_rules! impl_numeric_int {
    ($($t:ty),*) => {$(
        impl Numeric for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const MIN_ID: Self = <$t>::MIN;
            const MAX_ID: Self = <$t>::MAX;
            #[inline] fn add(self, other: Self) -> Self { self.wrapping_add(other) }
            #[inline] fn mul(self, other: Self) -> Self { self.wrapping_mul(other) }
            #[inline] fn max_of(self, other: Self) -> Self { self.max(other) }
            #[inline] fn min_of(self, other: Self) -> Self { self.min(other) }
        }
    )*};
}

macro_rules! impl_numeric_float {
    ($($t:ty),*) => {$(
        impl Numeric for $t {
            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const MIN_ID: Self = <$t>::NEG_INFINITY;
            const MAX_ID: Self = <$t>::INFINITY;
            #[inline] fn add(self, other: Self) -> Self { self + other }
            #[inline] fn mul(self, other: Self) -> Self { self * other }
            #[inline] fn max_of(self, other: Self) -> Self { self.max(other) }
            #[inline] fn min_of(self, other: Self) -> Self { self.min(other) }
        }
    )*};
}

impl_numeric_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);
impl_numeric_float!(f32, f64);

/// A reduction monoid: an identity plus an associative combiner. The unit
/// structs [`Sum`], [`Prod`], [`Max`], [`Min`] cover the common cases; the
/// paper's `parallel_reduce` is the `Sum` instance.
///
/// # NaN contract (floats)
///
/// Backends combine partial results in different shapes (a left fold on
/// serial, fixed tiles combined in index order on the stealing threadpool,
/// identity-padded shared-memory trees on the simulators), so the combiner
/// must give the same answer under *any* association. For [`Max`]/[`Min`]
/// that forces the **NaN-dropping** semantics of [`Numeric::max_of`] /
/// [`Numeric::min_of`]: a NaN input is discarded at its first combine with
/// any non-NaN value (including the ±∞ identity used for padding), so
///
/// * `Max`/`Min` over inputs containing NaN return the max/min of the
///   non-NaN values — bit-identically on every backend;
/// * `Max`/`Min` over all-NaN (or empty) inputs return the identity
///   (`-inf` / `+inf`), **not** NaN.
///
/// A NaN-*propagating* max would not be associativity-stable here: whether
/// NaN survived would depend on tile boundaries. Callers that need to
/// detect NaN should reduce `x.is_nan()` separately. [`Sum`]/[`Prod`]
/// propagate NaN as ordinary float arithmetic does, identically under any
/// association.
pub trait ReduceOp<T>: Copy + Send + Sync + 'static {
    /// The identity element of the monoid.
    fn identity(&self) -> T;
    /// The associative combiner.
    fn combine(&self, a: T, b: T) -> T;
}

/// Summation (JACC's reduction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sum;

impl<T: Numeric> ReduceOp<T> for Sum {
    #[inline]
    fn identity(&self) -> T {
        T::ZERO
    }
    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a.add(b)
    }
}

/// Product reduction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Prod;

impl<T: Numeric> ReduceOp<T> for Prod {
    #[inline]
    fn identity(&self) -> T {
        T::ONE
    }
    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a.mul(b)
    }
}

/// Maximum reduction. NaN inputs are dropped (see the [`ReduceOp`] NaN
/// contract); all-NaN inputs reduce to `-inf`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Max;

impl<T: Numeric> ReduceOp<T> for Max {
    #[inline]
    fn identity(&self) -> T {
        T::MIN_ID
    }
    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a.max_of(b)
    }
}

/// Minimum reduction. NaN inputs are dropped (see the [`ReduceOp`] NaN
/// contract); all-NaN inputs reduce to `+inf`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Min;

impl<T: Numeric> ReduceOp<T> for Min {
    #[inline]
    fn identity(&self) -> T {
        T::MAX_ID
    }
    #[inline]
    fn combine(&self, a: T, b: T) -> T {
        a.min_of(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fold<T, O: ReduceOp<T>>(op: O, items: &[T]) -> T
    where
        T: Copy,
    {
        items.iter().fold(op.identity(), |a, &b| op.combine(a, b))
    }

    #[test]
    fn sum_and_prod() {
        assert_eq!(fold(Sum, &[1i64, 2, 3, 4]), 10);
        assert_eq!(fold(Prod, &[1i64, 2, 3, 4]), 24);
        assert_eq!(fold(Sum, &[1.5f64, 2.5]), 4.0);
        assert_eq!(fold::<f64, _>(Sum, &[]), 0.0);
        assert_eq!(fold::<f64, _>(Prod, &[]), 1.0);
    }

    #[test]
    fn max_and_min_with_identities() {
        assert_eq!(fold(Max, &[3i32, -7, 5]), 5);
        assert_eq!(fold(Min, &[3i32, -7, 5]), -7);
        assert_eq!(fold::<f64, _>(Max, &[]), f64::NEG_INFINITY);
        assert_eq!(fold::<f64, _>(Min, &[]), f64::INFINITY);
        assert_eq!(fold(Max, &[-1.0f64, -2.0]), -1.0);
        assert_eq!(fold::<i32, _>(Max, &[]), i32::MIN);
        assert_eq!(fold::<u32, _>(Min, &[]), u32::MAX);
    }

    #[test]
    fn max_min_drop_nan_under_any_association() {
        // The pinned NaN contract: NaN is discarded at its first combine
        // with a non-NaN (identity padding included), so left folds and
        // identity-padded trees agree bitwise.
        let xs = [f64::NAN, 3.0, f64::NAN, -7.0, 5.0];
        let folded = fold(Max, &xs);
        assert_eq!(folded.to_bits(), 5.0f64.to_bits());
        assert_eq!(fold(Min, &xs).to_bits(), (-7.0f64).to_bits());
        // Tree association (pairwise, identity-padded to a power of two),
        // the shape the simulators' shared-memory reduction uses.
        let mut level: Vec<f64> = xs.to_vec();
        level.resize(8, Max.identity());
        while level.len() > 1 {
            level = level.chunks(2).map(|c| Max.combine(c[0], c[1])).collect();
        }
        assert_eq!(level[0].to_bits(), folded.to_bits());
    }

    #[test]
    fn max_min_over_all_nan_return_identity() {
        let xs = [f32::NAN, f32::NAN];
        assert_eq!(fold(Max, &xs), f32::NEG_INFINITY);
        assert_eq!(fold(Min, &xs), f32::INFINITY);
    }

    #[test]
    fn sum_propagates_nan() {
        assert!(fold(Sum, &[1.0f64, f64::NAN, 2.0]).is_nan());
    }

    #[test]
    fn integer_sum_wraps_instead_of_panicking() {
        // Reductions over user data must not abort on overflow.
        assert_eq!(fold(Sum, &[i64::MAX, 1]), i64::MIN);
    }
}
