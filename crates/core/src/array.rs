//! Unified arrays — the `JACC.Array` analog.
//!
//! Arrays are created through a [`crate::Context`] so the backend can model
//! the allocation and host-to-device transfer (on CPU back ends these cost
//! nothing, exactly as the paper notes that `JACC.Array` "is not necessary"
//! under `Base.Threads`). Element storage is host memory in all cases —
//! functional execution happens there — while accelerator back ends keep a
//! residency token that models device-side capacity.
//!
//! Multidimensional arrays are **column-major**, matching Julia; the 2D
//! element `(i, j)` of an `m × n` array lives at linear offset `j * m + i`.

use std::sync::Arc;

use crate::backend::DeviceToken;
use crate::buffer::RawStorage;
use crate::scalar::AccScalar;
use crate::views::{View1, View2, View3, ViewMut1, ViewMut2, ViewMut3};

macro_rules! array_common {
    ($name:ident) => {
        impl<T: AccScalar> std::fmt::Debug for $name<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name))
                    .field("len", &self.storage.len())
                    .field("ctx", &self.ctx_id)
                    .finish()
            }
        }

        impl<T: AccScalar> $name<T> {
            /// Total number of elements.
            pub fn len(&self) -> usize {
                self.storage.len()
            }

            /// True when the array holds no elements.
            pub fn is_empty(&self) -> bool {
                self.storage.len() == 0
            }

            /// Size in bytes.
            pub fn size_bytes(&self) -> usize {
                self.len() * std::mem::size_of::<T>()
            }

            /// Id of the context this array belongs to.
            pub fn ctx_id(&self) -> u64 {
                self.ctx_id
            }

            /// Stable identity of the underlying buffer: the storage base
            /// address. Two arrays alias iff their ids are equal (storages
            /// are uniquely owned, so the id also matches the key the
            /// racecheck layer uses). `racc-fuse` uses this to detect
            /// read-after-write hazards across fused statements.
            pub fn buffer_id(&self) -> usize {
                self.storage.ptr() as usize
            }

            pub(crate) fn storage(&self) -> &Arc<RawStorage<T>> {
                &self.storage
            }
        }
    };
}

/// A one-dimensional unified array.
pub struct Array1<T: AccScalar> {
    storage: Arc<RawStorage<T>>,
    #[allow(dead_code)] // held for its Drop (device residency accounting)
    token: DeviceToken,
    ctx_id: u64,
}
array_common!(Array1);

impl<T: AccScalar> Array1<T> {
    pub(crate) fn new(storage: RawStorage<T>, token: DeviceToken, ctx_id: u64) -> Self {
        Array1 {
            storage: Arc::new(storage),
            token,
            ctx_id,
        }
    }

    /// Read-only kernel view.
    pub fn view(&self) -> View1<T> {
        View1::new(&self.storage)
    }

    /// Writable kernel view (disjoint-writes contract).
    pub fn view_mut(&self) -> ViewMut1<T> {
        ViewMut1::new(&self.storage)
    }
}

/// A two-dimensional (column-major) unified array.
pub struct Array2<T: AccScalar> {
    storage: Arc<RawStorage<T>>,
    #[allow(dead_code)]
    token: DeviceToken,
    ctx_id: u64,
    m: usize,
    n: usize,
}
array_common!(Array2);

impl<T: AccScalar> Array2<T> {
    pub(crate) fn new(
        storage: RawStorage<T>,
        token: DeviceToken,
        ctx_id: u64,
        m: usize,
        n: usize,
    ) -> Self {
        debug_assert_eq!(storage.len(), m * n);
        Array2 {
            storage: Arc::new(storage),
            token,
            ctx_id,
            m,
            n,
        }
    }

    /// Row count (fast axis).
    pub fn nrows(&self) -> usize {
        self.m
    }

    /// Column count (slow axis).
    pub fn ncols(&self) -> usize {
        self.n
    }

    /// Extents `(m, n)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Read-only kernel view.
    pub fn view(&self) -> View2<T> {
        View2::new(&self.storage, self.m, self.n)
    }

    /// Writable kernel view.
    pub fn view_mut(&self) -> ViewMut2<T> {
        ViewMut2::new(&self.storage, self.m, self.n)
    }
}

/// A three-dimensional (column-major) unified array.
pub struct Array3<T: AccScalar> {
    storage: Arc<RawStorage<T>>,
    #[allow(dead_code)]
    token: DeviceToken,
    ctx_id: u64,
    m: usize,
    n: usize,
    l: usize,
}
array_common!(Array3);

impl<T: AccScalar> Array3<T> {
    pub(crate) fn new(
        storage: RawStorage<T>,
        token: DeviceToken,
        ctx_id: u64,
        m: usize,
        n: usize,
        l: usize,
    ) -> Self {
        debug_assert_eq!(storage.len(), m * n * l);
        Array3 {
            storage: Arc::new(storage),
            token,
            ctx_id,
            m,
            n,
            l,
        }
    }

    /// Extents `(m, n, l)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.m, self.n, self.l)
    }

    /// Read-only kernel view.
    pub fn view(&self) -> View3<T> {
        View3::new(&self.storage, self.m, self.n, self.l)
    }

    /// Writable kernel view.
    pub fn view_mut(&self) -> ViewMut3<T> {
        ViewMut3::new(&self.storage, self.m, self.n, self.l)
    }
}
