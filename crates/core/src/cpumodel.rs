//! The CPU machine model used by the Serial and Threads back ends.
//!
//! As with the GPU profiles in `racc-gpusim`, the structural numbers are the
//! published hardware figures and the *achieved* numbers are calibration
//! constants (documented in `EXPERIMENTS.md`). The paper's CPU baseline is a
//! 64-core AMD EPYC 7742 "Rome" running Julia `Base.Threads` loops, which
//! achieve far below STREAM peak; the calibrated achieved bandwidth reflects
//! that.

use crate::profile::KernelProfile;

/// Parameters of a modeled CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Short identifier used in tables.
    pub key: &'static str,
    /// Core count used by the parallel backend.
    pub cores: u32,
    /// Achieved memory bandwidth of a threaded streaming loop, bytes/s.
    pub achieved_bw_bytes_per_sec: f64,
    /// Achieved double-precision throughput of such loops, FLOP/s.
    pub achieved_flops_per_sec: f64,
    /// Fork/join cost of dispatching a parallel region, nanoseconds.
    pub fork_join_overhead_ns: f64,
    /// Fraction of the achieved bandwidth retained under fully strided /
    /// gather access (prefetchers and cache lines are wasted): effective
    /// bandwidth is `bw * (strided_eff + (1 - strided_eff) * coalescing)`.
    pub strided_efficiency: f64,
}

impl CpuSpec {
    /// The paper's CPU baseline: AMD EPYC 7742 (64 cores), with achieved
    /// figures calibrated to `Base.Threads`-style loops.
    pub fn epyc_7742_rome() -> Self {
        CpuSpec {
            name: "AMD EPYC 7742 (Rome)",
            key: "rome",
            cores: 64,
            achieved_bw_bytes_per_sec: 30e9,
            achieved_flops_per_sec: 80e9,
            fork_join_overhead_ns: 15_000.0,
            strided_efficiency: 0.40,
        }
    }

    /// A single core of the same machine, for the Serial backend: the
    /// achieved streaming bandwidth of one core with no threading overhead.
    pub fn epyc_7742_single_core() -> Self {
        CpuSpec {
            name: "AMD EPYC 7742 (1 core)",
            key: "rome1",
            cores: 1,
            achieved_bw_bytes_per_sec: 12e9,
            achieved_flops_per_sec: 4e9,
            fork_join_overhead_ns: 0.0,
            strided_efficiency: 0.50,
        }
    }

    /// Scale the parallel figures to a different core count (keeps per-core
    /// throughput constant; used by tests and ablations).
    pub fn scaled_to_cores(&self, cores: u32) -> Self {
        let f = cores as f64 / self.cores as f64;
        CpuSpec {
            cores,
            achieved_bw_bytes_per_sec: self.achieved_bw_bytes_per_sec * f,
            achieved_flops_per_sec: self.achieved_flops_per_sec * f,
            ..self.clone()
        }
    }

    /// Modeled duration of a parallel-for of `iters` iterations with the
    /// given kernel profile, nanoseconds:
    /// `fork_join + max(bytes / bw, flops / flop-rate)`.
    pub fn kernel_time_ns(&self, iters: usize, profile: &KernelProfile) -> f64 {
        let bytes = profile.bytes_per_iter() * iters as f64;
        let flops = profile.flops_per_iter * iters as f64;
        let c = profile.coalescing.clamp(0.0, 1.0);
        let stride_factor = self.strided_efficiency + (1.0 - self.strided_efficiency) * c;
        let t_mem = bytes / (self.achieved_bw_bytes_per_sec * stride_factor / 1e9);
        let t_cmp = flops / (self.achieved_flops_per_sec / 1e9);
        self.fork_join_overhead_ns + t_mem.max(t_cmp)
    }

    /// Modeled duration of a parallel reduction: the streaming pass plus a
    /// final log-tree combine across cores (negligible next to fork/join but
    /// modeled for completeness).
    pub fn reduce_time_ns(&self, iters: usize, profile: &KernelProfile) -> f64 {
        let tree_ns = (self.cores.max(2) as f64).log2() * 50.0;
        self.kernel_time_ns(iters, profile) + tree_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_loops_cost_the_fork_join_floor() {
        let cpu = CpuSpec::epyc_7742_rome();
        let t = cpu.kernel_time_ns(1, &KernelProfile::axpy());
        assert!(t >= cpu.fork_join_overhead_ns);
        assert!(t < cpu.fork_join_overhead_ns * 1.01);
    }

    #[test]
    fn large_loops_are_bandwidth_bound() {
        let cpu = CpuSpec::epyc_7742_rome();
        let n = 100_000_000usize;
        let t = cpu.kernel_time_ns(n, &KernelProfile::axpy());
        let ideal = 24.0 * n as f64 / 30.0; // ns at 30 GB/s
        assert!((t - cpu.fork_join_overhead_ns - ideal).abs() / ideal < 1e-9);
    }

    #[test]
    fn compute_bound_profile_tracks_flops() {
        let cpu = CpuSpec::epyc_7742_rome();
        let hot = KernelProfile::new("hot", 1_000.0, 8.0, 0.0);
        let t = cpu.kernel_time_ns(1_000_000, &hot);
        let ideal = 1_000.0 * 1e6 / 80.0; // ns at 80 GFLOP/s
        assert!((t - cpu.fork_join_overhead_ns - ideal).abs() / ideal < 1e-9);
    }

    #[test]
    fn serial_core_is_slower_than_socket() {
        let one = CpuSpec::epyc_7742_single_core();
        let all = CpuSpec::epyc_7742_rome();
        let n = 10_000_000;
        assert!(
            one.kernel_time_ns(n, &KernelProfile::axpy())
                > all.kernel_time_ns(n, &KernelProfile::axpy())
        );
    }

    #[test]
    fn scaling_cores_scales_throughput() {
        let cpu = CpuSpec::epyc_7742_rome();
        let half = cpu.scaled_to_cores(32);
        assert_eq!(half.cores, 32);
        assert!((half.achieved_bw_bytes_per_sec - 15e9).abs() < 1.0);
        let n = 50_000_000;
        let t_full = cpu.kernel_time_ns(n, &KernelProfile::axpy());
        let t_half = half.kernel_time_ns(n, &KernelProfile::axpy());
        assert!(t_half > t_full * 1.8);
    }

    #[test]
    fn reduce_adds_tree_cost() {
        let cpu = CpuSpec::epyc_7742_rome();
        let t_for = cpu.kernel_time_ns(1000, &KernelProfile::dot());
        let t_red = cpu.reduce_time_ns(1000, &KernelProfile::dot());
        assert!(t_red > t_for);
        assert!(t_red - t_for < 1_000.0);
    }
}
