//! The front end's error type.

/// Errors surfaced by the RACC front end.
#[derive(Debug, Clone, PartialEq)]
pub enum RaccError {
    /// The backend could not satisfy an allocation (e.g. simulated device
    /// out of memory).
    Allocation(String),
    /// A requested backend is not compiled in or not recognized.
    BackendUnavailable(String),
    /// An array from one context was passed to another.
    WrongContext {
        /// Context the array belongs to.
        array_ctx: u64,
        /// Context that received the call.
        this_ctx: u64,
    },
    /// A shape/size mismatch in an array operation.
    ShapeMismatch(String),
    /// Invalid configuration (preferences, thread counts, ...).
    InvalidConfig(String),
    /// A device-side failure from a (simulated) accelerator runtime —
    /// invalid launch geometry, cross-device handles, bad copies. The
    /// simulator error types convert into this (or [`Allocation`] for
    /// out-of-memory) via `From`, so `?` unifies them.
    ///
    /// [`Allocation`]: RaccError::Allocation
    Device(String),
}

impl std::fmt::Display for RaccError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RaccError::Allocation(msg) => write!(f, "allocation failed: {msg}"),
            RaccError::BackendUnavailable(name) => {
                write!(f, "backend {name:?} is not available")
            }
            RaccError::WrongContext {
                array_ctx,
                this_ctx,
            } => write!(
                f,
                "array belongs to context {array_ctx}, not context {this_ctx}"
            ),
            RaccError::ShapeMismatch(msg) => write!(f, "shape mismatch: {msg}"),
            RaccError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            RaccError::Device(msg) => write!(f, "device error: {msg}"),
        }
    }
}

impl std::error::Error for RaccError {}

// A malformed `FaultPlan` script is a configuration problem, so `?`
// unifies `FaultPlan::parse` with the builder's error flow.
impl From<racc_chaos::ParseError> for RaccError {
    fn from(e: racc_chaos::ParseError) -> Self {
        RaccError::InvalidConfig(e.to_string())
    }
}
