//! Kernel cost descriptors.
//!
//! RACC's back ends model execution time analytically (see `DESIGN.md` §1),
//! so each construct invocation carries a [`KernelProfile`] describing the
//! per-iteration resource use of the kernel function. CPU back ends use the
//! byte/FLOP totals against the CPU machine model; simulated GPU back ends
//! map iterations onto SIMT threads and use the coalescing factor as well.
//!
//! Profiles have no effect on functional results — a wrong profile yields a
//! wrong *clock*, never a wrong *answer*.

/// Per-iteration resource usage of a kernel passed to `parallel_for` /
/// `parallel_reduce`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelProfile {
    /// Short kernel name for op logs and diagnostics.
    pub name: &'static str,
    /// Double-precision FLOPs per iteration.
    pub flops_per_iter: f64,
    /// Bytes read from array memory per iteration.
    pub bytes_read_per_iter: f64,
    /// Bytes written to array memory per iteration.
    pub bytes_written_per_iter: f64,
    /// GPU memory-coalescing factor in `[0, 1]`; 1 when iteration `i`
    /// touches addresses contiguous in `i` (ignored by CPU back ends).
    pub coalescing: f64,
    /// Whether this profile describes a *fused* launch: one construct
    /// standing in for a chain of elementwise statements (see `racc-fuse`).
    /// Fused launches carry the summed per-iteration figures of their
    /// statements and land on the `fused` trace lane instead of the plain
    /// kernel/reduction lanes. Purely observational — like the rest of the
    /// profile it never changes functional results.
    pub fused: bool,
}

impl KernelProfile {
    /// A named profile with explicit figures.
    pub const fn new(
        name: &'static str,
        flops_per_iter: f64,
        bytes_read_per_iter: f64,
        bytes_written_per_iter: f64,
    ) -> Self {
        KernelProfile {
            name,
            flops_per_iter,
            bytes_read_per_iter,
            bytes_written_per_iter,
            coalescing: 1.0,
            fused: false,
        }
    }

    /// Override the coalescing factor.
    pub const fn with_coalescing(mut self, coalescing: f64) -> Self {
        self.coalescing = coalescing;
        self
    }

    /// Mark this profile as describing a fused launch (`racc-fuse`).
    pub const fn as_fused(mut self) -> Self {
        self.fused = true;
        self
    }

    /// Total bytes moved per iteration.
    pub fn bytes_per_iter(&self) -> f64 {
        self.bytes_read_per_iter + self.bytes_written_per_iter
    }

    /// The BLAS-1 AXPY profile (`x[i] += alpha * y[i]`, f64): read x and y,
    /// write x; a multiply-add.
    pub const fn axpy() -> Self {
        KernelProfile::new("axpy", 2.0, 16.0, 8.0)
    }

    /// The BLAS-1 DOT map profile (`x[i] * y[i]`, f64): read x and y.
    pub const fn dot() -> Self {
        KernelProfile::new("dot", 2.0, 16.0, 0.0)
    }

    /// A generic element-wise copy (read 8, write 8).
    pub const fn copy() -> Self {
        KernelProfile::new("copy", 0.0, 8.0, 8.0)
    }

    /// An unspecified kernel: the conservative default (16 bytes moved, two
    /// FLOPs per iteration, coalesced).
    pub const fn unknown() -> Self {
        KernelProfile::new("unknown", 2.0, 8.0, 8.0)
    }
}

impl Default for KernelProfile {
    fn default() -> Self {
        KernelProfile::unknown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles() {
        assert_eq!(KernelProfile::axpy().bytes_per_iter(), 24.0);
        assert_eq!(KernelProfile::dot().bytes_per_iter(), 16.0);
        assert_eq!(KernelProfile::copy().flops_per_iter, 0.0);
        assert_eq!(KernelProfile::default(), KernelProfile::unknown());
        assert_eq!(KernelProfile::axpy().coalescing, 1.0);
    }

    #[test]
    fn coalescing_override() {
        let p = KernelProfile::axpy().with_coalescing(0.25);
        assert_eq!(p.coalescing, 0.25);
        assert_eq!(p.flops_per_iter, 2.0);
    }

    #[test]
    fn fused_flag() {
        assert!(!KernelProfile::axpy().fused);
        let p = KernelProfile::new("fused", 5.0, 40.0, 16.0).as_fused();
        assert!(p.fused);
        assert_eq!(p.bytes_per_iter(), 56.0);
    }
}
