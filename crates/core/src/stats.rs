//! Uniform runtime introspection: [`Context::stats`](crate::Context::stats).
//!
//! One [`RuntimeStats`] struct gathers what previously took three
//! per-subsystem probes — the fused-plan cache counters, the chaos fault
//! log, and the sanitizer report — so harnesses print one snapshot
//! instead of stitching getters.
//!
//! The plan cache itself lives in `racc-fuse` (the core crate knows
//! nothing about expression graphs), but its *counters* live here, in a
//! [`PlanCacheSlot`] owned by every context: the fusion layer parks its
//! cache in the slot's type-erased cell and bumps the shared counters, and
//! `ctx.stats()` reads them without a dependency edge from core to fuse.

use std::any::Any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::config::PlanCacheMode;

/// Shared hit/miss/evict counters of one context's plan cache. The fusion
/// layer increments; [`Context::stats`](crate::Context::stats) reads.
#[derive(Debug, Default)]
pub struct PlanCacheCounters {
    /// Evaluations served by a cached compiled program.
    pub hits: AtomicU64,
    /// Evaluations that had to plan + compile (includes cache-off mode).
    pub misses: AtomicU64,
    /// Cached programs dropped to make room at capacity.
    pub evictions: AtomicU64,
    /// Programs currently cached.
    pub entries: AtomicU64,
}

/// Per-context home of the fused-plan cache: the configured mode, the
/// counters `ctx.stats()` reports, and a type-erased cell the fusion
/// layer lazily parks its cache structure in.
#[derive(Debug)]
pub struct PlanCacheSlot {
    mode: PlanCacheMode,
    counters: Arc<PlanCacheCounters>,
    cell: OnceLock<Box<dyn Any + Send + Sync>>,
}

impl PlanCacheSlot {
    pub(crate) fn new(mode: PlanCacheMode) -> Self {
        PlanCacheSlot {
            mode,
            counters: Arc::new(PlanCacheCounters::default()),
            cell: OnceLock::new(),
        }
    }

    /// The configured cache mode (capacity or off).
    pub fn mode(&self) -> PlanCacheMode {
        self.mode
    }

    /// The counters this slot's cache reports through.
    pub fn counters(&self) -> &Arc<PlanCacheCounters> {
        &self.counters
    }

    /// Get or lazily create the cache structure parked in this slot.
    /// Called by `racc-fuse` with its `PlanCache` type; panics if two
    /// different types ever race for one slot (a wiring bug, not a user
    /// error).
    #[doc(hidden)]
    pub fn get_or_init<T, F>(&self, init: F) -> &T
    where
        T: Any + Send + Sync,
        F: FnOnce() -> T,
    {
        self.cell
            .get_or_init(|| Box::new(init()))
            .downcast_ref::<T>()
            .expect("plan-cache slot holds a different type")
    }
}

/// Plan-cache snapshot inside [`RuntimeStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Whether caching is enabled for this context.
    pub enabled: bool,
    /// Configured capacity (0 when off).
    pub capacity: usize,
    /// Programs currently cached.
    pub entries: usize,
    /// Evaluations served from the cache.
    pub hits: u64,
    /// Evaluations that planned + compiled.
    pub misses: u64,
    /// Programs evicted at capacity.
    pub evictions: u64,
}

impl PlanCacheStats {
    /// Hits over total lookups (0.0 before any evaluation).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Fault-injection summary inside [`RuntimeStats`], folded from the
/// backend's [`fault_log`](crate::Backend::fault_log).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Every fault injected so far.
    pub injected: u64,
    /// Faults that failed their operation (the retryable kind).
    pub failed: u64,
    /// Faults that only delayed their operation (latency spikes).
    pub delayed: u64,
}

/// Shared counters of the sharded multi-device runner (`racc-shard`).
/// The shard runner increments the counters of the per-rank context it
/// drives; [`Context::stats`](crate::Context::stats) reads them. Lives in
/// core for the same reason as [`PlanCacheCounters`]: `ctx.stats()` must
/// report them without a dependency edge from core to the shard layer.
#[derive(Debug, Default)]
pub struct ShardCounters {
    /// Completed sharded steps (committed, not counting replays).
    pub steps: AtomicU64,
    /// Halo exchanges completed (both sides of one step count once).
    pub halo_exchanges: AtomicU64,
    /// Ghost bytes moved by halo exchanges, both directions.
    pub halo_bytes: AtomicU64,
    /// Interior-phase kernel launches.
    pub interior_launches: AtomicU64,
    /// Boundary-phase kernel launches.
    pub boundary_launches: AtomicU64,
    /// Replicated checkpoints taken.
    pub checkpoints: AtomicU64,
    /// Reshard events survived (a peer died; the domain was re-split).
    pub reshards: AtomicU64,
    /// Steps replayed from a checkpoint after a reshard.
    pub replayed_steps: AtomicU64,
    /// Status heartbeats sent to ring neighbours (2 per step per rank at
    /// N >= 3 ranks, vs the N-1 of the old all-to-all exchange).
    pub heartbeats: AtomicU64,
}

/// Sharded-execution snapshot inside [`RuntimeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Committed sharded steps.
    pub steps: u64,
    /// Completed halo exchanges.
    pub halo_exchanges: u64,
    /// Ghost bytes moved, both directions.
    pub halo_bytes: u64,
    /// Interior-phase launches.
    pub interior_launches: u64,
    /// Boundary-phase launches.
    pub boundary_launches: u64,
    /// Replicated checkpoints taken.
    pub checkpoints: u64,
    /// Reshard events survived.
    pub reshards: u64,
    /// Steps replayed after reshards.
    pub replayed_steps: u64,
    /// Ring-heartbeat status messages sent.
    pub heartbeats: u64,
}

impl ShardStats {
    /// True when the context never ran under the shard runner.
    pub fn is_empty(&self) -> bool {
        *self == ShardStats::default()
    }
}

/// Shared counters of the multi-tenant serving layer (`racc-serve`). The
/// server bumps the counters of every pool context it dispatches onto (and
/// a pool-wide aggregate of its own); [`Context::stats`](crate::Context::stats)
/// reads them. Lives in core for the same reason as [`ShardCounters`]:
/// `ctx.stats()` must report them without a dependency edge from core to
/// the serving layer.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Jobs accepted past admission control.
    pub admitted: AtomicU64,
    /// Jobs shed at admission (tenant or global queue full).
    pub rejected: AtomicU64,
    /// Jobs that ran to completion and resolved their handle with `Ok`.
    pub completed: AtomicU64,
    /// Jobs that exhausted the degradation ladder and resolved with `Err`.
    pub failed: AtomicU64,
    /// Dispatch groups launched (a batch of 1 still counts).
    pub batches: AtomicU64,
    /// Jobs that rode a batch of size >= 2.
    pub batched_jobs: AtomicU64,
    /// Extra attempts spent retrying faulted jobs on their primary context.
    pub retried: AtomicU64,
    /// Jobs that had to fall back to the spare context to complete.
    pub fallbacks: AtomicU64,
    /// Scheduler passes that skipped an otherwise-ready tenant because its
    /// modeled in-flight cap was reached (weighted fairness held it back).
    pub preempted: AtomicU64,
}

/// Serving-layer snapshot inside [`RuntimeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Jobs accepted past admission control.
    pub admitted: u64,
    /// Jobs shed at admission.
    pub rejected: u64,
    /// Jobs completed with `Ok`.
    pub completed: u64,
    /// Jobs failed after the full degradation ladder.
    pub failed: u64,
    /// Dispatch groups launched.
    pub batches: u64,
    /// Jobs that rode a batch of size >= 2.
    pub batched_jobs: u64,
    /// Extra retry attempts.
    pub retried: u64,
    /// Jobs completed on the fallback context.
    pub fallbacks: u64,
    /// Tenant-cap scheduler skips.
    pub preempted: u64,
}

impl ServeStats {
    /// True when the context never served under `racc-serve`.
    pub fn is_empty(&self) -> bool {
        *self == ServeStats::default()
    }
}

/// Device-primitive counters (`racc-prim`), bumped through
/// [`Context::prim_counters`](crate::Context::prim_counters) by the
/// primitives layer. Lives in core so [`RuntimeStats`] can report it
/// without a dependency on the outer crate.
#[derive(Debug, Default)]
pub struct PrimCounters {
    /// Scan invocations (inclusive + exclusive).
    pub scans: AtomicU64,
    /// Histogram invocations (validated + unchecked).
    pub histograms: AtomicU64,
    /// `sort_by_key` / sort-permutation invocations.
    pub sorts: AtomicU64,
    /// Elements processed across all primitive invocations.
    pub elements: AtomicU64,
}

/// Device-primitive snapshot inside [`RuntimeStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrimStats {
    /// Scan invocations.
    pub scans: u64,
    /// Histogram invocations.
    pub histograms: u64,
    /// Sort invocations.
    pub sorts: u64,
    /// Elements processed across all primitive invocations.
    pub elements: u64,
}

impl PrimStats {
    /// True when the context never ran a device primitive.
    pub fn is_empty(&self) -> bool {
        *self == PrimStats::default()
    }
}

/// One uniform snapshot of a context's runtime machinery — plan cache,
/// chaos, sanitizer, work-stealing dispatch — returned by
/// [`Context::stats`](crate::Context::stats).
#[derive(Debug, Clone)]
pub struct RuntimeStats {
    /// Fused-plan cache counters.
    pub plan_cache: PlanCacheStats,
    /// Injected-fault counts (all zero when chaos is disarmed).
    pub faults: FaultStats,
    /// The backend's sanitizer report, when one is active.
    pub sanitizer: Option<String>,
    /// Work-stealing dispatch counters of the backend's thread pool
    /// (tasks executed/stolen/injected, splits, wakes, parks). `None` on
    /// back ends without a work-stealing engine.
    pub steal: Option<racc_threadpool::StealStats>,
    /// Sharded multi-device counters (`racc-shard`): steps, halo traffic,
    /// checkpoints, reshards. `None` when this context never ran under the
    /// shard runner.
    pub shard: Option<ShardStats>,
    /// Multi-tenant serving counters (`racc-serve`): admission, batching,
    /// retries, fallbacks. `None` when this context never served jobs.
    pub serve: Option<ServeStats>,
    /// Device-primitive counters (`racc-prim`): scans, histograms, sorts.
    /// `None` when this context never ran a primitive.
    pub prim: Option<PrimStats>,
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let pc = &self.plan_cache;
        if pc.enabled {
            write!(
                f,
                "plan-cache {}/{} entries, {} hits / {} misses ({:.0}% hit), {} evicted",
                pc.entries,
                pc.capacity,
                pc.hits,
                pc.misses,
                pc.hit_rate() * 100.0,
                pc.evictions
            )?;
        } else {
            write!(f, "plan-cache off ({} compiles)", pc.misses)?;
        }
        write!(
            f,
            "; faults {} ({} failed, {} delayed)",
            self.faults.injected, self.faults.failed, self.faults.delayed
        )?;
        match &self.sanitizer {
            Some(report) => write!(f, "; sanitizer: {}", report.lines().next().unwrap_or(""))?,
            None => write!(f, "; sanitizer off")?,
        }
        if let Some(steal) = &self.steal {
            write!(f, "; {steal}")?;
        }
        if let Some(sh) = &self.shard {
            write!(
                f,
                "; shard: {} steps, {} halos ({} B), {} ckpts, {} reshards ({} replayed)",
                sh.steps,
                sh.halo_exchanges,
                sh.halo_bytes,
                sh.checkpoints,
                sh.reshards,
                sh.replayed_steps
            )?;
        }
        if let Some(sv) = &self.serve {
            write!(
                f,
                "; serve: {} admitted ({} rejected), {} done / {} failed, {} batches ({} co-batched), {} retried, {} fell back, {} preempted",
                sv.admitted,
                sv.rejected,
                sv.completed,
                sv.failed,
                sv.batches,
                sv.batched_jobs,
                sv.retried,
                sv.fallbacks,
                sv.preempted
            )?;
        }
        if let Some(pr) = &self.prim {
            write!(
                f,
                "; prim: {} scans, {} histograms, {} sorts ({} elems)",
                pr.scans, pr.histograms, pr.sorts, pr.elements
            )?;
        }
        Ok(())
    }
}

pub(crate) fn snapshot_plan_cache(slot: &PlanCacheSlot) -> PlanCacheStats {
    let c = slot.counters();
    PlanCacheStats {
        enabled: !slot.mode().is_off(),
        capacity: slot.mode().capacity(),
        entries: c.entries.load(Ordering::Relaxed) as usize,
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
        evictions: c.evictions.load(Ordering::Relaxed),
    }
}

pub(crate) fn snapshot_shard(counters: &ShardCounters) -> Option<ShardStats> {
    let snap = ShardStats {
        steps: counters.steps.load(Ordering::Relaxed),
        halo_exchanges: counters.halo_exchanges.load(Ordering::Relaxed),
        halo_bytes: counters.halo_bytes.load(Ordering::Relaxed),
        interior_launches: counters.interior_launches.load(Ordering::Relaxed),
        boundary_launches: counters.boundary_launches.load(Ordering::Relaxed),
        checkpoints: counters.checkpoints.load(Ordering::Relaxed),
        reshards: counters.reshards.load(Ordering::Relaxed),
        replayed_steps: counters.replayed_steps.load(Ordering::Relaxed),
        heartbeats: counters.heartbeats.load(Ordering::Relaxed),
    };
    if snap.is_empty() {
        None
    } else {
        Some(snap)
    }
}

pub(crate) fn snapshot_serve(counters: &ServeCounters) -> Option<ServeStats> {
    let snap = ServeStats {
        admitted: counters.admitted.load(Ordering::Relaxed),
        rejected: counters.rejected.load(Ordering::Relaxed),
        completed: counters.completed.load(Ordering::Relaxed),
        failed: counters.failed.load(Ordering::Relaxed),
        batches: counters.batches.load(Ordering::Relaxed),
        batched_jobs: counters.batched_jobs.load(Ordering::Relaxed),
        retried: counters.retried.load(Ordering::Relaxed),
        fallbacks: counters.fallbacks.load(Ordering::Relaxed),
        preempted: counters.preempted.load(Ordering::Relaxed),
    };
    if snap.is_empty() {
        None
    } else {
        Some(snap)
    }
}

pub(crate) fn snapshot_prim(counters: &PrimCounters) -> Option<PrimStats> {
    let snap = PrimStats {
        scans: counters.scans.load(Ordering::Relaxed),
        histograms: counters.histograms.load(Ordering::Relaxed),
        sorts: counters.sorts.load(Ordering::Relaxed),
        elements: counters.elements.load(Ordering::Relaxed),
    };
    if snap.is_empty() {
        None
    } else {
        Some(snap)
    }
}

pub(crate) fn fold_faults(log: &[racc_chaos::FaultEvent]) -> FaultStats {
    let mut stats = FaultStats {
        injected: log.len() as u64,
        ..FaultStats::default()
    };
    for ev in log {
        match ev.action {
            racc_chaos::FaultAction::Fail => stats.failed += 1,
            racc_chaos::FaultAction::Delay(_) => stats.delayed += 1,
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use racc_chaos::{FaultAction, FaultEvent, FaultSite};

    #[test]
    fn hit_rate_handles_empty_and_mixed() {
        let mut s = PlanCacheStats {
            enabled: true,
            capacity: 32,
            entries: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        };
        assert_eq!(s.hit_rate(), 0.0);
        s.hits = 9;
        s.misses = 1;
        assert!((s.hit_rate() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn faults_fold_by_action() {
        let log = vec![
            FaultEvent {
                site: FaultSite::Alloc,
                occurrence: 1,
                action: FaultAction::Fail,
            },
            FaultEvent {
                site: FaultSite::Launch,
                occurrence: 3,
                action: FaultAction::Delay(100),
            },
            FaultEvent {
                site: FaultSite::D2h,
                occurrence: 2,
                action: FaultAction::Fail,
            },
        ];
        let f = fold_faults(&log);
        assert_eq!(f.injected, 3);
        assert_eq!(f.failed, 2);
        assert_eq!(f.delayed, 1);
    }

    #[test]
    fn display_is_one_line() {
        let stats = RuntimeStats {
            plan_cache: PlanCacheStats {
                enabled: true,
                capacity: 32,
                entries: 2,
                hits: 18,
                misses: 2,
                evictions: 0,
            },
            faults: FaultStats::default(),
            sanitizer: None,
            steal: None,
            shard: None,
            serve: None,
            prim: None,
        };
        let line = stats.to_string();
        assert!(line.contains("90% hit"), "{line}");
        assert!(!line.contains('\n'));
    }

    #[test]
    fn display_appends_steal_counters_when_present() {
        let stats = RuntimeStats {
            plan_cache: PlanCacheStats {
                enabled: false,
                capacity: 0,
                entries: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            },
            faults: FaultStats::default(),
            sanitizer: None,
            shard: Some(ShardStats {
                steps: 12,
                halo_exchanges: 24,
                halo_bytes: 4096,
                interior_launches: 12,
                boundary_launches: 12,
                checkpoints: 3,
                reshards: 1,
                replayed_steps: 4,
                heartbeats: 24,
            }),
            serve: Some(ServeStats {
                admitted: 40,
                rejected: 2,
                completed: 39,
                failed: 1,
                batches: 11,
                batched_jobs: 30,
                retried: 3,
                fallbacks: 1,
                preempted: 5,
            }),
            steal: Some(racc_threadpool::StealStats {
                participants: vec![racc_threadpool::StealCounters {
                    executed: 10,
                    stolen: 3,
                    injected: 1,
                    splits: 4,
                    wakes: 2,
                    parks: 2,
                }],
            }),
            prim: Some(PrimStats {
                scans: 4,
                histograms: 2,
                sorts: 1,
                elements: 7000,
            }),
        };
        let line = stats.to_string();
        assert!(line.contains("steal: executed 10 stolen 3"), "{line}");
        assert!(
            line.contains("prim: 4 scans, 2 histograms, 1 sorts (7000 elems)"),
            "{line}"
        );
        assert!(
            line.contains("shard: 12 steps, 24 halos (4096 B), 3 ckpts, 1 reshards (4 replayed)"),
            "{line}"
        );
        assert!(
            line.contains("serve: 40 admitted (2 rejected), 39 done / 1 failed"),
            "{line}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn prim_snapshot_is_none_until_any_counter_moves() {
        let counters = PrimCounters::default();
        assert!(snapshot_prim(&counters).is_none());
        counters.scans.fetch_add(2, Ordering::Relaxed);
        counters.elements.fetch_add(512, Ordering::Relaxed);
        let snap = snapshot_prim(&counters).expect("counters moved");
        assert_eq!(snap.scans, 2);
        assert_eq!(snap.elements, 512);
        assert!(!snap.is_empty());
    }

    #[test]
    fn serve_snapshot_is_none_until_any_counter_moves() {
        let counters = ServeCounters::default();
        assert!(snapshot_serve(&counters).is_none());
        counters.admitted.fetch_add(5, Ordering::Relaxed);
        counters.rejected.fetch_add(1, Ordering::Relaxed);
        let snap = snapshot_serve(&counters).expect("counters moved");
        assert_eq!(snap.admitted, 5);
        assert_eq!(snap.rejected, 1);
        assert!(!snap.is_empty());
    }

    #[test]
    fn shard_snapshot_is_none_until_any_counter_moves() {
        let counters = ShardCounters::default();
        assert!(snapshot_shard(&counters).is_none());
        counters.steps.fetch_add(2, Ordering::Relaxed);
        counters.halo_bytes.fetch_add(128, Ordering::Relaxed);
        let snap = snapshot_shard(&counters).expect("counters moved");
        assert_eq!(snap.steps, 2);
        assert_eq!(snap.halo_bytes, 128);
        assert!(!snap.is_empty());
    }
}
