//! Kernel-side array views.
//!
//! Views are the handles kernel closures capture (the paper passes the
//! arrays themselves as `parallel_for` arguments; in Rust the aliasing rules
//! make explicit view handles the honest equivalent). A [`View1`] is
//! read-only; a [`ViewMut1`] allows writes under the SIMT-style contract
//! that **distinct iterations write distinct elements** — dynamically
//! checkable with the `racecheck` feature.
//!
//! Views keep their array's storage alive (cheap `Arc` clone) and are
//! `Send + Sync`, so one closure can be executed by any backend.
//!
//! Multidimensional views are **column-major** (Julia layout): element
//! `(i, j)` of an `m × n` view lives at linear offset `j * m + i`.

use std::sync::Arc;

use crate::buffer::RawStorage;
use crate::scalar::AccScalar;

/// Cold, outlined bounds-failure paths: keeping the formatting machinery
/// out of the hot accessors lets LLVM optimize kernel loops (a formatted
/// `assert!` in `get`/`set` measurably slows bandwidth-bound kernels).
#[cold]
#[inline(never)]
fn oob_1d(i: usize, len: usize) -> ! {
    panic!("access {i} out of bounds (len {len})");
}

#[cold]
#[inline(never)]
fn oob_2d(i: usize, j: usize, m: usize, n: usize) -> ! {
    panic!("access ({i}, {j}) out of bounds ({m} x {n})");
}

#[cold]
#[inline(never)]
fn oob_3d(i: usize, j: usize, k: usize, m: usize, n: usize, l: usize) -> ! {
    panic!("access ({i}, {j}, {k}) out of bounds ({m} x {n} x {l})");
}

macro_rules! common_view_core {
    ($name:ident, $raw:ident) => {
        impl<T: AccScalar> Clone for $name<T> {
            fn clone(&self) -> Self {
                Self {
                    storage: Arc::clone(&self.storage),
                    ..*self
                }
            }
        }

        impl<T: AccScalar> std::fmt::Debug for $name<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name)).finish_non_exhaustive()
            }
        }

        // SAFETY: raw-pointer access under the disjoint-writes contract.
        unsafe impl<T: AccScalar> Send for $name<T> {}
        unsafe impl<T: AccScalar> Sync for $name<T> {}
    };
}

/// Read-only view of a 1D array.
pub struct View1<T: AccScalar> {
    storage: Arc<RawStorage<T>>,
    ptr: *const T,
    len: usize,
}
common_view_core!(View1, RawStorage);

impl<T: AccScalar> View1<T> {
    pub(crate) fn new(storage: &Arc<RawStorage<T>>) -> Self {
        View1 {
            ptr: storage.ptr() as *const T,
            len: storage.len(),
            storage: Arc::clone(storage),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounds-checked read.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        if i >= self.len {
            oob_1d(i, self.len);
        }
        #[cfg(feature = "racecheck")]
        crate::racecheck::record_read(self.ptr as usize, i);
        // SAFETY: bounds checked; storage alive via Arc.
        unsafe { *self.ptr.add(i) }
    }

    /// Unchecked read for kernels that pin every index in bounds up front
    /// (an assert outside the loop), where the per-access check would block
    /// vectorization. Under the `racecheck` feature the access is still
    /// bounds-checked and recorded — sanitizer builds trade the speed back
    /// for full coverage, so going unchecked never hides a race.
    ///
    /// # Safety
    /// `i < self.len()`.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        #[cfg(feature = "racecheck")]
        {
            if i >= self.len {
                oob_1d(i, self.len);
            }
            crate::racecheck::record_read(self.ptr as usize, i);
        }
        *self.ptr.add(i)
    }
}

/// Writable view of a 1D array (disjoint-writes contract).
pub struct ViewMut1<T: AccScalar> {
    storage: Arc<RawStorage<T>>,
    ptr: *mut T,
    len: usize,
}
common_view_core!(ViewMut1, RawStorage);

impl<T: AccScalar> ViewMut1<T> {
    pub(crate) fn new(storage: &Arc<RawStorage<T>>) -> Self {
        ViewMut1 {
            ptr: storage.ptr(),
            len: storage.len(),
            storage: Arc::clone(storage),
        }
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bounds-checked read.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        if i >= self.len {
            oob_1d(i, self.len);
        }
        #[cfg(feature = "racecheck")]
        crate::racecheck::record_read(self.ptr as usize, i);
        // SAFETY: bounds checked; storage alive via Arc.
        unsafe { *(self.ptr as *const T).add(i) }
    }

    /// Bounds-checked write.
    #[inline]
    pub fn set(&self, i: usize, value: T) {
        if i >= self.len {
            oob_1d(i, self.len);
        }
        #[cfg(feature = "racecheck")]
        crate::racecheck::record_write(self.ptr as usize, i);
        // SAFETY: bounds checked; the disjoint-writes contract gives this
        // iteration exclusive access to element i.
        unsafe { *self.ptr.add(i) = value };
    }

    /// Unchecked read — see [`View1::get_unchecked`] for the contract and
    /// the racecheck behavior.
    ///
    /// # Safety
    /// `i < self.len()`.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        #[cfg(feature = "racecheck")]
        {
            if i >= self.len {
                oob_1d(i, self.len);
            }
            crate::racecheck::record_read(self.ptr as usize, i);
        }
        *(self.ptr as *const T).add(i)
    }

    /// Unchecked write. Under the `racecheck` feature the access is still
    /// bounds-checked and recorded (see [`View1::get_unchecked`]).
    ///
    /// # Safety
    /// `i < self.len()` and element `i` is owned by this iteration.
    #[inline]
    pub unsafe fn set_unchecked(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        #[cfg(feature = "racecheck")]
        {
            if i >= self.len {
                oob_1d(i, self.len);
            }
            crate::racecheck::record_write(self.ptr as usize, i);
        }
        *self.ptr.add(i) = value;
    }
}

/// Read-only view of a 2D (column-major) array.
pub struct View2<T: AccScalar> {
    storage: Arc<RawStorage<T>>,
    ptr: *const T,
    m: usize,
    n: usize,
}
common_view_core!(View2, RawStorage);

impl<T: AccScalar> View2<T> {
    pub(crate) fn new(storage: &Arc<RawStorage<T>>, m: usize, n: usize) -> Self {
        debug_assert_eq!(storage.len(), m * n);
        View2 {
            ptr: storage.ptr() as *const T,
            m,
            n,
            storage: Arc::clone(storage),
        }
    }

    /// Row count (fast axis).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.m
    }

    /// Column count (slow axis).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.n
    }

    /// Bounds-checked read of element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        if i >= self.m || j >= self.n {
            oob_2d(i, j, self.m, self.n);
        }
        #[cfg(feature = "racecheck")]
        crate::racecheck::record_read(self.ptr as usize, j * self.m + i);
        // SAFETY: bounds checked.
        unsafe { *self.ptr.add(j * self.m + i) }
    }

    /// Unchecked read — see [`View1::get_unchecked`] for the contract and
    /// the racecheck behavior.
    ///
    /// # Safety
    /// `i < nrows() && j < ncols()`.
    #[inline]
    pub unsafe fn get_unchecked(&self, i: usize, j: usize) -> T {
        debug_assert!(i < self.m && j < self.n);
        #[cfg(feature = "racecheck")]
        {
            if i >= self.m || j >= self.n {
                oob_2d(i, j, self.m, self.n);
            }
            crate::racecheck::record_read(self.ptr as usize, j * self.m + i);
        }
        *self.ptr.add(j * self.m + i)
    }
}

/// Writable view of a 2D (column-major) array.
pub struct ViewMut2<T: AccScalar> {
    storage: Arc<RawStorage<T>>,
    ptr: *mut T,
    m: usize,
    n: usize,
}
common_view_core!(ViewMut2, RawStorage);

impl<T: AccScalar> ViewMut2<T> {
    pub(crate) fn new(storage: &Arc<RawStorage<T>>, m: usize, n: usize) -> Self {
        debug_assert_eq!(storage.len(), m * n);
        ViewMut2 {
            ptr: storage.ptr(),
            m,
            n,
            storage: Arc::clone(storage),
        }
    }

    /// Row count (fast axis).
    #[inline]
    pub fn nrows(&self) -> usize {
        self.m
    }

    /// Column count (slow axis).
    #[inline]
    pub fn ncols(&self) -> usize {
        self.n
    }

    /// Bounds-checked read.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        if i >= self.m || j >= self.n {
            oob_2d(i, j, self.m, self.n);
        }
        #[cfg(feature = "racecheck")]
        crate::racecheck::record_read(self.ptr as usize, j * self.m + i);
        // SAFETY: bounds checked.
        unsafe { *(self.ptr as *const T).add(j * self.m + i) }
    }

    /// Bounds-checked write.
    #[inline]
    pub fn set(&self, i: usize, j: usize, value: T) {
        if i >= self.m || j >= self.n {
            oob_2d(i, j, self.m, self.n);
        }
        #[cfg(feature = "racecheck")]
        crate::racecheck::record_write(self.ptr as usize, j * self.m + i);
        // SAFETY: bounds checked; disjoint-writes contract.
        unsafe { *self.ptr.add(j * self.m + i) = value };
    }
}

/// Read-only view of a 3D (column-major) array.
pub struct View3<T: AccScalar> {
    storage: Arc<RawStorage<T>>,
    ptr: *const T,
    m: usize,
    n: usize,
    l: usize,
}
common_view_core!(View3, RawStorage);

impl<T: AccScalar> View3<T> {
    pub(crate) fn new(storage: &Arc<RawStorage<T>>, m: usize, n: usize, l: usize) -> Self {
        debug_assert_eq!(storage.len(), m * n * l);
        View3 {
            ptr: storage.ptr() as *const T,
            m,
            n,
            l,
            storage: Arc::clone(storage),
        }
    }

    /// Extents `(m, n, l)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.m, self.n, self.l)
    }

    /// Bounds-checked read of element `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> T {
        if i >= self.m || j >= self.n || k >= self.l {
            oob_3d(i, j, k, self.m, self.n, self.l);
        }
        #[cfg(feature = "racecheck")]
        crate::racecheck::record_read(self.ptr as usize, (k * self.n + j) * self.m + i);
        // SAFETY: bounds checked.
        unsafe { *self.ptr.add((k * self.n + j) * self.m + i) }
    }
}

/// Writable view of a 3D (column-major) array.
pub struct ViewMut3<T: AccScalar> {
    storage: Arc<RawStorage<T>>,
    ptr: *mut T,
    m: usize,
    n: usize,
    l: usize,
}
common_view_core!(ViewMut3, RawStorage);

impl<T: AccScalar> ViewMut3<T> {
    pub(crate) fn new(storage: &Arc<RawStorage<T>>, m: usize, n: usize, l: usize) -> Self {
        debug_assert_eq!(storage.len(), m * n * l);
        ViewMut3 {
            ptr: storage.ptr(),
            m,
            n,
            l,
            storage: Arc::clone(storage),
        }
    }

    /// Extents `(m, n, l)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.m, self.n, self.l)
    }

    /// Bounds-checked read.
    #[inline]
    pub fn get(&self, i: usize, j: usize, k: usize) -> T {
        if i >= self.m || j >= self.n || k >= self.l {
            oob_3d(i, j, k, self.m, self.n, self.l);
        }
        #[cfg(feature = "racecheck")]
        crate::racecheck::record_read(self.ptr as usize, (k * self.n + j) * self.m + i);
        // SAFETY: bounds checked.
        unsafe { *(self.ptr as *const T).add((k * self.n + j) * self.m + i) }
    }

    /// Bounds-checked write.
    #[inline]
    pub fn set(&self, i: usize, j: usize, k: usize, value: T) {
        if i >= self.m || j >= self.n || k >= self.l {
            oob_3d(i, j, k, self.m, self.n, self.l);
        }
        #[cfg(feature = "racecheck")]
        crate::racecheck::record_write(self.ptr as usize, (k * self.n + j) * self.m + i);
        // SAFETY: bounds checked; disjoint-writes contract.
        unsafe { *self.ptr.add((k * self.n + j) * self.m + i) = value };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage_from(data: &[f64]) -> Arc<RawStorage<f64>> {
        Arc::new(RawStorage::from_slice(data))
    }

    #[test]
    fn view1_reads_and_writes() {
        let s = storage_from(&[1.0, 2.0, 3.0]);
        let r = View1::new(&s);
        let w = ViewMut1::new(&s);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        assert_eq!(r.get(1), 2.0);
        w.set(1, 9.0);
        assert_eq!(r.get(1), 9.0);
        assert_eq!(w.get(1), 9.0);
        let r2 = r.clone();
        assert_eq!(r2.get(2), 3.0);
    }

    #[test]
    fn view2_is_column_major() {
        // 2x3 matrix stored column-major: [a11 a21 a12 a22 a13 a23]
        let s = storage_from(&[11.0, 21.0, 12.0, 22.0, 13.0, 23.0]);
        let v = View2::new(&s, 2, 3);
        assert_eq!(v.nrows(), 2);
        assert_eq!(v.ncols(), 3);
        assert_eq!(v.get(0, 0), 11.0);
        assert_eq!(v.get(1, 0), 21.0);
        assert_eq!(v.get(0, 2), 13.0);
        assert_eq!(v.get(1, 2), 23.0);
        let w = ViewMut2::new(&s, 2, 3);
        w.set(1, 1, 99.0);
        assert_eq!(v.get(1, 1), 99.0);
        assert_eq!(View1::new(&s).get(3), 99.0, "(1,1) is linear offset 3");
    }

    #[test]
    fn view3_linearization() {
        let mnl = 2 * 3 * 4;
        let data: Vec<f64> = (0..mnl).map(|x| x as f64).collect();
        let s = storage_from(&data);
        let v = View3::new(&s, 2, 3, 4);
        assert_eq!(v.dims(), (2, 3, 4));
        for k in 0..4 {
            for j in 0..3 {
                for i in 0..2 {
                    assert_eq!(v.get(i, j, k), ((k * 3 + j) * 2 + i) as f64);
                }
            }
        }
        let w = ViewMut3::new(&s, 2, 3, 4);
        w.set(1, 2, 3, -1.0);
        assert_eq!(v.get(1, 2, 3), -1.0);
        assert_eq!(w.get(1, 2, 3), -1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view1_read_oob() {
        let s = storage_from(&[1.0]);
        View1::new(&s).get(1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view2_write_oob() {
        let s = storage_from(&[0.0; 6]);
        ViewMut2::new(&s, 2, 3).set(2, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view3_read_oob() {
        let s = storage_from(&[0.0; 24]);
        View3::new(&s, 2, 3, 4).get(0, 3, 0);
    }

    #[test]
    fn views_keep_storage_alive() {
        let s = storage_from(&[5.0]);
        let v = View1::new(&s);
        drop(s);
        assert_eq!(v.get(0), 5.0);
    }
}
