//! The serial (single-core) reference backend.
//!
//! Functionally the simplest possible implementation of the constructs; its
//! results define "correct" for the cross-backend equivalence tests, and its
//! machine model is a single core of the paper's CPU.

use crate::backend::{Backend, DeviceToken};
use crate::cpumodel::CpuSpec;
use crate::error::RaccError;
use crate::profile::KernelProfile;
use crate::scalar::{AccScalar, ReduceOp};
use crate::timeline::Timeline;

/// Single-threaded reference backend.
pub struct SerialBackend {
    cpu: CpuSpec,
    timeline: Timeline,
}

impl Default for SerialBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl SerialBackend {
    /// A serial backend modeling one core of the paper's EPYC 7742.
    pub fn new() -> Self {
        SerialBackend {
            cpu: CpuSpec::epyc_7742_single_core(),
            timeline: Timeline::new(),
        }
    }

    /// A serial backend with a custom CPU model.
    pub fn with_cpu(cpu: CpuSpec) -> Self {
        SerialBackend {
            cpu,
            timeline: Timeline::new(),
        }
    }

    /// The CPU model in use.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }

    /// Racecheck bookkeeping around a construct. Straight-line calls (not a
    /// closure wrapper): wrapping the hot loop in an immediately-invoked
    /// closure measurably blocks loop optimization.
    #[inline]
    fn begin_bracket(&self) {
        #[cfg(feature = "racecheck")]
        crate::racecheck::begin_launch();
    }

    #[inline]
    fn end_bracket(&self) {
        #[cfg(feature = "racecheck")]
        crate::racecheck::end_launch();
    }
}

#[cfg(feature = "racecheck")]
#[inline]
fn tag(iter: u64) {
    crate::racecheck::set_current_iteration(iter);
}

#[cfg(not(feature = "racecheck"))]
#[inline]
fn tag(_iter: u64) {}

impl Backend for SerialBackend {
    fn name(&self) -> String {
        format!("RACC Serial ({})", self.cpu.name)
    }

    fn key(&self) -> &'static str {
        "serial"
    }

    fn is_accelerator(&self) -> bool {
        false
    }

    fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    fn set_sanitizer(&self, _enabled: bool) -> bool {
        // The CPU half of simsan is the racecheck machinery with read
        // tracking switched on; it needs the `racecheck` feature compiled in.
        #[cfg(feature = "racecheck")]
        {
            crate::racecheck::set_enabled(_enabled);
            crate::racecheck::set_track_reads(_enabled);
            true
        }
        #[cfg(not(feature = "racecheck"))]
        false
    }

    fn on_alloc(&self, _bytes: usize, _upload: bool) -> Result<DeviceToken, RaccError> {
        // Host memory is the array's storage; no transfer, no token.
        #[cfg(feature = "trace")]
        self.timeline.record_span(|| {
            racc_trace::Span::new("serial", racc_trace::ConstructKind::Alloc, "alloc")
                .dims(0, 0, 0)
                .payload(_bytes as u64)
        });
        Ok(None)
    }

    fn on_download(&self, _bytes: usize) {}

    fn parallel_for_1d<F>(&self, n: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize) + Sync,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        for i in 0..n {
            tag(i as u64);
            f(i);
        }
        self.end_bracket();
        let ns = self.cpu.kernel_time_ns(n, profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "serial",
            racc_trace::ConstructKind::For1d,
            profile,
            [n as u64, 1, 1],
            1,
            t0,
            ns,
        );
    }

    fn parallel_for_2d<F>(&self, m: usize, n: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        // Column-major traversal: j outer, i inner.
        for j in 0..n {
            for i in 0..m {
                tag((j * m + i) as u64);
                f(i, j);
            }
        }
        self.end_bracket();
        let ns = self.cpu.kernel_time_ns(m * n, profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "serial",
            racc_trace::ConstructKind::For2d,
            profile,
            [m as u64, n as u64, 1],
            1,
            t0,
            ns,
        );
    }

    fn parallel_for_3d<F>(&self, m: usize, n: usize, l: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        for k in 0..l {
            for j in 0..n {
                for i in 0..m {
                    tag(((k * n + j) * m + i) as u64);
                    f(i, j, k);
                }
            }
        }
        self.end_bracket();
        let ns = self.cpu.kernel_time_ns(m * n * l, profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "serial",
            racc_trace::ConstructKind::For3d,
            profile,
            [m as u64, n as u64, l as u64],
            1,
            t0,
            ns,
        );
    }

    fn parallel_reduce_1d<T, F, O>(&self, n: usize, profile: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        // Order-preserving tiled fold: same combine association as the
        // naive loop (bit-reproducible), but a heavy `f` — e.g. a fused
        // matvec+dot row — can vectorize free of the `acc` chain.
        let acc = racc_threadpool::ordered_tiled_fold(
            op.identity(),
            0,
            n,
            &|i| {
                tag(i as u64);
                f(i)
            },
            &|a, b| op.combine(a, b),
        );
        self.end_bracket();
        let ns = self.cpu.reduce_time_ns(n, profile);
        self.timeline.charge_reduction(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "serial",
            racc_trace::ConstructKind::Reduce1d,
            profile,
            [n as u64, 1, 1],
            1,
            t0,
            ns,
        );
        acc
    }

    fn parallel_reduce_2d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        profile: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        let mut acc = op.identity();
        for j in 0..n {
            for i in 0..m {
                tag((j * m + i) as u64);
                acc = op.combine(acc, f(i, j));
            }
        }
        self.end_bracket();
        let ns = self.cpu.reduce_time_ns(m * n, profile);
        self.timeline.charge_reduction(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "serial",
            racc_trace::ConstructKind::Reduce2d,
            profile,
            [m as u64, n as u64, 1],
            1,
            t0,
            ns,
        );
        acc
    }

    fn parallel_reduce_3d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        profile: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        let mut acc = op.identity();
        for k in 0..l {
            for j in 0..n {
                for i in 0..m {
                    tag(((k * n + j) * m + i) as u64);
                    acc = op.combine(acc, f(i, j, k));
                }
            }
        }
        self.end_bracket();
        let ns = self.cpu.reduce_time_ns(m * n * l, profile);
        self.timeline.charge_reduction(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "serial",
            racc_trace::ConstructKind::Reduce3d,
            profile,
            [m as u64, n as u64, l as u64],
            1,
            t0,
            ns,
        );
        acc
    }

    fn prim_scan_1d<T, F, W, O>(
        &self,
        n: usize,
        inclusive: bool,
        profile: &KernelProfile,
        read: F,
        write: W,
        op: O,
    ) where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        W: Fn(usize, T) + Sync,
        O: ReduceOp<T>,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        // The canonical two-level association *is* the reference the other
        // backends are pinned against (see `crate::prim`).
        crate::prim::scan_canonical(
            n,
            inclusive,
            &|i| {
                tag(i as u64);
                read(i)
            },
            &write,
            op,
        );
        self.end_bracket();
        // Two sweeps over the data: tile totals, then the output pass.
        let ns = self.cpu.kernel_time_ns(2 * n, profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "serial",
            racc_trace::ConstructKind::Prim,
            profile,
            [n as u64, 1, 1],
            1,
            t0,
            ns,
        );
    }

    fn prim_histogram_1d<F, W>(
        &self,
        n: usize,
        bins: usize,
        profile: &KernelProfile,
        key: F,
        write: W,
    ) where
        F: Fn(usize) -> usize + Sync,
        W: Fn(usize, u64) + Sync,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        crate::prim::histogram_canonical(
            n,
            bins,
            &|i| {
                tag(i as u64);
                key(i)
            },
            &write,
        );
        self.end_bracket();
        let ns = self.cpu.kernel_time_ns(n + bins, profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "serial",
            racc_trace::ConstructKind::Prim,
            profile,
            [n as u64, bins as u64, 1],
            1,
            t0,
            ns,
        );
    }

    fn prim_sort_pairs_1d<F, W>(
        &self,
        n: usize,
        key_bits: u32,
        profile: &KernelProfile,
        key: F,
        write: W,
    ) where
        F: Fn(usize) -> u64 + Sync,
        W: Fn(usize, usize) + Sync,
    {
        #[cfg(not(feature = "trace"))]
        let _ = key_bits;
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        crate::prim::sort_pairs_canonical(
            n,
            &|i| {
                tag(i as u64);
                key(i)
            },
            &write,
        );
        self.end_bracket();
        // Comparison sort on one core: n log2 n element visits.
        let log_n = usize::BITS - n.max(1).leading_zeros();
        let ns = self
            .cpu
            .kernel_time_ns(n * (log_n as usize).max(1), profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "serial",
            racc_trace::ConstructKind::Prim,
            profile,
            [n as u64, key_bits as u64, 1],
            1,
            t0,
            ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{Max, Sum};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_visits_in_order() {
        let b = SerialBackend::new();
        let order = parking_lot::Mutex::new(Vec::new());
        b.parallel_for_1d(5, &KernelProfile::unknown(), |i| order.lock().push(i));
        assert_eq!(*order.lock(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn two_d_traversal_is_column_major() {
        let b = SerialBackend::new();
        let order = parking_lot::Mutex::new(Vec::new());
        b.parallel_for_2d(2, 2, &KernelProfile::unknown(), |i, j| {
            order.lock().push((i, j))
        });
        assert_eq!(*order.lock(), vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn reductions_match_folds() {
        let b = SerialBackend::new();
        let s: u64 = b.parallel_reduce_1d(100, &KernelProfile::dot(), |i| i as u64, Sum);
        assert_eq!(s, 4950);
        let m: i64 =
            b.parallel_reduce_2d(10, 10, &KernelProfile::dot(), |i, j| (i * j) as i64, Max);
        assert_eq!(m, 81);
        let c = AtomicUsize::new(0);
        let s3: usize = b.parallel_reduce_3d(
            3,
            4,
            5,
            &KernelProfile::dot(),
            |_, _, _| {
                c.fetch_add(1, Ordering::Relaxed);
                1usize
            },
            Sum,
        );
        assert_eq!(s3, 60);
        assert_eq!(c.load(Ordering::Relaxed), 60);
    }

    #[test]
    fn timeline_charges_accumulate() {
        let b = SerialBackend::new();
        b.parallel_for_1d(1_000_000, &KernelProfile::axpy(), |_| {});
        let s1 = b.timeline().snapshot();
        assert_eq!(s1.launches, 1);
        assert!(s1.modeled_ns > 0);
        let _: f64 = b.parallel_reduce_1d(1_000_000, &KernelProfile::dot(), |_| 1.0, Sum);
        let s2 = b.timeline().snapshot();
        assert_eq!(s2.reductions, 1);
        assert!(s2.modeled_ns > s1.modeled_ns);
    }

    #[test]
    fn identity_and_key() {
        let b = SerialBackend::new();
        assert_eq!(b.key(), "serial");
        assert!(!b.is_accelerator());
        assert!(b.name().contains("Serial"));
        assert!(b.on_alloc(1024, true).unwrap().is_none());
    }
}
