//! The back-end abstraction.
//!
//! A [`Backend`] supplies the execution and memory-modeling strategy behind
//! the front-end constructs. Implementations in this workspace:
//!
//! | backend | crate | JACC analog |
//! |---|---|---|
//! | [`crate::SerialBackend`]  | racc-core | (baseline) |
//! | [`crate::ThreadsBackend`] | racc-core | `Base.Threads` |
//! | `CudaBackend`             | racc-backend-cuda | `CUDA.jl` |
//! | `HipBackend`              | racc-backend-hip | `AMDGPU.jl` |
//! | `OneApiBackend`           | racc-backend-oneapi | `oneAPI.jl` |
//!
//! The trait's kernel methods are generic (monomorphized per kernel), so the
//! portability layer adds no virtual dispatch on the hot path — the property
//! the paper's overhead study is about. Runtime backend selection happens by
//! enum dispatch in the `racc` crate.

use std::any::Any;
use std::sync::Arc;

use crate::error::RaccError;
use crate::profile::KernelProfile;
use crate::scalar::{AccScalar, ReduceOp};
use crate::timeline::Timeline;

/// Opaque residency marker a backend attaches to an array. Accelerator back
/// ends use it to hold (and release, on drop) modeled device memory; CPU
/// back ends return `None`.
pub type DeviceToken = Option<Arc<dyn Any + Send + Sync>>;

/// A RACC execution back end. See the module docs.
///
/// Contract for the kernel methods:
/// * every index in the range is invoked **exactly once**;
/// * the call is **synchronous** — all invocations complete before return;
/// * `f` may be invoked concurrently for different indices;
/// * the backend charges its [`Timeline`] with the modeled duration.
pub trait Backend: Send + Sync + 'static {
    /// Human-readable name, e.g. `"RACC Threads (64 cores)"`.
    fn name(&self) -> String;

    /// Short key used in preferences and tables: `"serial"`, `"threads"`,
    /// `"cudasim"`, `"hipsim"`, `"oneapisim"`.
    fn key(&self) -> &'static str;

    /// True for (simulated) accelerator back ends, which have a distinct
    /// memory space.
    fn is_accelerator(&self) -> bool;

    /// The modeled-time accounting for this backend instance.
    fn timeline(&self) -> &Timeline;

    /// Attach a span recorder; every subsequent construct deposits one
    /// `racc-trace` span. The default installs it into the backend's
    /// [`Timeline`]; backends with internal execution engines (the thread
    /// pool) override this to propagate the recorder further.
    #[cfg(feature = "trace")]
    fn attach_tracer(&self, recorder: &Arc<racc_trace::TraceRecorder>) {
        self.timeline().install_tracer(Arc::clone(recorder));
    }

    /// Enable or disable the backend's dynamic sanitizer (`simsan`):
    /// out-of-bounds, use-after-free, read-write race, barrier-divergence,
    /// and leak checking, in the spirit of `compute-sanitizer`. Returns
    /// `true` when the backend supports sanitizing; the default
    /// implementation is an unsupported no-op.
    fn set_sanitizer(&self, _enabled: bool) -> bool {
        false
    }

    /// Human-readable sanitizer findings (leaks outstanding, checks
    /// performed). `None` when the sanitizer is unsupported or disabled.
    fn sanitizer_report(&self) -> Option<String> {
        None
    }

    /// Work-stealing dispatch counters (tasks executed/stolen/injected,
    /// splits, wakes, parks) of the backend's execution engine. `None` on
    /// back ends without a work-stealing pool — the default; the Threads
    /// backend (and the simulated accelerators, whose worker grids run on
    /// the same pool) return a snapshot.
    fn steal_stats(&self) -> Option<racc_threadpool::StealStats> {
        None
    }

    /// Arm deterministic fault injection (`racc-chaos`) on the backend's
    /// device with a fresh engine for `plan`. Returns `true` when the
    /// backend supports injection (the simulated accelerators); the
    /// default is an unsupported no-op — CPU backends have no driver
    /// surface to fault.
    fn set_chaos(&self, _plan: racc_chaos::FaultPlan) -> bool {
        false
    }

    /// Set the retry policy applied to transient device faults (injected
    /// faults, out-of-memory). Returns `true` when the backend honors it.
    fn set_retry(&self, _policy: racc_chaos::RetryPolicy) -> bool {
        false
    }

    /// Every fault injected on this backend so far, in injection order.
    /// Empty when chaos is unsupported or disarmed.
    fn fault_log(&self) -> Vec<racc_chaos::FaultEvent> {
        Vec::new()
    }

    /// Probe that the backend can do real work right now: a tiny
    /// alloc + launch + readback round trip on accelerators (which runs
    /// through the active fault schedule and retry policy). The
    /// graceful-degradation path uses this to decide whether to fall back
    /// to a CPU backend. CPU backends trivially pass.
    fn self_check(&self) -> Result<(), RaccError> {
        Ok(())
    }

    /// Model an array allocation of `bytes` (with an upload of the initial
    /// contents when `upload`), returning a residency token the array holds.
    fn on_alloc(&self, bytes: usize, upload: bool) -> Result<DeviceToken, RaccError>;

    /// Model a download of `bytes` back to the host (`to_host`).
    fn on_download(&self, bytes: usize);

    /// `parallel_for(n, f)` over `i in 0..n`.
    fn parallel_for_1d<F>(&self, n: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize) + Sync;

    /// `parallel_for((m, n), f)` over `0..m × 0..n` (i fast, column-major).
    fn parallel_for_2d<F>(&self, m: usize, n: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize, usize) + Sync;

    /// `parallel_for((m, n, l), f)` over a 3D range.
    fn parallel_for_3d<F>(&self, m: usize, n: usize, l: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize, usize, usize) + Sync;

    /// `parallel_reduce(n, f)` with reduction operator `op`.
    fn parallel_reduce_1d<T, F, O>(&self, n: usize, profile: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        O: ReduceOp<T>;

    /// 2D reduction.
    fn parallel_reduce_2d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        profile: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize) -> T + Sync,
        O: ReduceOp<T>;

    /// 3D reduction.
    fn parallel_reduce_3d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        profile: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize, usize) -> T + Sync,
        O: ReduceOp<T>;

    /// Portable scan primitive: writes the inclusive (or exclusive) scan of
    /// `read(0..n)` under `op` through `write(i, value)`, following the
    /// canonical two-level tiling of [`crate::prim`] exactly — results are
    /// bit-identical across backends and run-to-run. `n == 0` writes
    /// nothing. The default implementation runs the canonical sequential
    /// reference (correct on any backend, no modeled-cost realism);
    /// shipped backends override it with parallel implementations of the
    /// same association.
    fn prim_scan_1d<T, F, W, O>(
        &self,
        n: usize,
        inclusive: bool,
        profile: &KernelProfile,
        read: F,
        write: W,
        op: O,
    ) where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        W: Fn(usize, T) + Sync,
        O: ReduceOp<T>,
    {
        #[cfg(not(feature = "trace"))]
        let _ = profile;
        #[cfg(feature = "trace")]
        let t0 = self.timeline().trace_start();
        crate::prim::scan_canonical(n, inclusive, &read, &write, op);
        #[cfg(feature = "trace")]
        self.timeline().record_cpu_construct(
            self.key(),
            racc_trace::ConstructKind::Prim,
            profile,
            [n as u64, 1, 1],
            1,
            t0,
            0.0,
        );
    }

    /// Portable histogram primitive: counts `key(i)` for `i in 0..n` into
    /// `bins` buckets and writes **every** bin's `u64` count (zeros
    /// included) through `write(bin, count)`. The caller guarantees
    /// `key(i) < bins`; out-of-range keys are library-level UB that the
    /// simulators' bounds checks / simsan turn into a panic (the validated
    /// `racc-prim` wrapper reports them as a typed error first).
    fn prim_histogram_1d<F, W>(
        &self,
        n: usize,
        bins: usize,
        profile: &KernelProfile,
        key: F,
        write: W,
    ) where
        F: Fn(usize) -> usize + Sync,
        W: Fn(usize, u64) + Sync,
    {
        #[cfg(not(feature = "trace"))]
        let _ = profile;
        #[cfg(feature = "trace")]
        let t0 = self.timeline().trace_start();
        crate::prim::histogram_canonical(n, bins, &key, &write);
        #[cfg(feature = "trace")]
        self.timeline().record_cpu_construct(
            self.key(),
            racc_trace::ConstructKind::Prim,
            profile,
            [n as u64, bins as u64, 1],
            1,
            t0,
            0.0,
        );
    }

    /// Portable sort primitive: stable ascending sort of the order-encoded
    /// `key(i)` bits (ties toward the smaller index), reporting the
    /// permutation through `write(rank, original_index)` for `rank in
    /// 0..n`. `key_bits` bounds the significant low bits of every key (the
    /// simulators size their radix passes from it). The output permutation
    /// is unique, so every backend agrees exactly.
    fn prim_sort_pairs_1d<F, W>(
        &self,
        n: usize,
        key_bits: u32,
        profile: &KernelProfile,
        key: F,
        write: W,
    ) where
        F: Fn(usize) -> u64 + Sync,
        W: Fn(usize, usize) + Sync,
    {
        #[cfg(not(feature = "trace"))]
        let _ = (profile, key_bits);
        #[cfg(feature = "trace")]
        let t0 = self.timeline().trace_start();
        crate::prim::sort_pairs_canonical(n, &key, &write);
        #[cfg(feature = "trace")]
        self.timeline().record_cpu_construct(
            self.key(),
            racc_trace::ConstructKind::Prim,
            profile,
            [n as u64, key_bits as u64, 1],
            1,
            t0,
            0.0,
        );
    }
}
