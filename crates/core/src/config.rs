//! Typed runtime configuration, parsed from the environment **once** per
//! [`Context`](crate::Context) construction.
//!
//! Before this module each subsystem consulted its own knob ad hoc —
//! `racc_chaos::env_flag("RACC_FUSION")` in the context, a second
//! `RACC_SANITIZER` probe inside the simulator device, a third
//! `FaultPlan::from_env()` call for chaos — which made it easy for a new
//! knob to invent its own truthiness rules. [`RuntimeConfig::from_env`]
//! now parses every `RACC_*` knob in one place with one shared falsy set
//! (`""`, `"0"`, `"false"`, `"off"`, the [`racc_chaos::env_flag`]
//! semantics), and `Context::new` consumes the result.
//!
//! One knob is deliberately *not applied* here: `RACC_SANITIZER` is
//! honored by the simulator devices at device-creation time (before the
//! `Context` exists), and [`ContextBuilder::sanitizer`] overrides run
//! before `Context::new` too. The parsed value is still carried in
//! [`RuntimeConfig::sanitizer`] so callers (e.g. `ctx.stats()` consumers)
//! can see what the environment requested without re-probing.
//!
//! [`ContextBuilder::sanitizer`]: crate::ContextBuilder::sanitizer

use racc_chaos::FaultPlan;

/// Default number of compiled fused programs retained per context when
/// `RACC_PLAN_CACHE` is unset.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 32;

/// The plan-cache knob: how many compiled fused programs a context
/// retains, or off entirely (`RACC_PLAN_CACHE=off` — every evaluation
/// replans, which is the pre-cache behavior and useful for A/B runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanCacheMode {
    /// Retain up to this many compiled programs (LRU beyond it).
    Capacity(usize),
    /// Never cache: every evaluation plans and compiles from scratch.
    Off,
}

impl PlanCacheMode {
    /// Entries the cache may hold (0 when off or `Capacity(0)`).
    pub fn capacity(self) -> usize {
        match self {
            PlanCacheMode::Capacity(n) => n,
            PlanCacheMode::Off => 0,
        }
    }

    /// True when caching is disabled (off, or a zero capacity).
    pub fn is_off(self) -> bool {
        self.capacity() == 0
    }
}

impl Default for PlanCacheMode {
    fn default() -> Self {
        PlanCacheMode::Capacity(DEFAULT_PLAN_CACHE_CAPACITY)
    }
}

/// Every environment knob the runtime honors, parsed once.
#[derive(Debug, Clone, Default)]
pub struct RuntimeConfig {
    /// `RACC_FUSION` — advisory fused fast paths (see
    /// [`Context::fusion_enabled`](crate::Context::fusion_enabled)).
    pub fusion: bool,
    /// `RACC_SANITIZER` — what the environment requested. Applied by the
    /// simulator devices at creation, **not** re-applied by the context
    /// (see the module docs).
    pub sanitizer: bool,
    /// `RACC_CHAOS` — the fault plan, when armed with a valid spec.
    pub chaos: Option<FaultPlan>,
    /// `RACC_PLAN_CACHE` — plan-cache capacity or off.
    pub plan_cache: PlanCacheMode,
    /// `RACC_GRAIN` — work-stealing tile grain override for
    /// `Schedule::Dynamic { chunk: 0 }` launches (iterations per tile).
    /// `None` when unset or unparsable; the thread pool reads the same
    /// knob itself (`racc_threadpool::parse_grain`), this copy is for
    /// introspection.
    pub grain: Option<usize>,
    /// `RACC_SHARDS` — default simulated-device count for the sharded
    /// runner (`racc-shard`) when the caller does not pick one. `None`
    /// when unset, zero, or unparsable.
    pub shards: Option<usize>,
    /// `RACC_SHARD_OVERLAP` — whether the sharded runner overlaps halo
    /// exchange with interior compute on the modeled clock. `None` when
    /// unset (the runner defaults to overlapping); `Some(false)` is the
    /// A/B switch the scaling tables use.
    pub shard_overlap: Option<bool>,
    /// `RACC_SERVE_DEVICES` — default pool width for the serving layer
    /// (`racc-serve`) when the caller does not pick one. `None` when
    /// unset, zero, or unparsable.
    pub serve_devices: Option<usize>,
    /// `RACC_SERVE_BATCH` — cap on how many queued same-shape jobs the
    /// server dispatches as one group. `None` when unset, zero, or
    /// unparsable (the server defaults to 8).
    pub serve_batch: Option<usize>,
    /// `RACC_SERVE_QUEUE` — global submission-queue bound for the serving
    /// layer's admission control. `None` when unset, zero, or unparsable
    /// (the server defaults to 256).
    pub serve_queue: Option<usize>,
}

impl RuntimeConfig {
    /// Parse every knob from the process environment.
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var(name).ok())
    }

    /// Parse from an arbitrary lookup function — the testable core of
    /// [`RuntimeConfig::from_env`], so the falsy-string tests below never
    /// mutate process-global environment state.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        RuntimeConfig {
            fusion: truthy(lookup("RACC_FUSION").as_deref()),
            sanitizer: truthy(lookup("RACC_SANITIZER").as_deref()),
            chaos: lookup("RACC_CHAOS")
                .as_deref()
                .filter(|raw| truthy(Some(raw)))
                .and_then(|raw| FaultPlan::parse(raw).ok()),
            plan_cache: parse_plan_cache(lookup("RACC_PLAN_CACHE").as_deref()),
            grain: racc_threadpool::parse_grain(lookup("RACC_GRAIN").as_deref()),
            shards: parse_positive(lookup("RACC_SHARDS").as_deref()),
            shard_overlap: lookup("RACC_SHARD_OVERLAP")
                .as_deref()
                .map(|v| truthy(Some(v))),
            serve_devices: parse_positive(lookup("RACC_SERVE_DEVICES").as_deref()),
            serve_batch: parse_positive(lookup("RACC_SERVE_BATCH").as_deref()),
            serve_queue: parse_positive(lookup("RACC_SERVE_QUEUE").as_deref()),
        }
    }
}

/// A positive integer, or `None` for unset/zero/garbage (a bad knob must
/// never panic a working program).
fn parse_positive(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
}

/// The shared truthy rule: set and not one of the falsy strings. Matches
/// [`racc_chaos::env_flag`] exactly.
fn truthy(value: Option<&str>) -> bool {
    match value {
        Some(v) => !matches!(v.trim(), "" | "0" | "false" | "off"),
        None => false,
    }
}

/// `RACC_PLAN_CACHE`: unset → the default capacity; a falsy string or
/// `"off"` → off; a number → that capacity. Anything unparsable keeps the
/// default (a bad knob should never turn a working program off).
fn parse_plan_cache(value: Option<&str>) -> PlanCacheMode {
    match value {
        None => PlanCacheMode::default(),
        Some(v) if !truthy(Some(v)) => PlanCacheMode::Off,
        Some(v) => match v.trim().parse::<usize>() {
            Ok(0) => PlanCacheMode::Off,
            Ok(n) => PlanCacheMode::Capacity(n),
            Err(_) => PlanCacheMode::default(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn cfg(vars: &[(&str, &str)]) -> RuntimeConfig {
        let map: HashMap<String, String> = vars
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        RuntimeConfig::from_lookup(|name| map.get(name).cloned())
    }

    #[test]
    fn unset_environment_is_all_defaults() {
        let c = cfg(&[]);
        assert!(!c.fusion);
        assert!(!c.sanitizer);
        assert!(c.chaos.is_none());
        assert_eq!(
            c.plan_cache,
            PlanCacheMode::Capacity(DEFAULT_PLAN_CACHE_CAPACITY)
        );
    }

    #[test]
    fn falsy_strings_disable_every_knob() {
        for falsy in ["", "0", "false", "off", " off ", " 0 "] {
            let c = cfg(&[
                ("RACC_FUSION", falsy),
                ("RACC_SANITIZER", falsy),
                ("RACC_CHAOS", falsy),
                ("RACC_PLAN_CACHE", falsy),
            ]);
            assert!(!c.fusion, "RACC_FUSION={falsy:?}");
            assert!(!c.sanitizer, "RACC_SANITIZER={falsy:?}");
            assert!(c.chaos.is_none(), "RACC_CHAOS={falsy:?}");
            assert_eq!(
                c.plan_cache,
                PlanCacheMode::Off,
                "RACC_PLAN_CACHE={falsy:?}"
            );
        }
    }

    #[test]
    fn truthy_strings_enable_the_flags() {
        for on in ["1", "true", "on", "yes"] {
            let c = cfg(&[("RACC_FUSION", on), ("RACC_SANITIZER", on)]);
            assert!(c.fusion, "RACC_FUSION={on:?}");
            assert!(c.sanitizer, "RACC_SANITIZER={on:?}");
        }
    }

    #[test]
    fn grain_parses_positive_integers_only() {
        assert_eq!(cfg(&[]).grain, None);
        assert_eq!(cfg(&[("RACC_GRAIN", "64")]).grain, Some(64));
        assert_eq!(cfg(&[("RACC_GRAIN", " 8 ")]).grain, Some(8));
        assert_eq!(cfg(&[("RACC_GRAIN", "0")]).grain, None);
        assert_eq!(cfg(&[("RACC_GRAIN", "-3")]).grain, None);
        assert_eq!(cfg(&[("RACC_GRAIN", "coarse")]).grain, None);
    }

    #[test]
    fn shard_knobs_parse_counts_and_tristate_overlap() {
        assert_eq!(cfg(&[]).shards, None);
        assert_eq!(cfg(&[("RACC_SHARDS", "4")]).shards, Some(4));
        assert_eq!(cfg(&[("RACC_SHARDS", " 8 ")]).shards, Some(8));
        assert_eq!(cfg(&[("RACC_SHARDS", "0")]).shards, None);
        assert_eq!(cfg(&[("RACC_SHARDS", "lots")]).shards, None);
        assert_eq!(cfg(&[]).shard_overlap, None);
        assert_eq!(
            cfg(&[("RACC_SHARD_OVERLAP", "1")]).shard_overlap,
            Some(true)
        );
        assert_eq!(
            cfg(&[("RACC_SHARD_OVERLAP", "off")]).shard_overlap,
            Some(false)
        );
    }

    #[test]
    fn serve_knobs_parse_positive_integers_only() {
        let c = cfg(&[]);
        assert_eq!(c.serve_devices, None);
        assert_eq!(c.serve_batch, None);
        assert_eq!(c.serve_queue, None);
        let c = cfg(&[
            ("RACC_SERVE_DEVICES", "4"),
            ("RACC_SERVE_BATCH", " 16 "),
            ("RACC_SERVE_QUEUE", "512"),
        ]);
        assert_eq!(c.serve_devices, Some(4));
        assert_eq!(c.serve_batch, Some(16));
        assert_eq!(c.serve_queue, Some(512));
        let c = cfg(&[
            ("RACC_SERVE_DEVICES", "0"),
            ("RACC_SERVE_BATCH", "-2"),
            ("RACC_SERVE_QUEUE", "plenty"),
        ]);
        assert_eq!(c.serve_devices, None);
        assert_eq!(c.serve_batch, None);
        assert_eq!(c.serve_queue, None);
    }

    #[test]
    fn chaos_parses_seeds_scripts_and_tolerates_garbage() {
        assert_eq!(
            cfg(&[("RACC_CHAOS", "77")]).chaos,
            Some(FaultPlan::seeded(77))
        );
        assert!(matches!(
            cfg(&[("RACC_CHAOS", "d2h:nth-1")]).chaos,
            Some(FaultPlan::Script(_))
        ));
        assert_eq!(cfg(&[("RACC_CHAOS", "not-a-plan!")]).chaos, None);
    }

    #[test]
    fn plan_cache_capacity_off_and_garbage() {
        assert_eq!(
            cfg(&[("RACC_PLAN_CACHE", "4")]).plan_cache,
            PlanCacheMode::Capacity(4)
        );
        assert_eq!(
            cfg(&[("RACC_PLAN_CACHE", "0")]).plan_cache,
            PlanCacheMode::Off
        );
        assert_eq!(
            cfg(&[("RACC_PLAN_CACHE", "off")]).plan_cache,
            PlanCacheMode::Off
        );
        // Unparsable keeps the default rather than disabling the cache.
        assert_eq!(
            cfg(&[("RACC_PLAN_CACHE", "many")]).plan_cache,
            PlanCacheMode::default()
        );
        assert!(PlanCacheMode::Off.is_off());
        assert!(PlanCacheMode::Capacity(0).is_off());
        assert_eq!(PlanCacheMode::Capacity(7).capacity(), 7);
    }
}
