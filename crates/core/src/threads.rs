//! The Threads backend — RACC's analog of JACC's default `Base.Threads`
//! back end.
//!
//! Execution really is parallel (on `racc-threadpool`), with the coarse-
//! grain, column-wise decomposition the paper describes (§IV): the 2D
//! construct distributes columns across threads and streams rows
//! sequentially, matching Julia's column-major storage. Modeled time comes
//! from the CPU machine model, so figure generation is deterministic; real
//! wall-clock time of this backend is additionally meaningful and is what
//! the `overhead_cpu` criterion bench measures.

use std::sync::Arc;

use racc_threadpool::{Schedule, ThreadPool};

use crate::backend::{Backend, DeviceToken};
use crate::cpumodel::CpuSpec;
use crate::error::RaccError;
use crate::profile::KernelProfile;
use crate::scalar::{AccScalar, ReduceOp};
use crate::timeline::Timeline;

/// Multithreaded CPU backend over a persistent worker pool.
pub struct ThreadsBackend {
    pool: Arc<ThreadPool>,
    cpu: CpuSpec,
    schedule: Schedule,
    timeline: Timeline,
}

impl Default for ThreadsBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadsBackend {
    /// A backend using all available cores and the EPYC 7742 machine model.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_threads(threads)
    }

    /// A backend with an explicit thread count.
    pub fn with_threads(threads: usize) -> Self {
        Self::with_pool(
            Arc::new(ThreadPool::new(threads)),
            CpuSpec::epyc_7742_rome(),
        )
    }

    /// Full control: existing pool + CPU model.
    pub fn with_pool(pool: Arc<ThreadPool>, cpu: CpuSpec) -> Self {
        ThreadsBackend {
            pool,
            cpu,
            schedule: Schedule::Static,
            timeline: Timeline::new(),
        }
    }

    /// Select the loop schedule (static by default, like `Threads.@threads`).
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// The executing pool.
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// The CPU model in use.
    pub fn cpu(&self) -> &CpuSpec {
        &self.cpu
    }
}

#[cfg(feature = "racecheck")]
#[inline]
fn tag(iter: u64) {
    crate::racecheck::set_current_iteration(iter);
}

#[cfg(not(feature = "racecheck"))]
#[inline]
fn tag(_iter: u64) {}

impl ThreadsBackend {
    /// Racecheck bookkeeping around a construct (straight-line, not a
    /// closure wrapper — see `SerialBackend::begin_bracket`).
    #[inline]
    fn begin_bracket(&self) {
        #[cfg(feature = "racecheck")]
        crate::racecheck::begin_launch();
    }

    #[inline]
    fn end_bracket(&self) {
        #[cfg(feature = "racecheck")]
        crate::racecheck::end_launch();
    }
}

impl Backend for ThreadsBackend {
    fn name(&self) -> String {
        format!(
            "RACC Threads ({} threads, {})",
            self.pool.num_threads(),
            self.cpu.name
        )
    }

    fn key(&self) -> &'static str {
        "threads"
    }

    fn is_accelerator(&self) -> bool {
        false
    }

    fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    #[cfg(feature = "trace")]
    fn attach_tracer(&self, recorder: &Arc<racc_trace::TraceRecorder>) {
        self.timeline.install_tracer(Arc::clone(recorder));
        // Per-worker chunk spans come from inside the pool.
        self.pool.install_tracer(Arc::clone(recorder));
    }

    fn steal_stats(&self) -> Option<racc_threadpool::StealStats> {
        Some(self.pool.steal_stats())
    }

    fn set_sanitizer(&self, _enabled: bool) -> bool {
        // The CPU half of simsan is the racecheck machinery with read
        // tracking switched on; it needs the `racecheck` feature compiled in.
        #[cfg(feature = "racecheck")]
        {
            crate::racecheck::set_enabled(_enabled);
            crate::racecheck::set_track_reads(_enabled);
            true
        }
        #[cfg(not(feature = "racecheck"))]
        false
    }

    fn on_alloc(&self, _bytes: usize, _upload: bool) -> Result<DeviceToken, RaccError> {
        // The paper: "when using Base.Threads as the back end, using
        // JACC.Array is not necessary" — host memory, no transfer.
        #[cfg(feature = "trace")]
        self.timeline.record_span(|| {
            racc_trace::Span::new("threads", racc_trace::ConstructKind::Alloc, "alloc")
                .dims(0, 0, 0)
                .payload(_bytes as u64)
        });
        Ok(None)
    }

    fn on_download(&self, _bytes: usize) {}

    fn parallel_for_1d<F>(&self, n: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize) + Sync,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        self.pool.parallel_for(n, self.schedule, |i| {
            tag(i as u64);
            f(i);
        });
        self.end_bracket();
        let ns = self.cpu.kernel_time_ns(n, profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "threads",
            racc_trace::ConstructKind::For1d,
            profile,
            [n as u64, 1, 1],
            self.pool.num_threads() as u64,
            t0,
            ns,
        );
    }

    fn parallel_for_2d<F>(&self, m: usize, n: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        // Column-wise coarse decomposition (paper §IV).
        self.pool.parallel_for_2d(m, n, self.schedule, |i, j| {
            tag((j * m + i) as u64);
            f(i, j);
        });
        self.end_bracket();
        let ns = self.cpu.kernel_time_ns(m * n, profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "threads",
            racc_trace::ConstructKind::For2d,
            profile,
            [m as u64, n as u64, 1],
            self.pool.num_threads() as u64,
            t0,
            ns,
        );
    }

    fn parallel_for_3d<F>(&self, m: usize, n: usize, l: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize, usize, usize) + Sync,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        self.pool
            .parallel_for_3d(m, n, l, self.schedule, |i, j, k| {
                tag(((k * n + j) * m + i) as u64);
                f(i, j, k);
            });
        self.end_bracket();
        let ns = self.cpu.kernel_time_ns(m * n * l, profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "threads",
            racc_trace::ConstructKind::For3d,
            profile,
            [m as u64, n as u64, l as u64],
            self.pool.num_threads() as u64,
            t0,
            ns,
        );
    }

    fn parallel_reduce_1d<T, F, O>(&self, n: usize, profile: &KernelProfile, f: F, op: O) -> T
    where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        let acc = self.pool.parallel_reduce(
            n,
            self.schedule,
            op.identity(),
            |i| {
                tag(i as u64);
                f(i)
            },
            |a, b| op.combine(a, b),
        );
        self.end_bracket();
        let ns = self.cpu.reduce_time_ns(n, profile);
        self.timeline.charge_reduction(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "threads",
            racc_trace::ConstructKind::Reduce1d,
            profile,
            [n as u64, 1, 1],
            self.pool.num_threads() as u64,
            t0,
            ns,
        );
        acc
    }

    fn parallel_reduce_2d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        profile: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        // Column-wise: reduce whole columns per task, then across columns.
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        let acc = self.pool.parallel_reduce(
            n,
            self.schedule,
            op.identity(),
            |j| {
                let mut col = op.identity();
                for i in 0..m {
                    tag((j * m + i) as u64);
                    col = op.combine(col, f(i, j));
                }
                col
            },
            |a, b| op.combine(a, b),
        );
        self.end_bracket();
        let ns = self.cpu.reduce_time_ns(m * n, profile);
        self.timeline.charge_reduction(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "threads",
            racc_trace::ConstructKind::Reduce2d,
            profile,
            [m as u64, n as u64, 1],
            self.pool.num_threads() as u64,
            t0,
            ns,
        );
        acc
    }

    fn parallel_reduce_3d<T, F, O>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        profile: &KernelProfile,
        f: F,
        op: O,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        let acc = self.pool.parallel_reduce(
            l,
            self.schedule,
            op.identity(),
            |k| {
                let mut plane = op.identity();
                for j in 0..n {
                    for i in 0..m {
                        tag(((k * n + j) * m + i) as u64);
                        plane = op.combine(plane, f(i, j, k));
                    }
                }
                plane
            },
            |a, b| op.combine(a, b),
        );
        self.end_bracket();
        let ns = self.cpu.reduce_time_ns(m * n * l, profile);
        self.timeline.charge_reduction(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "threads",
            racc_trace::ConstructKind::Reduce3d,
            profile,
            [m as u64, n as u64, l as u64],
            self.pool.num_threads() as u64,
            t0,
            ns,
        );
        acc
    }

    fn prim_scan_1d<T, F, W, O>(
        &self,
        n: usize,
        inclusive: bool,
        profile: &KernelProfile,
        read: F,
        write: W,
        op: O,
    ) where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        W: Fn(usize, T) + Sync,
        O: ReduceOp<T>,
    {
        use crate::prim::{self, SlotVec};
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        // Same fixed PRIM_TILE tiling as the serial reference: tile totals
        // in parallel (each tile owns its slot), one sequential fold over
        // the totals, then the output pass in parallel. Tile boundaries are
        // a pure function of n, so stealing cannot change any combine.
        let tiles = prim::scan_tiles(n);
        let totals = SlotVec::new(tiles, op.identity());
        self.pool.parallel_for(tiles, self.schedule, |t| {
            let total = prim::tile_total(
                t,
                n,
                &|i| {
                    tag(i as u64);
                    read(i)
                },
                op,
            );
            totals.set(t, total);
        });
        let offsets = prim::tile_offsets(&totals.into_vec(), op);
        self.pool.parallel_for(tiles, self.schedule, |t| {
            prim::scan_tile_write(
                t,
                n,
                inclusive,
                offsets[t],
                &|i| {
                    tag(i as u64);
                    read(i)
                },
                &write,
                op,
            );
        });
        self.end_bracket();
        let ns = self.cpu.kernel_time_ns(2 * n, profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "threads",
            racc_trace::ConstructKind::Prim,
            profile,
            [n as u64, 1, 1],
            self.pool.num_threads() as u64,
            t0,
            ns,
        );
    }

    fn prim_histogram_1d<F, W>(
        &self,
        n: usize,
        bins: usize,
        profile: &KernelProfile,
        key: F,
        write: W,
    ) where
        F: Fn(usize) -> usize + Sync,
        W: Fn(usize, u64) + Sync,
    {
        use crate::prim::{self, SlotVec};
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        // Privatized histogram: each tile counts into its own row of the
        // scratch matrix, then bins are summed across rows in ascending
        // tile order. Counts are u64, so any order would do — the fixed
        // order keeps the discipline uniform with the float primitives.
        let w = prim::cpu_tile_width(n);
        let tiles = n.div_ceil(w);
        let counts = SlotVec::new(tiles * bins, 0u64);
        self.pool.parallel_for(tiles, self.schedule, |t| {
            let row = unsafe { counts.slice_mut(t * bins, (t + 1) * bins) };
            let (start, end) = (t * w, ((t + 1) * w).min(n));
            for i in start..end {
                tag(i as u64);
                row[key(i)] += 1;
            }
        });
        self.pool.parallel_for(bins, self.schedule, |bin| {
            tag(bin as u64);
            let mut sum = 0u64;
            for t in 0..tiles {
                sum += counts.get(t * bins + bin);
            }
            write(bin, sum);
        });
        self.end_bracket();
        let ns = self.cpu.kernel_time_ns(n + bins, profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "threads",
            racc_trace::ConstructKind::Prim,
            profile,
            [n as u64, bins as u64, 1],
            self.pool.num_threads() as u64,
            t0,
            ns,
        );
    }

    fn prim_sort_pairs_1d<F, W>(
        &self,
        n: usize,
        key_bits: u32,
        profile: &KernelProfile,
        key: F,
        write: W,
    ) where
        F: Fn(usize) -> u64 + Sync,
        W: Fn(usize, usize) + Sync,
    {
        use crate::prim::{self, SlotVec};
        #[cfg(not(feature = "trace"))]
        let _ = key_bits;
        #[cfg(feature = "trace")]
        let t0 = self.timeline.trace_start();
        self.begin_bracket();
        // Tiled merge sort over (bits, index) pairs: tile-local sorts in
        // parallel, then deterministic pairwise merge rounds with fixed run
        // boundaries. Ties break toward the smaller original index, so the
        // result is the unique stable order — identical to the canonical
        // reference regardless of thread count or stealing.
        let w = prim::cpu_tile_width(n);
        let tiles = n.div_ceil(w);
        let a = SlotVec::new(n, (0u64, 0u64));
        let b = SlotVec::new(n, (0u64, 0u64));
        self.pool.parallel_for(tiles, self.schedule, |t| {
            let (start, end) = (t * w, ((t + 1) * w).min(n));
            let run = unsafe { a.slice_mut(start, end) };
            for (off, slot) in run.iter_mut().enumerate() {
                let i = start + off;
                tag(i as u64);
                *slot = (key(i), i as u64);
            }
            run.sort_unstable();
        });
        let (mut src, mut dst) = (&a, &b);
        let mut width = w;
        while width < n {
            let pairs = n.div_ceil(2 * width);
            self.pool.parallel_for(pairs, self.schedule, |p| {
                let lo = p * 2 * width;
                let mid = (lo + width).min(n);
                let hi = (lo + 2 * width).min(n);
                let out = unsafe { dst.slice_mut(lo, hi) };
                let (mut i, mut j) = (lo, mid);
                for slot in out.iter_mut() {
                    let take_left = j >= hi || (i < mid && src.get(i) <= src.get(j));
                    if take_left {
                        *slot = src.get(i);
                        i += 1;
                    } else {
                        *slot = src.get(j);
                        j += 1;
                    }
                }
            });
            std::mem::swap(&mut src, &mut dst);
            width *= 2;
        }
        self.pool.parallel_for(n, self.schedule, |rank| {
            tag(rank as u64);
            write(rank, src.get(rank).1 as usize);
        });
        self.end_bracket();
        let log_n = usize::BITS - n.max(1).leading_zeros();
        let ns = self
            .cpu
            .kernel_time_ns(n * (log_n as usize).max(1), profile);
        self.timeline.charge_launch(ns);
        #[cfg(feature = "trace")]
        self.timeline.record_cpu_construct(
            "threads",
            racc_trace::ConstructKind::Prim,
            profile,
            [n as u64, key_bits as u64, 1],
            self.pool.num_threads() as u64,
            t0,
            ns,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{Min, Sum};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn backend() -> ThreadsBackend {
        ThreadsBackend::with_threads(4)
    }

    #[test]
    fn every_index_once_1d() {
        let b = backend();
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        b.parallel_for_1d(n, &KernelProfile::unknown(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn every_index_once_2d_and_3d() {
        let b = backend();
        let (m, n) = (63, 41);
        let hits: Vec<AtomicUsize> = (0..m * n).map(|_| AtomicUsize::new(0)).collect();
        b.parallel_for_2d(m, n, &KernelProfile::unknown(), |i, j| {
            hits[j * m + i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));

        let (m, n, l) = (7, 8, 9);
        let hits: Vec<AtomicUsize> = (0..m * n * l).map(|_| AtomicUsize::new(0)).collect();
        b.parallel_for_3d(m, n, l, &KernelProfile::unknown(), |i, j, k| {
            hits[(k * n + j) * m + i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn reductions_match_serial_backend() {
        let t = backend();
        let s = crate::SerialBackend::new();
        let data: Vec<f64> = (0..10_000).map(|i| ((i * 37) % 101) as f64).collect();
        let dr = |b: &dyn Fn() -> f64| b();
        let from_threads = dr(&|| {
            t.parallel_reduce_1d(
                data.len(),
                &KernelProfile::dot(),
                |i| data[i] * data[i],
                Sum,
            )
        });
        let from_serial = dr(&|| {
            s.parallel_reduce_1d(
                data.len(),
                &KernelProfile::dot(),
                |i| data[i] * data[i],
                Sum,
            )
        });
        assert!((from_threads - from_serial).abs() < 1e-6);

        let min_t: f64 = t.parallel_reduce_2d(
            100,
            100,
            &KernelProfile::dot(),
            |i, j| ((i * 100 + j) as f64).cos(),
            Min,
        );
        let min_s: f64 = s.parallel_reduce_2d(
            100,
            100,
            &KernelProfile::dot(),
            |i, j| ((i * 100 + j) as f64).cos(),
            Min,
        );
        assert_eq!(min_t, min_s);
    }

    #[test]
    fn modeled_time_beats_serial_model() {
        // The whole-socket model must be faster than the single-core model
        // for large streaming loops.
        let t = backend();
        let s = crate::SerialBackend::new();
        let n = 50_000_000;
        t.parallel_for_1d(n, &KernelProfile::axpy(), |_| {});
        s.parallel_for_1d(0, &KernelProfile::axpy(), |_| {}); // warm zero
        let t_ns = t.timeline().modeled_ns();
        let s_ns = s.cpu().kernel_time_ns(n, &KernelProfile::axpy()) as u64;
        assert!(t_ns < s_ns, "threads {t_ns} vs serial {s_ns}");
    }

    #[test]
    fn key_and_metadata() {
        let b = backend();
        assert_eq!(b.key(), "threads");
        assert!(!b.is_accelerator());
        assert!(b.name().contains("4 threads"));
        assert!(b.on_alloc(8, true).unwrap().is_none());
        assert_eq!(b.pool().num_threads(), 4);
    }

    #[test]
    fn dynamic_schedule_also_covers() {
        let b = ThreadsBackend::with_threads(4).with_schedule(Schedule::Dynamic { chunk: 16 });
        let n = 5000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        b.parallel_for_1d(n, &KernelProfile::unknown(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
