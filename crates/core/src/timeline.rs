//! Modeled-time accounting per backend.

use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "trace")]
use std::sync::{Arc, OnceLock};
#[cfg(feature = "trace")]
use std::time::Instant;

#[cfg(feature = "trace")]
use racc_trace::{Span, TraceRecorder};

/// Accumulates the modeled nanoseconds and operation counts of a backend.
/// This is the clock the paper-reproduction figures read: real wall-clock
/// time of the simulation is meaningless for cross-architecture comparisons,
/// the modeled clock is the measurement.
#[derive(Debug, Default)]
pub struct Timeline {
    modeled_ns: AtomicU64,
    launches: AtomicU64,
    reductions: AtomicU64,
    h2d_bytes: AtomicU64,
    d2h_bytes: AtomicU64,
    /// Span recorder, installed at most once per backend instance
    /// ([`Backend::attach_tracer`](crate::Backend::attach_tracer)).
    #[cfg(feature = "trace")]
    tracer: OnceLock<Arc<TraceRecorder>>,
}

/// A point-in-time copy of a [`Timeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimelineSnapshot {
    /// Total modeled nanoseconds.
    pub modeled_ns: u64,
    /// Number of `parallel_for` launches.
    pub launches: u64,
    /// Number of `parallel_reduce` invocations.
    pub reductions: u64,
    /// Bytes uploaded host-to-device.
    pub h2d_bytes: u64,
    /// Bytes downloaded device-to-host.
    pub d2h_bytes: u64,
}

impl Timeline {
    /// A fresh, zeroed timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add modeled kernel time for one `parallel_for`.
    pub fn charge_launch(&self, ns: f64) {
        self.launches.fetch_add(1, Ordering::Relaxed);
        self.add_ns(ns);
    }

    /// Add modeled time for one `parallel_reduce`.
    pub fn charge_reduction(&self, ns: f64) {
        self.reductions.fetch_add(1, Ordering::Relaxed);
        self.add_ns(ns);
    }

    /// Add modeled host-to-device transfer time.
    pub fn charge_h2d(&self, bytes: u64, ns: f64) {
        self.h2d_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.add_ns(ns);
    }

    /// Add modeled device-to-host transfer time.
    pub fn charge_d2h(&self, bytes: u64, ns: f64) {
        self.d2h_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.add_ns(ns);
    }

    /// Add raw modeled time (backend-internal extras).
    pub fn add_ns(&self, ns: f64) {
        self.modeled_ns
            .fetch_add(Self::quantize(ns), Ordering::Relaxed);
    }

    /// The quantization every charge applies to a modeled duration. Span
    /// emission uses the same function, so per-span `modeled_ns` sums
    /// reconcile exactly with [`TimelineSnapshot::modeled_ns`].
    pub fn quantize(ns: f64) -> u64 {
        ns.max(0.0).round() as u64
    }

    /// Total modeled nanoseconds so far.
    pub fn modeled_ns(&self) -> u64 {
        self.modeled_ns.load(Ordering::Relaxed)
    }

    /// Copy out all counters.
    pub fn snapshot(&self) -> TimelineSnapshot {
        TimelineSnapshot {
            modeled_ns: self.modeled_ns.load(Ordering::Relaxed),
            launches: self.launches.load(Ordering::Relaxed),
            reductions: self.reductions.load(Ordering::Relaxed),
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters (between benchmark series). An installed span
    /// recorder stays installed; call [`TraceRecorder::reset`] separately
    /// to also drop recorded spans.
    pub fn reset(&self) {
        self.modeled_ns.store(0, Ordering::Relaxed);
        self.launches.store(0, Ordering::Relaxed);
        self.reductions.store(0, Ordering::Relaxed);
        self.h2d_bytes.store(0, Ordering::Relaxed);
        self.d2h_bytes.store(0, Ordering::Relaxed);
    }
}

/// Span-recording support, compiled in with the `trace` feature. When the
/// feature is off, none of this exists and backends' emission sites compile
/// out with it.
#[cfg(feature = "trace")]
impl Timeline {
    /// Install the span recorder. At most one recorder per timeline; later
    /// calls are ignored (first installer wins).
    pub fn install_tracer(&self, recorder: Arc<TraceRecorder>) {
        let _ = self.tracer.set(recorder);
    }

    /// The installed recorder, if any.
    pub fn tracer(&self) -> Option<&Arc<TraceRecorder>> {
        self.tracer.get()
    }

    /// Whether a recorder is installed and currently accepting spans.
    #[inline]
    pub fn tracing_active(&self) -> bool {
        self.tracer.get().is_some_and(|r| r.is_enabled())
    }

    /// Start a wall-clock measurement if tracing is active. The `None`
    /// result is the inactive fast path: no clock read happens.
    #[inline]
    pub fn trace_start(&self) -> Option<Instant> {
        if self.tracing_active() {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Deposit one span; `make` runs only when tracing is active, so the
    /// inactive cost is one relaxed load and a branch.
    #[inline]
    pub fn record_span(&self, make: impl FnOnce() -> Span) {
        if let Some(rec) = self.tracer.get() {
            if rec.is_enabled() {
                rec.record(make());
            }
        }
    }

    /// Emission helper for the CPU backends: one span per construct, with
    /// the modeled charge quantized identically to the `charge_*` call and
    /// the measured wall-clock duration attached.
    #[allow(clippy::too_many_arguments)]
    pub fn record_cpu_construct(
        &self,
        backend: &'static str,
        kind: racc_trace::ConstructKind,
        profile: &crate::KernelProfile,
        dims: [u64; 3],
        workers: u64,
        started: Option<Instant>,
        ns: f64,
    ) {
        self.record_span(|| {
            let iters: u64 = dims.iter().product();
            // Fused launches keep the construct's execution path but land on
            // the dedicated `fused` trace lane (see `racc-fuse`).
            let kind = if profile.fused {
                racc_trace::ConstructKind::Fused
            } else {
                kind
            };
            Span::new(backend, kind, profile.name)
                .dims(dims[0], dims[1], dims[2])
                .geometry(workers, iters.div_ceil(workers.max(1)))
                .profile(profile.flops_per_iter, profile.bytes_per_iter())
                .modeled(Self::quantize(ns))
                .real_since(started)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let t = Timeline::new();
        t.charge_launch(100.4);
        t.charge_launch(0.6);
        t.charge_reduction(50.0);
        t.charge_h2d(1024, 10.0);
        t.charge_d2h(8, 5.0);
        t.add_ns(1.0);
        let s = t.snapshot();
        assert_eq!(s.modeled_ns, 100 + 1 + 50 + 10 + 5 + 1);
        assert_eq!(s.launches, 2);
        assert_eq!(s.reductions, 1);
        assert_eq!(s.h2d_bytes, 1024);
        assert_eq!(s.d2h_bytes, 8);
    }

    #[test]
    fn negative_charges_clamp_to_zero() {
        let t = Timeline::new();
        t.add_ns(-5.0);
        assert_eq!(t.modeled_ns(), 0);
    }

    #[test]
    fn reset_zeroes_everything() {
        let t = Timeline::new();
        t.charge_launch(10.0);
        t.charge_h2d(4, 2.0);
        t.reset();
        assert_eq!(t.snapshot(), TimelineSnapshot::default());
    }
}
