//! The front-end context: array creation + the two constructs.

use std::sync::atomic::{AtomicU64, Ordering};

#[cfg(feature = "trace")]
use std::sync::Arc;

use crate::array::{Array1, Array2, Array3};
use crate::backend::Backend;
use crate::buffer::RawStorage;
use crate::config::{PlanCacheMode, RuntimeConfig};
use crate::error::RaccError;
use crate::profile::KernelProfile;
use crate::scalar::{AccScalar, Numeric, ReduceOp, Sum};
use crate::stats::{
    fold_faults, snapshot_plan_cache, snapshot_prim, snapshot_serve, snapshot_shard, PlanCacheSlot,
    PrimCounters, RuntimeStats, ServeCounters, ShardCounters,
};
use crate::timeline::TimelineSnapshot;

static NEXT_CTX_ID: AtomicU64 = AtomicU64::new(1);

/// A RACC context: one backend plus the front-end API. The JACC analog is
/// the module-level `JACC.*` API after a back end has been selected through
/// preferences; RACC makes the selection explicit and value-like so several
/// backends can coexist in one process (how the benchmark harness sweeps
/// the four architectures).
pub struct Context<B: Backend> {
    backend: B,
    id: u64,
    /// Whether higher layers (`racc-fuse`, `racc-blas`, the CG solver)
    /// should take their fused fast paths. Purely advisory: the core
    /// constructs behave identically either way.
    fusion: bool,
    /// Home of the fused-plan cache: mode, counters, and the type-erased
    /// cell `racc-fuse` parks its cache in (see [`crate::stats`]).
    plan_cache: PlanCacheSlot,
    /// Counters the sharded multi-device runner (`racc-shard`) bumps when
    /// it drives this context; all zero (and hidden from `stats()`)
    /// otherwise.
    shard: std::sync::Arc<ShardCounters>,
    /// Counters the multi-tenant serving layer (`racc-serve`) bumps when
    /// this context is a member of a server's device pool; all zero (and
    /// hidden from `stats()`) otherwise.
    serve: std::sync::Arc<ServeCounters>,
    /// Counters the device-primitives layer (`racc-prim`) bumps when its
    /// scans/histograms/sorts run on this context; all zero (and hidden
    /// from `stats()`) otherwise.
    prim: std::sync::Arc<PrimCounters>,
    /// The span recorder attached at build time (see [`Context::builder`]).
    #[cfg(feature = "trace")]
    tracer: Option<Arc<racc_trace::TraceRecorder>>,
}

impl<B: Backend> std::fmt::Debug for Context<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("id", &self.id)
            .field("backend", &self.backend.name())
            .finish()
    }
}

impl<B: Backend> Context<B> {
    /// Wrap a backend in a context (no tracing, no racecheck changes). Use
    /// [`Context::builder`] to configure observability at construction.
    pub fn new(backend: B) -> Self {
        // Direct construction honors the environment knobs so harnesses
        // (the CI `RACC_FUSION=1` and `RACC_CHAOS=<seed>` steps) reach
        // every code path. All `RACC_*` knobs are parsed in one place —
        // `racc::config` — exactly once per construction.
        Self::with_config(backend, RuntimeConfig::from_env())
    }

    /// Construct from an already-parsed [`RuntimeConfig`]. Note that
    /// `config.sanitizer` is *not* applied here: the simulator devices
    /// honor `RACC_SANITIZER` at device creation, and builder overrides
    /// run before this point (see `racc_core::config` docs).
    fn with_config(backend: B, config: RuntimeConfig) -> Self {
        // Env-armed chaos always comes with the default retry policy: the
        // env knob is a whole-suite soak, and without retries every
        // transient fault would surface as a test failure.
        if let Some(plan) = config.chaos {
            if backend.set_chaos(plan) {
                backend.set_retry(racc_chaos::RetryPolicy::default());
            }
        }
        Context {
            backend,
            id: NEXT_CTX_ID.fetch_add(1, Ordering::Relaxed),
            fusion: config.fusion,
            plan_cache: PlanCacheSlot::new(config.plan_cache),
            shard: std::sync::Arc::new(ShardCounters::default()),
            serve: std::sync::Arc::new(ServeCounters::default()),
            prim: std::sync::Arc::new(PrimCounters::default()),
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }

    /// Start building a context over `backend` with explicit observability
    /// options — the primary construction path:
    ///
    /// ```
    /// use racc_core::{Context, SerialBackend};
    ///
    /// let ctx = Context::builder(SerialBackend::new()).build();
    /// assert_eq!(ctx.key(), "serial");
    /// ```
    pub fn builder(backend: B) -> ContextBuilder<B> {
        ContextBuilder::new(backend)
    }

    /// The unique id of this context (arrays remember it).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The underlying backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Human-readable backend name.
    pub fn name(&self) -> String {
        self.backend.name()
    }

    /// Backend key (`"serial"`, `"threads"`, `"cudasim"`, ...).
    pub fn key(&self) -> &'static str {
        self.backend.key()
    }

    /// True when the backend models a discrete accelerator.
    pub fn is_accelerator(&self) -> bool {
        self.backend.is_accelerator()
    }

    // ------------------------------------------------------------------
    // Memory: the JACC.Array analog
    // ------------------------------------------------------------------

    /// `JACC.Array(host_vector)`: create a 1D array from host data
    /// (modeling the host-to-device transfer on accelerator back ends).
    pub fn array_from<T: AccScalar>(&self, data: &[T]) -> Result<Array1<T>, RaccError> {
        let storage = RawStorage::from_slice(data);
        let token = self.backend.on_alloc(std::mem::size_of_val(data), true)?;
        Ok(Array1::new(storage, token, self.id))
    }

    /// A zero-initialized 1D array of `n` elements.
    pub fn zeros<T: AccScalar>(&self, n: usize) -> Result<Array1<T>, RaccError> {
        let storage = RawStorage::zeroed(n);
        let token = self.backend.on_alloc(n * std::mem::size_of::<T>(), false)?;
        Ok(Array1::new(storage, token, self.id))
    }

    /// A 1D array built from a function of the index.
    pub fn array_from_fn<T: AccScalar>(
        &self,
        n: usize,
        f: impl FnMut(usize) -> T,
    ) -> Result<Array1<T>, RaccError> {
        let data: Vec<T> = (0..n).map(f).collect();
        self.array_from(&data)
    }

    /// `JACC.Array(host_matrix)`: create an `m × n` column-major 2D array
    /// from host data laid out column-major.
    pub fn array2_from<T: AccScalar>(
        &self,
        m: usize,
        n: usize,
        data: &[T],
    ) -> Result<Array2<T>, RaccError> {
        if data.len() != m * n {
            return Err(RaccError::ShapeMismatch(format!(
                "{} elements for a {m} x {n} array",
                data.len()
            )));
        }
        let storage = RawStorage::from_slice(data);
        let token = self.backend.on_alloc(std::mem::size_of_val(data), true)?;
        Ok(Array2::new(storage, token, self.id, m, n))
    }

    /// A zero-initialized `m × n` 2D array.
    pub fn zeros2<T: AccScalar>(&self, m: usize, n: usize) -> Result<Array2<T>, RaccError> {
        let storage = RawStorage::zeroed(m * n);
        let token = self
            .backend
            .on_alloc(m * n * std::mem::size_of::<T>(), false)?;
        Ok(Array2::new(storage, token, self.id, m, n))
    }

    /// A 2D array built from a function of `(i, j)`.
    pub fn array2_from_fn<T: AccScalar>(
        &self,
        m: usize,
        n: usize,
        mut f: impl FnMut(usize, usize) -> T,
    ) -> Result<Array2<T>, RaccError> {
        let mut data = Vec::with_capacity(m * n);
        for j in 0..n {
            for i in 0..m {
                data.push(f(i, j));
            }
        }
        self.array2_from(m, n, &data)
    }

    /// A 3D `m × n × l` column-major array from host data.
    pub fn array3_from<T: AccScalar>(
        &self,
        m: usize,
        n: usize,
        l: usize,
        data: &[T],
    ) -> Result<Array3<T>, RaccError> {
        if data.len() != m * n * l {
            return Err(RaccError::ShapeMismatch(format!(
                "{} elements for a {m} x {n} x {l} array",
                data.len()
            )));
        }
        let storage = RawStorage::from_slice(data);
        let token = self.backend.on_alloc(std::mem::size_of_val(data), true)?;
        Ok(Array3::new(storage, token, self.id, m, n, l))
    }

    /// A zero-initialized 3D array.
    pub fn zeros3<T: AccScalar>(
        &self,
        m: usize,
        n: usize,
        l: usize,
    ) -> Result<Array3<T>, RaccError> {
        let storage = RawStorage::zeroed(m * n * l);
        let token = self
            .backend
            .on_alloc(m * n * l * std::mem::size_of::<T>(), false)?;
        Ok(Array3::new(storage, token, self.id, m, n, l))
    }

    /// Copy a 1D array back to host memory (modeling the device-to-host
    /// transfer on accelerator back ends).
    pub fn to_host<T: AccScalar>(&self, arr: &Array1<T>) -> Result<Vec<T>, RaccError> {
        self.check_ctx(arr.ctx_id())?;
        self.backend.on_download(arr.size_bytes());
        Ok(arr.storage().to_vec())
    }

    /// Copy a 2D array back to host memory (column-major order).
    pub fn to_host2<T: AccScalar>(&self, arr: &Array2<T>) -> Result<Vec<T>, RaccError> {
        self.check_ctx(arr.ctx_id())?;
        self.backend.on_download(arr.size_bytes());
        Ok(arr.storage().to_vec())
    }

    /// Copy a 3D array back to host memory (column-major order).
    pub fn to_host3<T: AccScalar>(&self, arr: &Array3<T>) -> Result<Vec<T>, RaccError> {
        self.check_ctx(arr.ctx_id())?;
        self.backend.on_download(arr.size_bytes());
        Ok(arr.storage().to_vec())
    }

    /// Overwrite an array's contents from host data (counts as an upload on
    /// accelerator back ends).
    pub fn copy_to<T: AccScalar>(&self, arr: &Array1<T>, data: &[T]) -> Result<(), RaccError> {
        self.check_ctx(arr.ctx_id())?;
        if data.len() != arr.len() {
            return Err(RaccError::ShapeMismatch(format!(
                "{} elements into array of length {}",
                data.len(),
                arr.len()
            )));
        }
        let _ = self.backend.on_alloc(0, true); // charge the upload path
        arr.storage().copy_from_slice(data);
        Ok(())
    }

    /// Fill a 1D array with a constant (device-side, one `parallel_for`).
    pub fn fill<T: AccScalar>(&self, arr: &Array1<T>, value: T) -> Result<(), RaccError> {
        self.check_ctx(arr.ctx_id())?;
        let v = arr.view_mut();
        self.parallel_for(
            arr.len(),
            &KernelProfile::new("fill", 0.0, 0.0, 8.0),
            move |i| {
                v.set(i, value);
            },
        );
        Ok(())
    }

    /// Fill a 2D array with a constant.
    pub fn fill2<T: AccScalar>(&self, arr: &Array2<T>, value: T) -> Result<(), RaccError> {
        self.check_ctx(arr.ctx_id())?;
        let v = arr.view_mut();
        self.parallel_for_2d(
            arr.dims(),
            &KernelProfile::new("fill", 0.0, 0.0, 8.0),
            move |i, j| {
                v.set(i, j, value);
            },
        );
        Ok(())
    }

    /// Fill a 3D array with a constant.
    pub fn fill3<T: AccScalar>(&self, arr: &Array3<T>, value: T) -> Result<(), RaccError> {
        self.check_ctx(arr.ctx_id())?;
        let v = arr.view_mut();
        self.parallel_for_3d(
            arr.dims(),
            &KernelProfile::new("fill", 0.0, 0.0, 8.0),
            move |i, j, k| {
                v.set(i, j, k, value);
            },
        );
        Ok(())
    }

    /// Device-side copy of one array's contents into another (the `copy(r)`
    /// steps in the paper's CG listing).
    pub fn copy_array<T: AccScalar>(
        &self,
        src: &Array1<T>,
        dst: &Array1<T>,
    ) -> Result<(), RaccError> {
        self.check_ctx(src.ctx_id())?;
        self.check_ctx(dst.ctx_id())?;
        if src.len() != dst.len() {
            return Err(RaccError::ShapeMismatch(format!(
                "copy between arrays of length {} and {}",
                src.len(),
                dst.len()
            )));
        }
        let (s, d) = (src.view(), dst.view_mut());
        self.parallel_for(src.len(), &KernelProfile::copy(), move |i| {
            d.set(i, s.get(i));
        });
        Ok(())
    }

    fn check_ctx(&self, array_ctx: u64) -> Result<(), RaccError> {
        if array_ctx != self.id {
            return Err(RaccError::WrongContext {
                array_ctx,
                this_ctx: self.id,
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Compute: the two constructs
    // ------------------------------------------------------------------

    /// `JACC.parallel_for(n, f, args...)`: run `f(i)` for `i in 0..n`.
    /// Synchronous; `f` runs concurrently for different `i`.
    pub fn parallel_for<F>(&self, n: usize, profile: &KernelProfile, f: F)
    where
        F: Fn(usize) + Sync,
    {
        self.backend.parallel_for_1d(n, profile, f);
    }

    /// `JACC.parallel_for((m, n), f, args...)`.
    pub fn parallel_for_2d<F>(&self, (m, n): (usize, usize), profile: &KernelProfile, f: F)
    where
        F: Fn(usize, usize) + Sync,
    {
        self.backend.parallel_for_2d(m, n, profile, f);
    }

    /// `JACC.parallel_for((m, n, l), f, args...)`.
    pub fn parallel_for_3d<F>(
        &self,
        (m, n, l): (usize, usize, usize),
        profile: &KernelProfile,
        f: F,
    ) where
        F: Fn(usize, usize, usize) + Sync,
    {
        self.backend.parallel_for_3d(m, n, l, profile, f);
    }

    /// `JACC.parallel_reduce(n, f, args...)`: sum `f(i)` over `i in 0..n`
    /// (JACC's reduction is a sum).
    pub fn parallel_reduce<T, F>(&self, n: usize, profile: &KernelProfile, f: F) -> T
    where
        T: Numeric,
        F: Fn(usize) -> T + Sync,
    {
        self.backend.parallel_reduce_1d(n, profile, f, Sum)
    }

    /// Reduction with an explicit operator ([`Sum`], [`crate::Max`], ...).
    pub fn parallel_reduce_with<T, F, O>(&self, n: usize, profile: &KernelProfile, op: O, f: F) -> T
    where
        T: AccScalar,
        F: Fn(usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.backend.parallel_reduce_1d(n, profile, f, op)
    }

    /// `JACC.parallel_reduce((m, n), f, args...)`.
    pub fn parallel_reduce_2d<T, F>(
        &self,
        (m, n): (usize, usize),
        profile: &KernelProfile,
        f: F,
    ) -> T
    where
        T: Numeric,
        F: Fn(usize, usize) -> T + Sync,
    {
        self.backend.parallel_reduce_2d(m, n, profile, f, Sum)
    }

    /// 2D reduction with an explicit operator.
    pub fn parallel_reduce_2d_with<T, F, O>(
        &self,
        (m, n): (usize, usize),
        profile: &KernelProfile,
        op: O,
        f: F,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.backend.parallel_reduce_2d(m, n, profile, f, op)
    }

    /// 3D sum reduction.
    pub fn parallel_reduce_3d<T, F>(
        &self,
        (m, n, l): (usize, usize, usize),
        profile: &KernelProfile,
        f: F,
    ) -> T
    where
        T: Numeric,
        F: Fn(usize, usize, usize) -> T + Sync,
    {
        self.backend.parallel_reduce_3d(m, n, l, profile, f, Sum)
    }

    /// 3D reduction with an explicit operator.
    pub fn parallel_reduce_3d_with<T, F, O>(
        &self,
        (m, n, l): (usize, usize, usize),
        profile: &KernelProfile,
        op: O,
        f: F,
    ) -> T
    where
        T: AccScalar,
        F: Fn(usize, usize, usize) -> T + Sync,
        O: ReduceOp<T>,
    {
        self.backend.parallel_reduce_3d(m, n, l, profile, f, op)
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Total modeled nanoseconds accumulated by this context's backend.
    pub fn modeled_ns(&self) -> u64 {
        self.backend.timeline().modeled_ns()
    }

    /// Full timeline snapshot.
    pub fn timeline(&self) -> TimelineSnapshot {
        self.backend.timeline().snapshot()
    }

    /// Reset the modeled clock (between benchmark series).
    pub fn reset_timeline(&self) {
        self.backend.timeline().reset();
    }

    /// The span recorder attached at build time, if any.
    #[cfg(feature = "trace")]
    pub fn tracer(&self) -> Option<&Arc<racc_trace::TraceRecorder>> {
        self.tracer.as_ref()
    }

    /// All spans recorded so far (empty when no recorder is attached).
    #[cfg(feature = "trace")]
    pub fn trace_spans(&self) -> Vec<racc_trace::Span> {
        self.tracer.as_ref().map(|r| r.spans()).unwrap_or_default()
    }

    /// Whether fused fast paths are requested for this context (set by
    /// [`ContextBuilder::fusion`] or the `RACC_FUSION` environment
    /// variable). Advisory: consulted by `racc-fuse`, `racc-blas` and the
    /// CG solver; the core constructs never change behavior.
    pub fn fusion_enabled(&self) -> bool {
        self.fusion
    }

    /// Every fault injected on this context's backend so far, in injection
    /// order (see [`ContextBuilder::chaos`] / `RACC_CHAOS`). Empty when
    /// chaos is unsupported or disarmed.
    pub fn fault_log(&self) -> Vec<racc_chaos::FaultEvent> {
        self.backend.fault_log()
    }

    /// One uniform snapshot of this context's runtime machinery: fused
    /// plan-cache hits/misses/evictions, injected-fault counts from
    /// `racc-chaos`, the backend's sanitizer report, and the thread pool's
    /// work-stealing counters (when the backend runs on one). Replaces
    /// stitching `fault_log()` + `sanitizer_report()` + per-subsystem
    /// counters by hand.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats {
            plan_cache: snapshot_plan_cache(&self.plan_cache),
            faults: fold_faults(&self.backend.fault_log()),
            sanitizer: self.backend.sanitizer_report(),
            steal: self.backend.steal_stats(),
            shard: snapshot_shard(&self.shard),
            serve: snapshot_serve(&self.serve),
            prim: snapshot_prim(&self.prim),
        }
    }

    /// The shard-runner counters of this context. Public for `racc-shard`,
    /// which bumps them while driving the context as one device of a
    /// sharded run; application code wants [`Context::stats`] instead.
    #[doc(hidden)]
    pub fn shard_counters(&self) -> &std::sync::Arc<ShardCounters> {
        &self.shard
    }

    /// The serving-layer counters of this context. Public for
    /// `racc-serve`, which bumps them while dispatching jobs onto this
    /// context as one device of a server pool; application code wants
    /// [`Context::stats`] instead.
    #[doc(hidden)]
    pub fn serve_counters(&self) -> &std::sync::Arc<ServeCounters> {
        &self.serve
    }

    /// The device-primitive counters of this context. Public for
    /// `racc-prim`, which bumps them as its scans/histograms/sorts run;
    /// application code wants [`Context::stats`] instead.
    #[doc(hidden)]
    pub fn prim_counters(&self) -> &std::sync::Arc<PrimCounters> {
        &self.prim
    }

    /// The per-context home of the fused-plan cache. Public for the
    /// fusion layer (`racc-fuse`), which parks its cache here; application
    /// code wants [`Context::stats`] instead.
    #[doc(hidden)]
    pub fn plan_cache_slot(&self) -> &PlanCacheSlot {
        &self.plan_cache
    }
}

/// Builder for a [`Context`] with construction-time observability options.
/// Obtained from [`Context::builder`]; `build()` is infallible.
///
/// Options behind cargo features degrade to documented no-ops when the
/// feature is off, so application code using the builder compiles under any
/// feature set.
pub struct ContextBuilder<B: Backend> {
    backend: B,
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    trace: bool,
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    trace_capacity: usize,
    #[cfg_attr(not(feature = "racecheck"), allow(dead_code))]
    racecheck: Option<bool>,
    sanitizer: Option<bool>,
    fusion: Option<bool>,
    plan_cache: Option<PlanCacheMode>,
    chaos: Option<racc_chaos::FaultPlan>,
    retry: Option<racc_chaos::RetryPolicy>,
}

impl<B: Backend> ContextBuilder<B> {
    fn new(backend: B) -> Self {
        ContextBuilder {
            backend,
            trace: false,
            #[cfg(feature = "trace")]
            trace_capacity: racc_trace::DEFAULT_CAPACITY,
            #[cfg(not(feature = "trace"))]
            trace_capacity: 0,
            racecheck: None,
            sanitizer: None,
            fusion: None,
            plan_cache: None,
            chaos: None,
            retry: None,
        }
    }

    /// Attach a span recorder to the backend so every construct deposits
    /// one `racc-trace` span. No-op unless the `trace` feature is compiled
    /// in.
    pub fn trace(mut self, enabled: bool) -> Self {
        self.trace = enabled;
        self
    }

    /// Ring capacity (spans retained) of the recorder created by
    /// [`ContextBuilder::trace`]. Implies nothing on its own; the default
    /// is `racc_trace::DEFAULT_CAPACITY`.
    pub fn trace_capacity(mut self, spans: usize) -> Self {
        self.trace_capacity = spans;
        self
    }

    /// Switch the data-race checker on or off (process-global, like the
    /// checker itself). Leaving it unset keeps the current state. No-op
    /// unless the `racecheck` feature is compiled in.
    pub fn racecheck(mut self, enabled: bool) -> Self {
        self.racecheck = Some(enabled);
        self
    }

    /// Switch the backend's dynamic sanitizer (`simsan`) on or off:
    /// out-of-bounds, use-after-free, read-write race, barrier-divergence,
    /// and leak checking. Leaving it unset keeps the backend's default
    /// (simulator back ends also honor `RACC_SANITIZER=1`). A documented
    /// no-op on back ends without sanitizer support — see
    /// [`Backend::set_sanitizer`].
    pub fn sanitizer(mut self, enabled: bool) -> Self {
        self.sanitizer = Some(enabled);
        self
    }

    /// Request (or veto) the fused fast paths of the expression layer
    /// (`racc-fuse`) and its users. Leaving it unset defers to the
    /// `RACC_FUSION` environment variable; off by default.
    pub fn fusion(mut self, enabled: bool) -> Self {
        self.fusion = Some(enabled);
        self
    }

    /// Override the fused-plan cache mode (capacity or
    /// [`PlanCacheMode::Off`]). Leaving it unset defers to the
    /// `RACC_PLAN_CACHE` environment variable; the default retains
    /// [`crate::config::DEFAULT_PLAN_CACHE_CAPACITY`] compiled programs.
    pub fn plan_cache(mut self, mode: PlanCacheMode) -> Self {
        self.plan_cache = Some(mode);
        self
    }

    /// Arm deterministic fault injection (`racc-chaos`) on the backend
    /// with `plan`. An explicit plan replaces whatever `RACC_CHAOS` armed
    /// (fresh engine, fresh fault log) and does **not** imply a retry
    /// policy — pair it with [`ContextBuilder::retry`] for recovery. A
    /// documented no-op on back ends without injection support — see
    /// [`Backend::set_chaos`].
    pub fn chaos(mut self, plan: racc_chaos::FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Set the retry policy the backend applies to transient device faults
    /// (injected faults, out-of-memory): bounded attempts with exponential
    /// *modeled* backoff. Leaving it unset keeps the backend's default
    /// (retries on when `RACC_CHAOS` armed the chaos engine, off
    /// otherwise). No-op on back ends without retry support.
    pub fn retry(mut self, policy: racc_chaos::RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// Build the context, applying the selected options.
    pub fn build(self) -> Context<B> {
        #[cfg(feature = "racecheck")]
        if let Some(enabled) = self.racecheck {
            crate::racecheck::set_enabled(enabled);
        }
        if let Some(enabled) = self.sanitizer {
            self.backend.set_sanitizer(enabled);
        }
        #[allow(unused_mut)]
        let mut ctx = Context::new(self.backend);
        // After Context::new, so an explicit plan overrides the env-armed
        // engine with a fresh one.
        if let Some(plan) = self.chaos {
            ctx.backend.set_chaos(plan);
        }
        if let Some(policy) = self.retry {
            ctx.backend.set_retry(policy);
        }
        if let Some(enabled) = self.fusion {
            ctx.fusion = enabled;
        }
        if let Some(mode) = self.plan_cache {
            // Nothing has touched the slot yet (the fusion layer installs
            // its cache lazily, on first evaluation), so replacing it here
            // is a plain reconfiguration.
            ctx.plan_cache = PlanCacheSlot::new(mode);
        }
        #[cfg(feature = "trace")]
        if self.trace {
            let recorder = Arc::new(racc_trace::TraceRecorder::new(self.trace_capacity));
            ctx.backend.attach_tracer(&recorder);
            ctx.tracer = Some(recorder);
        }
        ctx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::SerialBackend;
    use crate::threads::ThreadsBackend;
    use crate::Max;

    fn ctx() -> Context<ThreadsBackend> {
        Context::new(ThreadsBackend::with_threads(4))
    }

    #[test]
    fn axpy_and_dot_match_paper_frontend_shape() {
        // The paper's Fig. 2 example, sizes reduced.
        let ctx = ctx();
        let size = 10_000usize;
        let x: Vec<f64> = (0..size).map(|i| (i % 100) as f64).collect();
        let y: Vec<f64> = (0..size).map(|i| ((i + 1) % 100) as f64).collect();
        let alpha = 2.5f64;
        let dx = ctx.array_from(&x).unwrap();
        let dy = ctx.array_from(&y).unwrap();

        let (xv, yv) = (dx.view_mut(), dy.view());
        ctx.parallel_for(size, &KernelProfile::axpy(), move |i| {
            xv.set(i, xv.get(i) + alpha * yv.get(i));
        });
        let (xv, yv) = (dx.view(), dy.view());
        let res: f64 =
            ctx.parallel_reduce(size, &KernelProfile::dot(), move |i| xv.get(i) * yv.get(i));

        let mut expect_x = x.clone();
        for i in 0..size {
            expect_x[i] += alpha * y[i];
        }
        let expect: f64 = expect_x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((res - expect).abs() / expect.abs() < 1e-12);
        assert_eq!(ctx.to_host(&dx).unwrap(), expect_x);
    }

    #[test]
    fn multidimensional_frontend() {
        let ctx = ctx();
        let size = 64usize;
        let dx = ctx
            .array2_from_fn(size, size, |i, j| (i + j) as f64)
            .unwrap();
        let dy = ctx.array2_from_fn(size, size, |_, _| 1.0f64).unwrap();
        let alpha = 2.0f64;
        let (xv, yv) = (dx.view_mut(), dy.view());
        ctx.parallel_for_2d((size, size), &KernelProfile::axpy(), move |i, j| {
            xv.set(i, j, xv.get(i, j) + alpha * yv.get(i, j));
        });
        let (xv, yv) = (dx.view(), dy.view());
        let res: f64 = ctx.parallel_reduce_2d((size, size), &KernelProfile::dot(), move |i, j| {
            xv.get(i, j) * yv.get(i, j)
        });
        let expect: f64 = (0..size)
            .flat_map(|j| (0..size).map(move |i| (i + j) as f64 + 2.0))
            .sum();
        assert!((res - expect).abs() < 1e-9);
    }

    #[test]
    fn three_d_constructs() {
        let ctx = ctx();
        let dims = (8usize, 9usize, 10usize);
        let a = ctx.zeros3::<f64>(dims.0, dims.1, dims.2).unwrap();
        let av = a.view_mut();
        ctx.parallel_for_3d(dims, &KernelProfile::unknown(), move |i, j, k| {
            av.set(i, j, k, (i + j + k) as f64);
        });
        let av = a.view();
        let total: f64 = ctx.parallel_reduce_3d(dims, &KernelProfile::unknown(), move |i, j, k| {
            av.get(i, j, k)
        });
        let expect: f64 = (0..10)
            .flat_map(|k| (0..9).flat_map(move |j| (0..8).map(move |i| (i + j + k) as f64)))
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn reduce_3d_with_custom_op() {
        let ctx = ctx();
        let m: i64 =
            ctx.parallel_reduce_3d_with((4, 5, 6), &KernelProfile::unknown(), Max, |i, j, k| {
                (i * j * k) as i64
            });
        assert_eq!(m, (3 * 4 * 5) as i64);
    }

    #[test]
    fn wrong_context_is_detected() {
        let a = Context::new(SerialBackend::new());
        let b = Context::new(SerialBackend::new());
        let arr = a.array_from(&[1.0f64, 2.0]).unwrap();
        match b.to_host(&arr) {
            Err(RaccError::WrongContext { .. }) => {}
            other => panic!("expected WrongContext, got {other:?}"),
        }
    }

    #[test]
    fn shape_mismatches_are_detected() {
        let ctx = ctx();
        assert!(matches!(
            ctx.array2_from(3, 3, &[0.0f64; 8]),
            Err(RaccError::ShapeMismatch(_))
        ));
        assert!(matches!(
            ctx.array3_from(2, 2, 2, &[0.0f64; 9]),
            Err(RaccError::ShapeMismatch(_))
        ));
        let a = ctx.zeros::<f64>(4).unwrap();
        assert!(ctx.copy_to(&a, &[1.0; 3]).is_err());
        let b = ctx.zeros::<f64>(5).unwrap();
        assert!(ctx.copy_array(&a, &b).is_err());
    }

    #[test]
    fn fills_set_every_element() {
        let ctx = ctx();
        let a = ctx.zeros::<f64>(100).unwrap();
        ctx.fill(&a, 2.5).unwrap();
        assert!(ctx.to_host(&a).unwrap().iter().all(|&v| v == 2.5));
        let b = ctx.zeros2::<i32>(7, 9).unwrap();
        ctx.fill2(&b, -3).unwrap();
        assert!(ctx.to_host2(&b).unwrap().iter().all(|&v| v == -3));
        let c = ctx.zeros3::<u8>(3, 4, 5).unwrap();
        ctx.fill3(&c, 9).unwrap();
        assert!(ctx.to_host3(&c).unwrap().iter().all(|&v| v == 9));
        // Wrong-context fills are rejected.
        let other = Context::new(ThreadsBackend::with_threads(1));
        assert!(other.fill(&a, 0.0).is_err());
    }

    #[test]
    fn copy_array_copies() {
        let ctx = ctx();
        let src = ctx.array_from(&[1.0f64, 2.0, 3.0]).unwrap();
        let dst = ctx.zeros::<f64>(3).unwrap();
        ctx.copy_array(&src, &dst).unwrap();
        assert_eq!(ctx.to_host(&dst).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn copy_to_overwrites() {
        let ctx = ctx();
        let a = ctx.zeros::<f64>(3).unwrap();
        ctx.copy_to(&a, &[7.0, 8.0, 9.0]).unwrap();
        assert_eq!(ctx.to_host(&a).unwrap(), vec![7.0, 8.0, 9.0]);
    }

    #[test]
    fn reduce_with_custom_op() {
        let ctx = ctx();
        let data: Vec<i64> = (0..1000).map(|i| (i * 7919) % 4409).collect();
        let arr = ctx.array_from(&data).unwrap();
        let v = arr.view();
        let m: i64 =
            ctx.parallel_reduce_with(data.len(), &KernelProfile::dot(), Max, move |i| v.get(i));
        assert_eq!(m, *data.iter().max().unwrap());
    }

    #[test]
    fn timeline_visible_through_context() {
        let ctx = ctx();
        assert_eq!(ctx.modeled_ns(), 0);
        ctx.parallel_for(1000, &KernelProfile::axpy(), |_| {});
        assert!(ctx.modeled_ns() > 0);
        assert_eq!(ctx.timeline().launches, 1);
        ctx.reset_timeline();
        assert_eq!(ctx.modeled_ns(), 0);
    }

    #[test]
    fn metadata_accessors() {
        let ctx = ctx();
        assert_eq!(ctx.key(), "threads");
        assert!(!ctx.is_accelerator());
        assert!(ctx.name().contains("Threads"));
        assert!(ctx.id() > 0);
        let dbg = format!("{ctx:?}");
        assert!(dbg.contains("Context"));
    }

    #[test]
    fn stats_surface_steal_counters_on_threads() {
        let ctx = ctx();
        ctx.parallel_for(10_000, &KernelProfile::axpy(), |_| {});
        let stats = ctx.stats();
        let steal = stats.steal.as_ref().expect("threads backend has a pool");
        assert_eq!(steal.participants.len(), 4);
        assert!(steal.total().executed > 0, "{stats}");
        // Serial backend has no pool to report on.
        let serial = Context::new(SerialBackend::new());
        assert!(serial.stats().steal.is_none());
    }

    #[test]
    fn empty_arrays_and_ranges() {
        let ctx = ctx();
        let a = ctx.array_from::<f64>(&[]).unwrap();
        assert!(a.is_empty());
        assert!(ctx.to_host(&a).unwrap().is_empty());
        ctx.parallel_for(0, &KernelProfile::unknown(), |_| panic!("no iterations"));
        let z: f64 = ctx.parallel_reduce(0, &KernelProfile::unknown(), |_| 1.0);
        assert_eq!(z, 0.0);
    }
}
