//! # racc-core
//!
//! The core of **RACC** (Rust for ACCelerators) — a Rust reproduction of the
//! JACC programming model from the SC'24 paper *"JACC: Leveraging HPC
//! Meta-Programming and Performance Portability with the Just-in-Time and
//! LLVM-based Julia Language"*.
//!
//! Like JACC, the model has two components (paper §III):
//!
//! * **memory** — unified arrays ([`Array1`], [`Array2`], [`Array3`]) that
//!   abstract over where data lives (`JACC.Array`); column-major like Julia;
//! * **compute** — two constructs, [`Context::parallel_for`] and
//!   [`Context::parallel_reduce`], in one-, two- and three-dimensional
//!   variants, dispatching to the selected back end.
//!
//! A back end implements the [`Backend`] trait. This crate ships the two CPU
//! back ends ([`SerialBackend`] and [`ThreadsBackend`], the latter being the
//! `Base.Threads` analog built on `racc-threadpool`); the GPU back ends over
//! the simulator live in their own crates (`racc-backend-cuda/hip/oneapi`),
//! mirroring JACC's weak-dependency structure, and the `racc` crate ties
//! them together behind preferences-driven selection.
//!
//! All constructs are **synchronous**: when a call returns, the computation
//! (and, on accelerators, its modeled completion) has happened.
//!
//! Besides executing kernels functionally, every backend maintains a
//! [`Timeline`] of *modeled* nanoseconds derived from its machine model —
//! the clock the paper-reproduction figures are generated from (see
//! `DESIGN.md` §1 for why).
//!
//! ```
//! use racc_core::{Context, KernelProfile, ThreadsBackend};
//!
//! let ctx = Context::new(ThreadsBackend::with_threads(2));
//! let x = ctx.array_from(&vec![1.0f64; 1000]).unwrap();
//! let y = ctx.array_from(&vec![2.0f64; 1000]).unwrap();
//! let alpha = 2.5;
//!
//! // JACC.parallel_for(SIZE, axpy, alpha, x, y)
//! let (xs, ys) = (x.view_mut(), y.view());
//! ctx.parallel_for(x.len(), &KernelProfile::axpy(), move |i| {
//!     xs.set(i, xs.get(i) + alpha * ys.get(i));
//! });
//!
//! // res = JACC.parallel_reduce(SIZE, dot, x, y)
//! let (xs, ys) = (x.view(), y.view());
//! let dot = ctx.parallel_reduce(x.len(), &KernelProfile::dot(), move |i| xs.get(i) * ys.get(i));
//! assert_eq!(dot, 6.0 * 2.0 * 1000.0);
//! ```

mod array;
mod backend;
mod buffer;
pub mod config;
mod context;
pub mod cpumodel;
mod error;
pub mod prim;
mod profile;
#[cfg(feature = "racecheck")]
pub mod racecheck;
mod scalar;
mod serial;
pub mod stats;
mod threads;
mod timeline;
mod views;

pub use array::{Array1, Array2, Array3};
pub use backend::{Backend, DeviceToken};
pub use config::{PlanCacheMode, RuntimeConfig};
// Fault-injection vocabulary, re-exported so the portability layer and
// applications can arm chaos without naming the substrate crate.
pub use context::{Context, ContextBuilder};
pub use cpumodel::CpuSpec;
pub use error::RaccError;
pub use profile::KernelProfile;
pub use racc_chaos as chaos;
pub use racc_chaos::{env_flag, FaultAction, FaultEvent, FaultPlan, FaultSite, RetryPolicy};
// The execution substrate, re-exported so backend crates can name
// work-stealing types (`Backend::steal_stats`) without a direct dependency.
pub use racc_threadpool as threadpool;
pub use racc_threadpool::{StealCounters, StealStats};
pub use scalar::{AccScalar, Max, Min, Numeric, Prod, ReduceOp, Sum};
pub use serial::SerialBackend;
pub use stats::{
    FaultStats, PlanCacheStats, PrimCounters, PrimStats, RuntimeStats, ServeCounters, ServeStats,
    ShardCounters, ShardStats,
};
pub use threads::ThreadsBackend;
pub use timeline::{Timeline, TimelineSnapshot};
pub use views::{View1, View2, View3, ViewMut1, ViewMut2, ViewMut3};

/// The span-recording crate, re-exported so backends and applications built
/// on `racc-core` use one coherent `racc-trace` version (enable the `trace`
/// feature).
#[cfg(feature = "trace")]
pub use racc_trace as trace;

/// Convenience glob import for application code.
///
/// Introspection rides along: [`Context::stats`] returns one
/// [`RuntimeStats`] snapshot (plan-cache hits/misses/evictions, injected
/// faults, sanitizer report) instead of per-subsystem getters.
pub mod prelude {
    pub use crate::{
        Array1, Array2, Array3, Backend, Context, KernelProfile, Max, Min, Prod, RaccError,
        ReduceOp, RuntimeStats, SerialBackend, Sum, ThreadsBackend,
    };
}
