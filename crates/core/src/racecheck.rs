//! Dynamic verification of the disjoint-writes kernel contract
//! (compiled in only with the `racecheck` cargo feature).
//!
//! `ViewMut*::set` records `(storage, element)` writes keyed by the logical
//! iteration currently executing; two *different* iterations writing the
//! same element within one construct invocation violate the contract and
//! panic. Backends bracket each construct with [`begin_launch`] /
//! [`end_launch`] and tag each iteration with [`set_current_iteration`].
//!
//! With read tracking additionally switched on ([`set_track_reads`], the
//! CPU half of the `simsan` sanitizer), `View*::get` records reads too, and
//! a read and a write of the same element by *different* iterations of one
//! construct is reported as a read-write race — iterations of a
//! `parallel_for` have no ordering, so such an exchange is nondeterministic.
//!
//! The checker is process-global and heavyweight; enable it in tests via
//! [`set_enabled`], never in benchmarks.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

static ENABLED: AtomicBool = AtomicBool::new(false);
static TRACK_READS: AtomicBool = AtomicBool::new(false);

fn table() -> &'static Mutex<HashMap<(usize, usize), u64>> {
    static TABLE: OnceLock<Mutex<HashMap<(usize, usize), u64>>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// First reader iteration per element, plus whether a second, different
/// iteration also read it.
type ReadTable = HashMap<(usize, usize), (u64, bool)>;

fn read_table() -> &'static Mutex<ReadTable> {
    static TABLE: OnceLock<Mutex<ReadTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(HashMap::new()))
}

thread_local! {
    static CURRENT_ITER: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// Globally enable or disable write tracking.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
    if enabled {
        table().lock().clear();
        read_table().lock().clear();
    }
}

/// Whether tracking is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Additionally track reads (requires [`set_enabled`]`(true)` to take
/// effect). This is the sanitizer's read-write race detection; it roughly
/// doubles the checker's overhead.
pub fn set_track_reads(enabled: bool) {
    TRACK_READS.store(enabled, Ordering::Relaxed);
    if enabled {
        read_table().lock().clear();
    }
}

/// Whether read tracking is on.
pub fn track_reads() -> bool {
    TRACK_READS.load(Ordering::Relaxed)
}

/// Clear state at the start of a construct invocation.
pub fn begin_launch() {
    if enabled() {
        table().lock().clear();
        if track_reads() {
            read_table().lock().clear();
        }
    }
}

/// Clear the per-thread iteration tag at the end of a construct.
pub fn end_launch() {
    CURRENT_ITER.with(|c| c.set(u64::MAX));
}

/// Tag the host thread with the logical iteration it is executing.
#[inline]
pub fn set_current_iteration(iter: u64) {
    if enabled() {
        CURRENT_ITER.with(|c| c.set(iter));
    }
}

/// Record a write to `element` of the storage at `base`. Called by
/// `ViewMut*::set`.
#[inline]
pub fn record_write(base: usize, element: usize) {
    if !enabled() {
        return;
    }
    let iter = CURRENT_ITER.with(|c| c.get());
    if iter == u64::MAX {
        return; // host-side write outside a construct
    }
    let mut writes = table().lock();
    match writes.entry((base, element)) {
        std::collections::hash_map::Entry::Occupied(e) => {
            let first = *e.get();
            if first != iter {
                panic!(
                    "racecheck: iterations {first} and {iter} both wrote element \
                     {element} of array storage {base:#x} in one construct"
                );
            }
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert(iter);
        }
    }
    drop(writes);
    if track_reads() {
        if let Some(&(reader, multi)) = read_table().lock().get(&(base, element)) {
            if multi || reader != iter {
                let reader = if multi && reader == iter {
                    "another iteration".to_string()
                } else {
                    format!("iteration {reader}")
                };
                panic!(
                    "simsan: read-write race on element {element} of array storage \
                     {base:#x}: {reader} read it and iteration {iter} wrote it in \
                     one construct"
                );
            }
        }
    }
}

/// Record a read of `element` of the storage at `base`. Called by
/// `View*::get` when read tracking is on.
#[inline]
pub fn record_read(base: usize, element: usize) {
    if !enabled() || !track_reads() {
        return;
    }
    let iter = CURRENT_ITER.with(|c| c.get());
    if iter == u64::MAX {
        return; // host-side read outside a construct
    }
    match read_table().lock().entry((base, element)) {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            let (first, multi) = *e.get();
            if first != iter && !multi {
                *e.get_mut() = (first, true);
            }
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            e.insert((iter, false));
        }
    }
    if let Some(&writer) = table().lock().get(&(base, element)) {
        if writer != iter {
            panic!(
                "simsan: read-write race on element {element} of array storage \
                 {base:#x}: iteration {writer} wrote it and iteration {iter} read \
                 it in one construct"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Note: these tests mutate process-global state; they run in one test
    // binary and restore the disabled state afterwards.

    #[test]
    fn disabled_by_default_records_nothing() {
        set_enabled(false);
        begin_launch();
        set_current_iteration(1);
        record_write(0x10, 0);
        record_write(0x10, 0);
        end_launch();
    }

    #[test]
    fn same_iteration_may_rewrite() {
        set_enabled(true);
        begin_launch();
        set_current_iteration(5);
        record_write(0x20, 1);
        record_write(0x20, 1);
        end_launch();
        set_enabled(false);
    }

    #[test]
    #[should_panic(expected = "racecheck")]
    fn cross_iteration_write_panics() {
        set_enabled(true);
        begin_launch();
        set_current_iteration(1);
        record_write(0x30, 2);
        set_current_iteration(2);
        record_write(0x30, 2);
    }

    #[test]
    fn reads_ignored_without_tracking() {
        set_enabled(true);
        set_track_reads(false);
        begin_launch();
        set_current_iteration(1);
        record_read(0x40, 0);
        set_current_iteration(2);
        record_write(0x40, 0); // reader was not recorded: no race
        end_launch();
        set_enabled(false);
    }

    #[test]
    fn same_iteration_read_write_is_fine() {
        set_enabled(true);
        set_track_reads(true);
        begin_launch();
        set_current_iteration(3);
        record_read(0x50, 1);
        record_write(0x50, 1);
        record_read(0x50, 1);
        end_launch();
        set_track_reads(false);
        set_enabled(false);
    }

    #[test]
    #[should_panic(expected = "read-write race")]
    fn write_after_foreign_read_panics() {
        set_enabled(true);
        set_track_reads(true);
        begin_launch();
        set_current_iteration(1);
        record_read(0x60, 4);
        set_current_iteration(2);
        record_write(0x60, 4);
    }

    #[test]
    #[should_panic(expected = "read-write race")]
    fn read_after_foreign_write_panics() {
        set_enabled(true);
        set_track_reads(true);
        begin_launch();
        set_current_iteration(1);
        record_write(0x70, 5);
        set_current_iteration(2);
        record_read(0x70, 5);
    }
}
